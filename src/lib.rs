//! # ProgXe — progressive result generation for SkyMapJoin queries
//!
//! Facade crate re-exporting the whole workspace. See `README.md` for the
//! architecture overview, the `QuerySession` streaming quickstart, and the
//! paper-to-module map.
//!
//! * [`skyline`] — preference model + classic skyline algorithms.
//! * [`obs`] — tracing/metrics: spans, counters, histograms, `PROGXE_LOG`.
//! * [`datagen`] — Börzsönyi-style synthetic workload generator.
//! * [`core`] — the ProgXe framework (look-ahead, ProgOrder, ProgDetermine).
//! * [`runtime`] — work-stealing thread pool + parallel ProgXe driver.
//! * [`query`] — SkyMapJoin algebra, `PREFERRING` parser, planner.
//! * [`server`] — TCP serving layer: framed progressive batches,
//!   per-client cancellation, admission control.
//! * [`baselines`] — JF-SL, JF-SL+, SSMJ, SAJ.

#![forbid(unsafe_code)]

pub use progxe_baselines as baselines;
pub use progxe_core as core;
pub use progxe_datagen as datagen;
pub use progxe_obs as obs;
pub use progxe_query as query;
pub use progxe_runtime as runtime;
pub use progxe_server as server;
pub use progxe_skyline as skyline;
