//! Streaming source ingestion, live: results before the sources finish.
//!
//! Simulates two slow remote sources delivering an independent workload in
//! sorted batches with watermarks (the `trickle` arrival family of
//! `progxe_datagen::arrival`). The streaming engine (`core::ingest`) seals
//! input-grid cells as watermarks advance, unlocks their output regions,
//! and emits proven-final skyline results while most of the data is still
//! in flight — a batch engine would have to wait for the last batch.
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! PROGXE_THREADS=4 cargo run --release --example streaming_ingest
//! ```

use progxe::core::ingest::{IngestPoll, IngestSession, SourceId, StreamSpec};
use progxe::core::prelude::*;
use progxe::datagen::{ArrivalSpec, Distribution, WorkloadSpec};
use progxe::runtime::ParallelProgXe;

fn main() {
    let spec = WorkloadSpec::new(4000, 3, Distribution::Independent, 0.05);
    let w = spec.generate();
    println!(
        "workload: N = {} per source, d = {}, σ = {}, independent",
        spec.n_r, spec.dims, spec.selectivity
    );
    let maps = MapSet::pairwise_sum(spec.dims, Preference::all_lowest(spec.dims));
    let bounds = || StreamSpec::new(vec![1.0; spec.dims], vec![100.0; spec.dims]).unwrap();

    let config = ProgXeConfig::from_env();
    let mut session = if config.threads.get() > 1 {
        println!("backend: pooled ({} threads)", config.threads);
        ParallelProgXe::new(config)
            .open_ingest(&maps, bounds(), bounds())
            .unwrap()
    } else {
        println!("backend: inline");
        IngestSession::open(&config, &maps, bounds(), bounds()).unwrap()
    };

    // Sorted trickle: ~32 batches per source, watermark after each.
    let arrival = ArrivalSpec::trickle(spec.n_r / 32);
    let r_sched = arrival.schedule(&w.r);
    let t_sched = arrival.schedule(&w.t);
    let steps = r_sched.batches.len().max(t_sched.batches.len());

    let mut emitted = 0u64;
    for i in 0..steps {
        for (side, rel, sched) in [(SourceId::R, &w.r, &r_sched), (SourceId::T, &w.t, &t_sched)] {
            let Some(batch) = sched.batches.get(i) else {
                continue;
            };
            let rows: Vec<(u32, &[f64], u32)> = batch
                .rows
                .iter()
                .map(|&row| {
                    (
                        row,
                        rel.attrs_of(row as usize),
                        rel.join_key_of(row as usize),
                    )
                })
                .collect();
            session.push_with_ids(side, &rows).unwrap();
            if let Some(wm) = &batch.watermark {
                session.set_watermark(side, wm).unwrap();
            }
        }
        let mut step_results = 0usize;
        while let IngestPoll::Batch(event) = session.poll() {
            step_results += event.tuples.len();
        }
        emitted += step_results as u64;
        if step_results > 0 {
            let arrived = (i + 1) as f64 / steps as f64 * 100.0;
            println!(
                "  after {arrived:>5.1}% of arrival: +{step_results:>4} proven-final results \
                 ({emitted} total)"
            );
        }
    }

    session.close(SourceId::R);
    session.close(SourceId::T);
    let mut tail = 0usize;
    while let IngestPoll::Batch(event) = session.poll() {
        tail += event.tuples.len();
    }
    println!("  after close:            +{tail:>4} proven-final results");
    let stats = session.finish();
    println!(
        "\ndone: {} results, {} rows ingested, {} regions unlocked, {}",
        stats.results_emitted, stats.tuples_ingested, stats.regions_unlocked, stats
    );
}
