//! Progressive vs blocking, live: the motivation of the whole paper.
//!
//! Runs the same anti-correlated workload (the skyline-hostile case) under
//! ProgXe and under the blocking JF-SL plan, printing a timeline of result
//! arrivals. ProgXe streams results throughout its execution; JF-SL stays
//! silent until everything is joined and compared.
//!
//! ```text
//! cargo run --release --example progressive_stream
//! ```

use progxe::baselines::{jfsl, SkyAlgo};
use progxe::core::prelude::*;
use progxe::core::sink::ProgressSink;
use progxe::datagen::{Distribution, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(3000, 3, Distribution::AntiCorrelated, 0.005);
    let w = spec.generate();
    println!(
        "workload: N = {} per source, d = {}, σ = {}, anti-correlated",
        spec.n_r, spec.dims, spec.selectivity
    );
    let maps = MapSet::pairwise_sum(spec.dims, Preference::all_lowest(spec.dims));
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();

    let mut progxe_sink = ProgressSink::new();
    let exec = ProgXe::new(
        ProgXeConfig::default()
            .with_input_partitions(3)
            .with_output_cells(24)
            .with_selectivity_hint(spec.selectivity),
    );
    let stats = exec.run(&r, &t, &maps, &mut progxe_sink).unwrap();

    let mut jfsl_sink = ProgressSink::new();
    let jfsl_stats = jfsl(&r, &t, &maps, SkyAlgo::Sfs, &mut jfsl_sink);

    println!("\ntimeline (cumulative results over time):");
    println!("{:>12}  {:>10}  {:>10}", "time", "ProgXe", "JF-SL");
    // Sample the two series on a shared timeline.
    let horizon = stats.total_time.max(jfsl_stats.total_time);
    let steps = 12u32;
    for s in 1..=steps {
        let at = horizon * s / steps;
        let progxe_at = progxe_sink
            .records
            .iter()
            .rev()
            .find(|r| r.elapsed <= at)
            .map_or(0, |r| r.cumulative);
        let jfsl_at = jfsl_sink
            .records
            .iter()
            .rev()
            .find(|r| r.elapsed <= at)
            .map_or(0, |r| r.cumulative);
        println!(
            "{:>10.2}ms  {:>10}  {:>10}",
            at.as_secs_f64() * 1e3,
            progxe_at,
            jfsl_at
        );
    }
    println!(
        "\nProgXe: first result {:.2}ms, done {:.2}ms ({} batches)",
        progxe_sink.first_result_at().unwrap().as_secs_f64() * 1e3,
        stats.total_time.as_secs_f64() * 1e3,
        progxe_sink.records.len()
    );
    println!(
        "JF-SL : first result {:.2}ms, done {:.2}ms (single batch)",
        jfsl_sink.first_result_at().unwrap().as_secs_f64() * 1e3,
        jfsl_stats.total_time.as_secs_f64() * 1e3,
    );
    assert_eq!(progxe_sink.total(), jfsl_sink.total(), "same final skyline");
}
