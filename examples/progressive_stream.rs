//! Progressive vs blocking, live: the motivation of the whole paper.
//!
//! Runs the same anti-correlated workload (the skyline-hostile case) under
//! ProgXe — sequential *and* parallel (`PROGXE_THREADS`, default 4) — and
//! under the blocking JF-SL plan, all through the *same*
//! [`ProgressiveEngine`] interface, printing a timeline of result
//! arrivals. ProgXe streams results throughout its execution; JF-SL stays
//! silent until everything is joined and compared.
//!
//! ```text
//! cargo run --release --example progressive_stream
//! PROGXE_THREADS=8 cargo run --release --example progressive_stream
//! ```

use progxe::baselines::{JfSlEngine, SkyAlgo};
use progxe::core::prelude::*;
use progxe::datagen::{Distribution, WorkloadSpec};
use progxe::obs::{EventKind, MetricsRegistry, Point, Recorder, RingRecorder};
use progxe::runtime::ParallelProgXe;
use std::sync::Arc;
use std::time::Duration;

/// Pulls a session dry, recording `(elapsed, cumulative)` per batch.
fn drain(mut session: QuerySession<'_>) -> (Vec<(Duration, u64)>, ExecStats) {
    let mut records = Vec::new();
    let mut cumulative = 0u64;
    while let Some(event) = session.next_batch() {
        cumulative += event.tuples.len() as u64;
        records.push((event.elapsed, cumulative));
    }
    (records, session.finish())
}

fn main() {
    let spec = WorkloadSpec::new(3000, 3, Distribution::AntiCorrelated, 0.005);
    let w = spec.generate();
    println!(
        "workload: N = {} per source, d = {}, σ = {}, anti-correlated",
        spec.n_r, spec.dims, spec.selectivity
    );
    let maps = MapSet::pairwise_sum(spec.dims, Preference::all_lowest(spec.dims));
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();

    let progxe = ProgXe::new(
        ProgXeConfig::default()
            .with_input_partitions(3)
            .with_output_cells(24)
            .with_selectivity_hint(spec.selectivity),
    );
    let jfsl = JfSlEngine::new(SkyAlgo::Sfs);

    // The parallel driver honors PROGXE_THREADS; unset, default to 4.
    let threads = if std::env::var_os("PROGXE_THREADS").is_some() {
        ProgXeConfig::from_env().threads.get()
    } else {
        4
    };
    let parallel = ParallelProgXe::new(progxe.config().clone().with_threads(threads));

    // All engines behind the same trait, the same pull loop.
    let (progxe_records, progxe_stats) = drain(progxe.open(&r, &t, &maps).unwrap());
    let (parallel_records, parallel_stats) = drain(parallel.open(&r, &t, &maps).unwrap());
    let (jfsl_records, jfsl_stats) = drain(jfsl.open(&r, &t, &maps).unwrap());

    println!("\ntimeline (cumulative results over time):");
    println!("{:>12}  {:>10}  {:>10}", "time", "ProgXe", "JF-SL");
    // Sample the two series on a shared timeline.
    let horizon = progxe_stats.total_time.max(jfsl_stats.total_time);
    let steps = 12u32;
    for s in 1..=steps {
        let at = horizon * s / steps;
        let count_at = |records: &[(Duration, u64)]| {
            records
                .iter()
                .rev()
                .find(|(elapsed, _)| *elapsed <= at)
                .map_or(0, |&(_, cumulative)| cumulative)
        };
        println!(
            "{:>10.2}ms  {:>10}  {:>10}",
            at.as_secs_f64() * 1e3,
            count_at(&progxe_records),
            count_at(&jfsl_records)
        );
    }
    println!(
        "\nProgXe: first result {:.2}ms, done {:.2}ms ({} batches)",
        progxe_records[0].0.as_secs_f64() * 1e3,
        progxe_stats.total_time.as_secs_f64() * 1e3,
        progxe_records.len()
    );
    println!(
        "JF-SL : first result {:.2}ms, done {:.2}ms (single batch)",
        jfsl_records[0].0.as_secs_f64() * 1e3,
        jfsl_stats.total_time.as_secs_f64() * 1e3,
    );
    println!("\nper-engine stats (ExecStats one-liners):");
    println!("  progxe       {progxe_stats}");
    println!("  progxe-mt    {parallel_stats}");
    println!("  jf-sl        {jfsl_stats}");

    // ── Observability: the same query again, traced live ────────────────
    // A RingRecorder is attached to the engine; draining it between
    // `next_batch` calls yields a per-batch timeline — emit points and the
    // committer's progress-estimate gauge — without touching the results.
    let ring = Arc::new(RingRecorder::new());
    let mut session = ProgXe::new(progxe.config().clone())
        .with_recorder(ring.clone() as Arc<dyn Recorder>)
        .open(&r, &t, &maps)
        .unwrap();
    println!("\nlive trace timeline (ring drained between batches):");
    println!(
        "{:>10}  {:>5}  {:>10}  {:>8}  batch",
        "time", "batch", "cumulative", "progress"
    );
    let mut cumulative = 0u64;
    let mut progress = 0.0f64;
    let mut batch_no = 0u32;
    while let Some(event) = session.next_batch() {
        batch_no += 1;
        cumulative += event.tuples.len() as u64;
        // Everything recorded since the previous batch, in order.
        let mut emit_points = 0usize;
        for ev in ring.drain() {
            match ev.kind {
                EventKind::Gauge {
                    name: "progress_estimate",
                    value,
                } => progress = value,
                EventKind::Point(Point::Emit { .. }) => emit_points += 1,
                _ => {}
            }
        }
        println!(
            "{:>8.2}ms  {:>5}  {:>10}  {:>7.0}%  +{} tuples / {} emit points{}",
            event.elapsed.as_secs_f64() * 1e3,
            batch_no,
            cumulative,
            progress * 100.0,
            event.tuples.len(),
            emit_points,
            if event.proven_final {
                " (proven final)"
            } else {
                ""
            },
        );
    }
    let traced_stats = session.finish();
    println!(
        "\nExecStats as a structured report:\n{}",
        traced_stats.report()
    );
    println!(
        "process-wide metrics (pool telemetry from the parallel run):\n{}",
        MetricsRegistry::global().snapshot()
    );
    assert_eq!(cumulative, traced_stats.results_emitted, "trace vs stats");

    assert_eq!(
        progxe_records.last().unwrap().1,
        jfsl_records.last().unwrap().1,
        "same final skyline"
    );
    assert_eq!(
        parallel_records.last().unwrap().1,
        jfsl_records.last().unwrap().1,
        "parallel run produces the same final skyline"
    );
}
