//! Quickstart: evaluate a SkyMapJoin query progressively.
//!
//! Builds two tiny in-memory sources, defines the mapping functions and
//! preference of a Q1-style query, and consumes the result *stream*: a
//! [`QuerySession`] is pulled batch by batch, printing every result the
//! moment it is proven final.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use progxe::core::prelude::*;

fn main() {
    // Source R: suppliers with (unit price, manufacturing time), keyed by
    // country code.
    let mut suppliers = SourceData::new(2);
    suppliers.push(&[10.0, 3.0], 0);
    suppliers.push(&[14.0, 1.0], 0);
    suppliers.push(&[7.0, 6.0], 1);
    suppliers.push(&[22.0, 2.0], 1);

    // Source T: transporters with (shipping cost, shipping time).
    let mut transporters = SourceData::new(2);
    transporters.push(&[3.0, 4.0], 0);
    transporters.push(&[6.0, 1.0], 0);
    transporters.push(&[2.0, 8.0], 1);

    // Q1's mapping: tCost = uPrice + shipCost, delay = 2·manTime + shipTime;
    // both minimized.
    let maps = MapSet::new(
        vec![
            Box::new(WeightedSum::new(vec![1.0, 0.0], vec![1.0, 0.0])),
            Box::new(WeightedSum::new(vec![0.0, 2.0], vec![0.0, 1.0])),
        ],
        Preference::all_lowest(2),
    )
    .expect("two maps, two preference dimensions");

    // Pull results as they become final.
    let exec = ProgXe::new(ProgXeConfig::default());
    let mut session = exec
        .session(&suppliers.view(), &transporters.view(), &maps)
        .expect("valid query");

    let mut count = 0;
    while let Some(event) = session.next_batch() {
        for r in &event.tuples {
            count += 1;
            println!(
                "#{:<2} supplier {} × transporter {} → tCost = {:>5.1}, delay = {:>5.1}  \
                 ({:.0}% done)",
                count,
                r.r_idx,
                r.t_idx,
                r.values[0],
                r.values[1],
                event.progress_estimate * 100.0
            );
        }
    }
    let stats = session.finish();

    println!("---");
    // `ExecStats` implements `Display`: the canonical one-line summary.
    println!("{stats}");
    println!(
        "({} join pairs examined, {} regions pruned before any tuple work)",
        stats.join_pairs_evaluated, stats.regions_pruned_lookahead,
    );
}
