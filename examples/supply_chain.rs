//! Supply-chain planning — the paper's query Q1, end to end through the
//! SQL front-end.
//!
//! A manufacturer couples suppliers with transporters from the same country
//! and wants plans minimizing total cost and delay:
//!
//! ```sql
//! SELECT R.id, T.id,
//!        (R.uPrice + T.uShipCost) AS tCost,
//!        (2 * R.manTime + T.shipTime) AS delay
//! FROM Suppliers R, Transporters T
//! WHERE R.country = T.country AND R.manCap >= 100
//! PREFERRING LOWEST(tCost) AND LOWEST(delay)
//! ```
//!
//! The example runs the query on every engine and compares when each one
//! delivered results.
//!
//! ```text
//! cargo run --example supply_chain
//! ```

use progxe::core::sink::ProgressSink;
use progxe::core::source::SourceData;
use progxe::query::{Catalog, Engine, QueryRunner, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const Q1: &str = "SELECT R.id, T.id, \
     (R.uPrice + T.uShipCost) AS tCost, \
     (2 * R.manTime + T.shipTime) AS delay \
     FROM Suppliers R, Transporters T \
     WHERE R.country = T.country AND R.manCap >= 100 \
     PREFERRING LOWEST(tCost) AND LOWEST(delay)";

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let countries = 12u32;

    // 2000 suppliers: (unit price, manufacturing time, capacity).
    let mut suppliers = SourceData::new(3);
    for _ in 0..2000 {
        suppliers.push(
            &[
                rng.gen_range(1.0..100.0),
                rng.gen_range(1.0..30.0),
                rng.gen_range(10.0..1000.0),
            ],
            rng.gen_range(0..countries),
        );
    }
    // 2000 transporters: (unit shipping cost, shipping time).
    let mut transporters = SourceData::new(2);
    for _ in 0..2000 {
        transporters.push(
            &[rng.gen_range(1.0..50.0), rng.gen_range(1.0..20.0)],
            rng.gen_range(0..countries),
        );
    }

    let mut catalog = Catalog::new();
    catalog.register(
        TableSchema::new(
            "Suppliers",
            vec!["uPrice".into(), "manTime".into(), "manCap".into()],
            "country",
        ),
        suppliers,
    );
    catalog.register(
        TableSchema::new(
            "Transporters",
            vec!["uShipCost".into(), "shipTime".into()],
            "country",
        ),
        transporters,
    );
    let runner = QueryRunner::new(catalog);

    println!("Q1 over 2000 suppliers × 2000 transporters, {countries} countries\n");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12}",
        "engine", "results", "first", "median", "total"
    );
    for engine in [
        Engine::progxe(),
        Engine::Ssmj(progxe::baselines::SkyAlgo::Sfs),
        Engine::JfSl(progxe::baselines::SkyAlgo::Sfs),
        Engine::JfSlPlus(progxe::baselines::SkyAlgo::Sfs),
        Engine::Saj(progxe::baselines::SkyAlgo::Sfs),
    ] {
        let mut sink = ProgressSink::new();
        runner.run(Q1, &engine, &mut sink).expect("Q1 runs");
        let total = sink.total();
        let first = sink.first_result_at();
        let median = sink
            .records
            .iter()
            .find(|r| r.cumulative * 2 >= total)
            .map(|r| r.elapsed);
        let last = sink.records.last().map(|r| r.elapsed);
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>12}",
            engine.name(),
            total,
            fmt(first),
            fmt(median),
            fmt(last),
        );
    }

    // Show the top of the plan list for the decision maker.
    let out = runner
        .run_collect(Q1, &Engine::progxe())
        .expect("Q1 runs");
    let mut plans = out.results;
    plans.sort_by(|a, b| a.values[0].total_cmp(&b.values[0]));
    println!("\ncheapest Pareto-optimal plans (of {}):", plans.len());
    for p in plans.iter().take(5) {
        println!(
            "  supplier {:>4} × transporter {:>4}: tCost {:>6.1}, delay {:>5.1}",
            p.r_idx, p.t_idx, p.values[0], p.values[1]
        );
    }
}

fn fmt(d: Option<std::time::Duration>) -> String {
    match d {
        Some(d) => format!("{:.2}ms", d.as_secs_f64() * 1e3),
        None => "-".to_string(),
    }
}
