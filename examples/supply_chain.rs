//! Supply-chain planning — the paper's query Q1, end to end through the
//! SQL front-end.
//!
//! A manufacturer couples suppliers with transporters from the same country
//! and wants plans minimizing total cost and delay:
//!
//! ```sql
//! SELECT R.id, T.id,
//!        (R.uPrice + T.uShipCost) AS tCost,
//!        (2 * R.manTime + T.shipTime) AS delay
//! FROM Suppliers R, Transporters T
//! WHERE R.country = T.country AND R.manCap >= 100
//! PREFERRING LOWEST(tCost) AND LOWEST(delay)
//! ```
//!
//! The query is prepared once; a [`QuerySession`] is then opened per engine
//! over the same plan, and the pull loop records when each engine delivered
//! results. A final `run_take` shows pull-side early termination: the first
//! few plans cost only a fraction of the full run.
//!
//! ```text
//! cargo run --example supply_chain
//! ```

use progxe::core::source::SourceData;
use progxe::datagen::rng::{Rng, StdRng};
use progxe::query::{Catalog, Engine, QueryRunner, TableSchema};

const Q1: &str = "SELECT R.id, T.id, \
     (R.uPrice + T.uShipCost) AS tCost, \
     (2 * R.manTime + T.shipTime) AS delay \
     FROM Suppliers R, Transporters T \
     WHERE R.country = T.country AND R.manCap >= 100 \
     PREFERRING LOWEST(tCost) AND LOWEST(delay)";

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let countries = 12u32;

    // 2000 suppliers: (unit price, manufacturing time, capacity).
    let mut suppliers = SourceData::new(3);
    for _ in 0..2000 {
        suppliers.push(
            &[
                rng.gen_range(1.0..100.0),
                rng.gen_range(1.0..30.0),
                rng.gen_range(10.0..1000.0),
            ],
            rng.gen_range(0..countries),
        );
    }
    // 2000 transporters: (unit shipping cost, shipping time).
    let mut transporters = SourceData::new(2);
    for _ in 0..2000 {
        transporters.push(
            &[rng.gen_range(1.0..50.0), rng.gen_range(1.0..20.0)],
            rng.gen_range(0..countries),
        );
    }

    let mut catalog = Catalog::new();
    catalog.register(
        TableSchema::new(
            "Suppliers",
            vec!["uPrice".into(), "manTime".into(), "manCap".into()],
            "country",
        ),
        suppliers,
    );
    catalog.register(
        TableSchema::new(
            "Transporters",
            vec!["uShipCost".into(), "shipTime".into()],
            "country",
        ),
        transporters,
    );
    let runner = QueryRunner::new(catalog);
    let planned = runner.prepare(Q1).expect("Q1 plans");

    println!("Q1 over 2000 suppliers × 2000 transporters, {countries} countries\n");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12}",
        "engine", "results", "first", "median", "total"
    );
    for engine in [
        Engine::progxe(),
        Engine::ssmj_sfs(),
        Engine::jfsl_sfs(),
        Engine::jfsl_plus_sfs(),
        Engine::saj_sfs(),
    ] {
        let mut session = runner.session(&planned, &engine).expect("Q1 runs");
        let mut records = Vec::new();
        let mut total = 0u64;
        while let Some(event) = session.next_batch() {
            total += event.tuples.len() as u64;
            records.push((event.elapsed, total));
        }
        let stats = session.finish();
        let first = records.first().map(|&(at, _)| at);
        let median = records
            .iter()
            .find(|&&(_, cumulative)| cumulative * 2 >= total)
            .map(|&(at, _)| at);
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>12}",
            engine,
            total,
            fmt(first),
            fmt(median),
            fmt(Some(stats.total_time)),
        );
    }

    // Show the top of the plan list for the decision maker.
    let out = runner.run_collect(Q1, &Engine::progxe()).expect("Q1 runs");
    let mut plans = out.results;
    plans.sort_by(|a, b| a.values[0].total_cmp(&b.values[0]));
    println!("\ncheapest Pareto-optimal plans (of {}):", plans.len());
    for p in plans.iter().take(5) {
        println!(
            "  supplier {:>4} × transporter {:>4}: tCost {:>6.1}, delay {:>5.1}",
            p.r_idx, p.t_idx, p.values[0], p.values[1]
        );
    }

    // Early termination through the query layer: the first 5 proven-final
    // plans, stopping the executor as soon as they are in hand.
    let quick = runner.run_take(Q1, &Engine::progxe(), 5).expect("Q1 runs");
    println!(
        "\ntake(5): {} plans with {} of {} regions processed (cancelled = {})",
        quick.results.len(),
        quick.stats.regions_processed,
        out.stats.regions_processed,
        quick.stats.cancelled,
    );
}

fn fmt(d: Option<std::time::Duration>) -> String {
    match d {
        Some(d) => format!("{:.2}ms", d.as_secs_f64() * 1e3),
        None => "-".to_string(),
    }
}
