//! Internet-aggregator scenario (paper Example 1): a traveller books a
//! two-leg Europe trip — Rome and Paris — combining one hotel per city.
//!
//! Hotels join on travel week. Because "Rome is an ancient city with many
//! historic sites, the user is willing to walk twice as much in Rome than
//! in Paris": the walking-distance criterion weights Paris distance ×2 and
//! Rome distance ×1. Total price is a plain sum, and the combined hotel
//! rating is maximized — a mixed-direction preference.
//!
//! ```text
//! cargo run --example travel_aggregator
//! ```

use progxe::core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let weeks = 8u32;

    // Rome hotels: (price per night, metres walked to sites, rating 1-10).
    let mut rome = SourceData::new(3);
    for _ in 0..1500 {
        rome.push(
            &[
                rng.gen_range(40.0..400.0),
                rng.gen_range(100.0..4000.0),
                rng.gen_range(1.0..10.0),
            ],
            rng.gen_range(0..weeks),
        );
    }
    // Paris hotels.
    let mut paris = SourceData::new(3);
    for _ in 0..1500 {
        paris.push(
            &[
                rng.gen_range(60.0..500.0),
                rng.gen_range(100.0..4000.0),
                rng.gen_range(1.0..10.0),
            ],
            rng.gen_range(0..weeks),
        );
    }

    // Output criteria over a (rome, paris) pair:
    //   totalCost = rome.price + paris.price                  → LOWEST
    //   walking   = 1·rome.walk + 2·paris.walk                → LOWEST
    //   rating    = rome.rating + paris.rating                → HIGHEST
    let maps = MapSet::new(
        vec![
            Box::new(WeightedSum::new(vec![1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0])),
            Box::new(WeightedSum::new(vec![0.0, 1.0, 0.0], vec![0.0, 2.0, 0.0])),
            Box::new(WeightedSum::new(vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0])),
        ],
        Preference::new(vec![Order::Lowest, Order::Lowest, Order::Highest]),
    )
    .expect("three maps, three preference dimensions");

    let exec = ProgXe::new(
        ProgXeConfig::default()
            .with_input_partitions(3)
            .with_output_cells(24),
    );
    let mut sink = ProgressSink::new();
    let stats = exec
        .run(&rome.view(), &paris.view(), &maps, &mut sink)
        .expect("valid query");

    println!(
        "{} Pareto-optimal itineraries out of {} hotel pairings",
        sink.total(),
        stats.join_matches
    );
    println!(
        "first itinerary after {:.2}ms; all after {:.2}ms; {} batches\n",
        sink.first_result_at().unwrap().as_secs_f64() * 1e3,
        stats.total_time.as_secs_f64() * 1e3,
        sink.records.len()
    );

    let mut best = sink.results.clone();
    best.sort_by(|a, b| a.values[0].total_cmp(&b.values[0]));
    println!("a few options across the price spectrum:");
    let step = (best.len() / 5).max(1);
    for p in best.iter().step_by(step).take(5) {
        println!(
            "  rome #{:<4} + paris #{:<4}: € {:>6.0}, walk-score {:>6.0} m, rating {:>4.1}",
            p.r_idx, p.t_idx, p.values[0], p.values[1], p.values[2]
        );
    }
}
