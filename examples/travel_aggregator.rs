//! Internet-aggregator scenario (paper Example 1): a traveller books a
//! two-leg Europe trip — Rome and Paris — combining one hotel per city.
//!
//! Hotels join on travel week. Because "Rome is an ancient city with many
//! historic sites, the user is willing to walk twice as much in Rome than
//! in Paris": the walking-distance criterion weights Paris distance ×2 and
//! Rome distance ×1. Total price is a plain sum, and the combined hotel
//! rating is maximized — a mixed-direction preference.
//!
//! An aggregator page never waits for the full Pareto set: the session is
//! pulled incrementally, the first screenful is rendered as soon as it is
//! proven final, and the rest streams in behind it.
//!
//! ```text
//! cargo run --example travel_aggregator
//! ```

use progxe::core::prelude::*;
use progxe::datagen::rng::{Rng, StdRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let weeks = 8u32;

    // Rome hotels: (price per night, metres walked to sites, rating 1-10).
    let mut rome = SourceData::new(3);
    for _ in 0..1500 {
        rome.push(
            &[
                rng.gen_range(40.0..400.0),
                rng.gen_range(100.0..4000.0),
                rng.gen_range(1.0..10.0),
            ],
            rng.gen_range(0..weeks),
        );
    }
    // Paris hotels.
    let mut paris = SourceData::new(3);
    for _ in 0..1500 {
        paris.push(
            &[
                rng.gen_range(60.0..500.0),
                rng.gen_range(100.0..4000.0),
                rng.gen_range(1.0..10.0),
            ],
            rng.gen_range(0..weeks),
        );
    }

    // Output criteria over a (rome, paris) pair:
    //   totalCost = rome.price + paris.price                  → LOWEST
    //   walking   = 1·rome.walk + 2·paris.walk                → LOWEST
    //   rating    = rome.rating + paris.rating                → HIGHEST
    let maps = MapSet::new(
        vec![
            Box::new(WeightedSum::new(vec![1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0])),
            Box::new(WeightedSum::new(vec![0.0, 1.0, 0.0], vec![0.0, 2.0, 0.0])),
            Box::new(WeightedSum::new(vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0])),
        ],
        Preference::new(vec![Order::Lowest, Order::Lowest, Order::Highest]),
    )
    .expect("three maps, three preference dimensions");

    let exec = ProgXe::new(
        ProgXeConfig::default()
            .with_input_partitions(3)
            .with_output_cells(24),
    );

    // First screenful: pull until 8 itineraries are proven final, then
    // stop the executor — the remaining regions are never processed.
    const SCREEN: usize = 8;
    let first_page = exec
        .session(&rome.view(), &paris.view(), &maps)
        .expect("valid query")
        .take(SCREEN);
    println!(
        "first page: {} itineraries after {:.2}ms ({} of {} regions processed)",
        first_page.results.len(),
        first_page.stats.total_time.as_secs_f64() * 1e3,
        first_page.stats.regions_processed,
        first_page.stats.regions_created,
    );

    // Full result set, streamed.
    let mut session = exec
        .session(&rome.view(), &paris.view(), &maps)
        .expect("valid query");
    let mut itineraries = Vec::new();
    let mut batches = 0;
    let mut first_at = None;
    while let Some(event) = session.next_batch() {
        batches += 1;
        first_at.get_or_insert(event.elapsed);
        itineraries.extend(event.tuples);
    }
    let stats = session.finish();

    println!(
        "\n{} Pareto-optimal itineraries out of {} hotel pairings",
        itineraries.len(),
        stats.join_matches
    );
    println!(
        "first itinerary after {:.2}ms; all after {:.2}ms; {batches} batches\n",
        first_at.unwrap().as_secs_f64() * 1e3,
        stats.total_time.as_secs_f64() * 1e3,
    );

    itineraries.sort_by(|a, b| a.values[0].total_cmp(&b.values[0]));
    println!("a few options across the price spectrum:");
    let step = (itineraries.len() / 5).max(1);
    for p in itineraries.iter().step_by(step).take(5) {
        println!(
            "  rome #{:<4} + paris #{:<4}: € {:>6.0}, walk-score {:>6.0} m, rating {:>4.1}",
            p.r_idx, p.t_idx, p.values[0], p.values[1], p.values[2]
        );
    }
}
