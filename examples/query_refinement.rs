//! On-line search refinement (paper Example 2): a user's precise query
//! returns nothing, so the system relaxes it and returns the *skyline of
//! relaxations* — combinations closest to what was asked — progressively,
//! so the user can react before the full relaxation space is explored.
//!
//! Scenario: apartment search joining listings with commute records.
//! The strict query (rent ≤ 900 AND commute ≤ 20min) is empty; the
//! relaxation reports listing×commute pairs minimizing how far each
//! criterion was violated. The user abandons the search as soon as a
//! handful of suggestions is on screen — `take(6)` stops the executor
//! right there, and the skipped-region counters prove it.
//!
//! ```text
//! cargo run --example query_refinement
//! ```

use progxe::core::mapping::GeneralMap;
use progxe::core::prelude::*;
use progxe::datagen::rng::{Rng, StdRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let districts = 10u32;

    // Listings: (rent). Commutes: (minutes) — joined by district.
    let mut listings = SourceData::new(1);
    for _ in 0..1200 {
        listings.push(&[rng.gen_range(900.0..2500.0)], rng.gen_range(0..districts));
    }
    let mut commutes = SourceData::new(1);
    for _ in 0..1200 {
        commutes.push(&[rng.gen_range(18.0..90.0)], rng.gen_range(0..districts));
    }

    const MAX_RENT: f64 = 900.0;
    const MAX_COMMUTE: f64 = 20.0;

    // Violation distances: how much each pair overshoots the strict query.
    // max(rent - 900, 0) is monotone in rent, so sound interval bounds are
    // just the clamped interval ends.
    let rent_violation = GeneralMap::new(
        "max(rent - 900, 0)",
        |r: &[f64], _t: &[f64]| (r[0] - MAX_RENT).max(0.0),
        |r_lo: &[f64], r_hi: &[f64], _tl: &[f64], _th: &[f64]| {
            ((r_lo[0] - MAX_RENT).max(0.0), (r_hi[0] - MAX_RENT).max(0.0))
        },
    );
    let commute_violation = GeneralMap::new(
        "max(commute - 20, 0)",
        |_r: &[f64], t: &[f64]| (t[0] - MAX_COMMUTE).max(0.0),
        |_rl: &[f64], _rh: &[f64], t_lo: &[f64], t_hi: &[f64]| {
            (
                (t_lo[0] - MAX_COMMUTE).max(0.0),
                (t_hi[0] - MAX_COMMUTE).max(0.0),
            )
        },
    );
    let maps = MapSet::new(
        vec![Box::new(rent_violation), Box::new(commute_violation)],
        Preference::all_lowest(2),
    )
    .expect("two maps, two dimensions");

    // No exact match exists (every rent > 900 here); the skyline of
    // violations is the set of best-possible relaxations.
    let exec = ProgXe::new(
        ProgXeConfig::default()
            .with_output_cells(32)
            .with_push_through(true), // auto-disabled: GeneralMap is not separable
    );

    // The user only looks at the first few suggestions: stop there.
    let suggestions = exec
        .session(&listings.view(), &commutes.view(), &maps)
        .expect("valid query")
        .take(6);
    let stats = &suggestions.stats;
    println!(
        "strict query empty — showing the {} Pareto-closest relaxations \
         found after {:.2}ms",
        suggestions.results.len(),
        stats.total_time.as_secs_f64() * 1e3
    );
    let mut by_rent = suggestions.results.clone();
    by_rent.sort_by(|a, b| a.values[0].total_cmp(&b.values[0]));
    println!("suggested relaxations (rent overshoot €, commute overshoot min):");
    for p in &by_rent {
        println!(
            "  listing {:>4} / commute {:>4}: +€{:>6.0}, +{:>4.1} min",
            p.r_idx, p.t_idx, p.values[0], p.values[1]
        );
    }
    println!(
        "\nearly stop: {} regions processed, {} skipped (cancelled = {}); \
         push-through auto-disabled = {}",
        stats.regions_processed, stats.regions_skipped, stats.cancelled, stats.push_through_skipped,
    );

    // For comparison: the full relaxation skyline.
    let full = exec
        .run_collect(&listings.view(), &commutes.view(), &maps)
        .expect("valid query");
    println!(
        "full run: {} relaxations, {} regions, {:.2}ms total",
        full.results.len(),
        full.stats.regions_processed,
        full.stats.total_time.as_secs_f64() * 1e3
    );
}
