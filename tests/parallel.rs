//! Integration tests for the unified region driver and the shared runtime:
//! Inline/Pooled equivalence (against a naive oracle) across workload
//! distributions and seeds, the proven-final (no-retraction) guarantee
//! under parallel commit, self-determinism of parallel emission,
//! env-driven thread configuration, pool sharing across the sessions of
//! one engine, and mid-region cancellation promptness on both backends.

mod common;

use progxe::core::config::ProgXeConfig;
use progxe::core::mapping::{GeneralMap, MapSet, MappingFunction};
use progxe::core::prelude::*;
use progxe::core::session::CancellationToken;
use progxe::datagen::{Distribution, SmjWorkload, WorkloadSpec};
use progxe::runtime::ParallelProgXe;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn views(w: &SmjWorkload) -> (SourceView<'_>, SourceView<'_>) {
    (
        SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap(),
        SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap(),
    )
}

/// A result id + values key usable for set comparison (values are exact
/// f64 copies of the same computation, so bitwise comparison is sound).
fn result_key(t: &progxe::core::stats::ResultTuple) -> (u32, u32, Vec<u64>) {
    (
        t.r_idx,
        t.t_idx,
        t.values.iter().map(|v| v.to_bits()).collect(),
    )
}

/// For each workload distribution and several seeds: the parallel session's
/// final result set must equal the sequential run's (set equality), and
/// every batch the parallel session marks `proven_final` must already be a
/// subset of that final set — i.e. nothing a parallel run emits is ever
/// retracted (Principle 1 survives the fan-out).
#[test]
fn parallel_matches_sequential_across_distributions_and_seeds() {
    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ] {
        for seed in [7u64, 4242] {
            let w = WorkloadSpec::new(500, 2, dist, 0.02)
                .with_seed(seed)
                .generate();
            let (r, t) = views(&w);
            let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));

            let sequential = ProgXe::new(ProgXeConfig::default())
                .run_collect(&r, &t, &maps)
                .unwrap();
            let final_set: BTreeSet<_> = sequential.results.iter().map(result_key).collect();
            assert!(!final_set.is_empty(), "{dist:?}/{seed}: empty workload");

            let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
            let mut session = engine.open(&r, &t, &maps).unwrap();
            let mut emitted = BTreeSet::new();
            while let Some(event) = session.next_batch() {
                assert!(event.proven_final, "{dist:?}/{seed}: tentative batch");
                for tuple in &event.tuples {
                    let key = result_key(tuple);
                    assert!(
                        final_set.contains(&key),
                        "{dist:?}/{seed}: parallel emitted {key:?} which the \
                         sequential final result does not contain (false positive)"
                    );
                    assert!(emitted.insert(key), "{dist:?}/{seed}: duplicate emission");
                }
            }
            let stats = session.finish();
            assert!(!stats.cancelled, "{dist:?}/{seed}: spurious cancellation");
            assert_eq!(
                emitted, final_set,
                "{dist:?}/{seed}: parallel final set diverged (false negatives)"
            );
        }
    }
}

/// The tentpole's equivalence matrix: for each datagen distribution and
/// several seeds, the unified driver must produce the oracle's result set
/// on *every* backend/path combination — Inline with the default
/// pre-filter gate, Inline forced onto the batch path, Inline forced onto
/// the streaming path (the pre-PR sequential arrangement), and Pooled.
#[test]
fn unified_driver_matches_oracle_on_every_backend() {
    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ] {
        for seed in [3u64, 77] {
            let w = WorkloadSpec::new(250, 2, dist, 0.03)
                .with_seed(seed)
                .generate();
            let (r, t) = views(&w);
            let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
            // Shared brute-force reference (tests/common/oracle.rs): full
            // nested-loop join + map + model-aware skyline — what the
            // pre-refactor executor was verified against.
            let expected = common::oracle::workload_oracle_ids(&w, &maps);
            assert!(!expected.is_empty(), "{dist:?}/{seed}: empty oracle");

            let run_ids = |out: &progxe::core::RunOutput| -> BTreeSet<(u32, u32)> {
                out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect()
            };
            for (label, config) in [
                ("inline-default", ProgXeConfig::default()),
                (
                    "inline-batch",
                    ProgXeConfig::default().with_prefilter_min_pairs(0),
                ),
                (
                    "inline-streaming",
                    ProgXeConfig::default().with_prefilter_min_pairs(usize::MAX),
                ),
            ] {
                let out = ProgXe::new(config).run_collect(&r, &t, &maps).unwrap();
                assert!(!out.stats.cancelled);
                assert_eq!(
                    run_ids(&out),
                    expected,
                    "{dist:?}/{seed}: {label} diverged from the oracle"
                );
            }
            let pooled = ParallelProgXe::new(ProgXeConfig::default().with_threads(3))
                .run_collect(&r, &t, &maps)
                .unwrap();
            assert_eq!(
                run_ids(&pooled),
                expected,
                "{dist:?}/{seed}: pooled diverged from the oracle"
            );
        }
    }
}

/// Two identical parallel runs must produce the *identical* event stream —
/// same batches, same order — because the committer's pop/commit discipline
/// is deterministic regardless of worker timing.
#[test]
fn parallel_emission_is_deterministic_across_runs() {
    let w = WorkloadSpec::new(600, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(99)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
    let run = || {
        let mut session = engine.open(&r, &t, &maps).unwrap();
        let mut batches = Vec::new();
        while let Some(event) = session.next_batch() {
            batches.push(event.tuples);
        }
        batches
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "event stream depends on worker interleaving");
}

/// `ProgXeConfig::from_env` + the query dispatch rule means the CI matrix
/// (PROGXE_THREADS=4) runs this very test through the parallel engine.
#[test]
fn env_configured_thread_count_preserves_results() {
    let config = ProgXeConfig::from_env();
    let w = WorkloadSpec::new(400, 3, Distribution::Independent, 0.05)
        .with_seed(11)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
    let reference = ProgXe::new(ProgXeConfig::default())
        .run_collect(&r, &t, &maps)
        .unwrap();
    let out = if config.threads.get() > 1 {
        ParallelProgXe::new(config.clone())
            .run_collect(&r, &t, &maps)
            .unwrap()
    } else {
        ProgXe::new(config.clone())
            .run_collect(&r, &t, &maps)
            .unwrap()
    };
    let expect: BTreeSet<_> = reference.results.iter().map(result_key).collect();
    let got: BTreeSet<_> = out.results.iter().map(result_key).collect();
    assert_eq!(expect, got, "threads={}", config.threads.get());
    assert_eq!(out.stats.threads_used, config.threads.get());
}

/// Builds a 2-d workload that collapses into a single huge region
/// (1 partition per dimension, every tuple shares one join key), with a
/// mapping function that cancels the session token after `fuse` evaluations.
/// Lets us measure how promptly the tuple-level loop honors cancellation.
/// With the default config the region's 90 000-pair bound routes it through
/// the Inline *batch* (pre-filter) path; callers can pin the streaming path
/// via [`ProgXeConfig::prefilter_min_pairs`].
fn single_region_run(n: usize, fuse: u64) -> (u64, ExecStats) {
    single_region_run_with(n, fuse, ProgXeConfig::default().with_input_partitions(1))
}

fn single_region_run_with(n: usize, fuse: u64, config: ProgXeConfig) -> (u64, ExecStats) {
    let mut r = SourceData::new(2);
    let mut t = SourceData::new(2);
    let mut x: u64 = 5;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) % 1000) as f64 / 10.0
    };
    for _ in 0..n {
        r.push(&[next(), next()], 0);
        t.push(&[next(), next()], 0);
    }

    let token = CancellationToken::new();
    let evals = Arc::new(AtomicU64::new(0));
    let fuse_token = token.clone();
    let fuse_evals = Arc::clone(&evals);
    let counting = GeneralMap::new(
        "fused-sum",
        move |r: &[f64], t: &[f64]| {
            if fuse_evals.fetch_add(1, Ordering::Relaxed) + 1 == fuse {
                fuse_token.cancel();
            }
            r[0] + t[0]
        },
        |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
            (r_lo[0] + t_lo[0], r_hi[0] + t_hi[0])
        },
    );
    let plain = GeneralMap::new(
        "sum1",
        |r: &[f64], t: &[f64]| r[1] + t[1],
        |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
            (r_lo[1] + t_lo[1], r_hi[1] + t_hi[1])
        },
    );
    let maps = MapSet::new(
        vec![
            Box::new(counting) as Box<dyn MappingFunction>,
            Box::new(plain),
        ],
        Preference::all_lowest(2),
    )
    .unwrap();

    let exec = ProgXe::new(config);
    let mut session = exec
        .session_with_token(&r.view(), &t.view(), &maps, token)
        .unwrap();
    assert!(session.next_batch().is_none(), "cancel fires mid-region");
    let stats = session.finish();
    (evals.load(Ordering::Relaxed), stats)
}

/// Satellite: cancelling during one huge region must stop the join loop
/// within the token-check interval, not at the region boundary. With
/// n = 300 (90 000 matches in the single region), a fuse of 5 000 map
/// evaluations must stop the loop long before the region completes.
#[test]
fn cancel_during_a_single_huge_region_stops_promptly() {
    let n = 300u64;
    let full_matches = n * n; // one region, one join key ⇒ n² matches
    let (evals, stats) = single_region_run(n as usize, 5_000);
    assert!(stats.cancelled, "run must report cancellation");
    assert_eq!(stats.results_emitted, 0, "nothing may be emitted");
    assert_eq!(
        stats.regions_skipped, 1,
        "the single region stays unresolved"
    );
    // Partial work must be *accounted* (non-zero) yet bounded: the batch
    // path absorbs a cancelled region's counters without committing it.
    assert!(
        stats.join_matches > 0,
        "cancelled-run stats must reflect the partial join work"
    );
    assert!(
        stats.join_matches < full_matches / 4,
        "join stopped late: {} of {} matches processed",
        stats.join_matches,
        full_matches
    );
    // The map runs once per match (plus interval evaluations during
    // look-ahead); the overshoot past the fuse must stay within a few
    // token-check intervals, not scale with the region.
    assert!(
        evals < 5_000 + 4 * 256 * 2,
        "tuple loop overshot the cancellation fuse: {evals} evaluations"
    );
}

/// The same mid-region promptness holds when the Inline backend is pinned
/// to the *streaming* path (pre-filter disabled): the probe loop's token
/// checks are shared by both arrangements.
#[test]
fn cancel_mid_region_is_prompt_on_the_streaming_path_too() {
    let n = 300u64;
    let full_matches = n * n;
    let (evals, stats) = single_region_run_with(
        n as usize,
        5_000,
        ProgXeConfig::default()
            .with_input_partitions(1)
            .with_prefilter_min_pairs(usize::MAX),
    );
    assert!(stats.cancelled);
    assert_eq!(stats.results_emitted, 0);
    assert!(
        stats.join_matches < full_matches / 4,
        "streaming join stopped late: {} of {full_matches}",
        stats.join_matches
    );
    assert!(evals < 5_000 + 4 * 256 * 2, "overshot: {evals} evaluations");
}

/// `take(k)` through the Inline backend's batch (pre-filter) path: the
/// session stops early, skips the remaining regions, and still returns the
/// exact prefix a full run would have produced.
#[test]
fn take_k_stops_early_on_the_inline_batch_path() {
    let w = WorkloadSpec::new(600, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(5)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    // Force every region through batch compute + local pre-filter.
    let exec = ProgXe::new(ProgXeConfig::default().with_prefilter_min_pairs(0));
    let full = exec.run_collect(&r, &t, &maps).unwrap();
    assert!(full.results.len() >= 3, "workload too small");
    let k = 2;
    let partial = exec.session(&r, &t, &maps).unwrap().take(k);
    assert_eq!(partial.results.len(), k);
    assert_eq!(&full.results[..k], &partial.results[..]);
    assert!(partial.stats.cancelled);
    assert!(
        partial.stats.regions_skipped > 0,
        "remaining regions skipped"
    );
    assert!(partial.stats.regions_processed < full.stats.regions_processed);
}

/// Pool sharing end to end: the sessions of one parallel engine reuse a
/// single lazily-spawned pool, and dropping the engine joins its workers.
#[test]
fn engine_runtime_is_shared_and_shuts_down() {
    let w = WorkloadSpec::new(300, 2, Distribution::Independent, 0.03)
        .with_seed(9)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(3));
    assert_eq!(engine.runtime().pools_spawned(), 0, "runtime spawns lazily");
    let a = engine.run_collect(&r, &t, &maps).unwrap();
    let b = engine.run_collect(&r, &t, &maps).unwrap();
    assert_eq!(
        a.results, b.results,
        "shared-pool sessions must stay deterministic"
    );
    assert_eq!(
        engine.runtime().pools_spawned(),
        1,
        "second session must reuse the first session's pool"
    );
    let watch = engine.runtime().pool_watch().expect("pool spawned");
    drop(engine);
    assert!(
        watch.upgrade().is_none(),
        "dropping the engine must join the shared pool"
    );
}

/// The same property holds through the parallel driver: the in-flight
/// worker observes the token mid-region and the session ends cancelled.
#[test]
fn parallel_worker_stops_mid_region_on_cancel() {
    let n = 300usize;
    let mut r = SourceData::new(2);
    let mut t = SourceData::new(2);
    for i in 0..n {
        let v = (i % 97) as f64;
        r.push(&[v, 100.0 - v], 0);
        t.push(&[100.0 - v, v], 0);
    }
    let token = CancellationToken::new();
    let fuse_token = token.clone();
    let evals = Arc::new(AtomicU64::new(0));
    let fuse_evals = Arc::clone(&evals);
    let counting = GeneralMap::new(
        "fused-sum",
        move |r: &[f64], t: &[f64]| {
            if fuse_evals.fetch_add(1, Ordering::Relaxed) + 1 == 2_000 {
                fuse_token.cancel();
            }
            r[0] + t[0]
        },
        |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
            (r_lo[0] + t_lo[0], r_hi[0] + t_hi[0])
        },
    );
    let maps = MapSet::new(
        vec![Box::new(counting) as Box<dyn MappingFunction>],
        Preference::all_lowest(1),
    )
    .unwrap();
    let engine = ParallelProgXe::new(
        ProgXeConfig::default()
            .with_input_partitions(1)
            .with_threads(2),
    );
    let mut session = engine
        .session_with_token(&r.view(), &t.view(), &maps, token)
        .unwrap();
    assert!(session.next_batch().is_none());
    let stats = session.finish();
    assert!(stats.cancelled);
    assert_eq!(stats.results_emitted, 0);
    assert!(
        stats.join_matches < (n * n) as u64 / 4,
        "worker ignored the token mid-region ({} matches)",
        stats.join_matches
    );
}
