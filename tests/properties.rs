//! Property-based tests (proptest) for the core invariants:
//! dominance laws, skyline-algorithm agreement, mapping enclosures, and
//! end-to-end ProgXe correctness against the oracle.

use progxe::baselines::oracle_smj;
use progxe::core::prelude::*;
use progxe::skyline::{
    bnl_skyline, dnc_skyline, naive_skyline, salsa_skyline, sfs_skyline, DomRelation, PointStore,
};
use proptest::prelude::*;

fn small_value() -> impl Strategy<Value = f64> {
    // Small integer grid: plenty of ties and dominance chains.
    (0i32..12).prop_map(|v| v as f64)
}

fn point(dims: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(small_value(), dims)
}

fn points(dims: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(point(dims), 1..max)
}

fn store(rows: &[Vec<f64>], dims: usize) -> PointStore {
    PointStore::from_rows(dims, rows.iter())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dominance is irreflexive and antisymmetric; `compare` is consistent
    /// with `dominates` in both directions.
    #[test]
    fn dominance_laws(a in point(4), b in point(4)) {
        let pref = Preference::all_lowest(4);
        prop_assert!(!pref.dominates(&a, &a), "irreflexive");
        let ab = pref.dominates(&a, &b);
        let ba = pref.dominates(&b, &a);
        prop_assert!(!(ab && ba), "antisymmetric");
        match pref.compare(&a, &b) {
            DomRelation::Dominates => prop_assert!(ab && !ba),
            DomRelation::DominatedBy => prop_assert!(ba && !ab),
            DomRelation::Equal => {
                prop_assert!(!ab && !ba);
                prop_assert_eq!(&a, &b);
            }
            DomRelation::Incomparable => prop_assert!(!ab && !ba),
        }
    }

    /// Dominance is transitive.
    #[test]
    fn dominance_transitive(a in point(3), b in point(3), c in point(3)) {
        let pref = Preference::all_lowest(3);
        if pref.dominates(&a, &b) && pref.dominates(&b, &c) {
            prop_assert!(pref.dominates(&a, &c));
        }
    }

    /// All four skyline algorithms agree with the naive oracle.
    #[test]
    fn skyline_algorithms_agree(rows in points(3, 60)) {
        let s = store(&rows, 3);
        let pref = Preference::all_lowest(3);
        let expected = naive_skyline(&s, &pref).sorted_indices();
        prop_assert_eq!(bnl_skyline(&s, &pref).sorted_indices(), expected.clone(), "bnl");
        prop_assert_eq!(sfs_skyline(&s, &pref).sorted_indices(), expected.clone(), "sfs");
        prop_assert_eq!(dnc_skyline(&s, &pref).sorted_indices(), expected.clone(), "dnc");
        prop_assert_eq!(salsa_skyline(&s, &pref).sorted_indices(), expected, "salsa");
    }

    /// The skyline is exactly the non-dominated subset: no member is
    /// dominated, every non-member is dominated by some member.
    #[test]
    fn skyline_definition_holds(rows in points(2, 40)) {
        let s = store(&rows, 2);
        let pref = Preference::all_lowest(2);
        let sky = naive_skyline(&s, &pref);
        let members: std::collections::HashSet<usize> = sky.indices.iter().copied().collect();
        for i in 0..s.len() {
            let dominated_by_member = sky
                .indices
                .iter()
                .any(|&m| pref.dominates(s.point(m), s.point(i)));
            if members.contains(&i) {
                prop_assert!(!dominated_by_member, "member {i} dominated");
            } else {
                prop_assert!(dominated_by_member, "non-member {i} not dominated");
            }
        }
    }

    /// WeightedSum interval evaluation encloses every sampled evaluation.
    #[test]
    fn weighted_sum_enclosure(
        rw in prop::collection::vec(-3.0f64..3.0, 2),
        tw in prop::collection::vec(-3.0f64..3.0, 2),
        r_lo in point(2), t_lo in point(2),
        r_span in point(2), t_span in point(2),
        fr in 0.0f64..1.0, ft in 0.0f64..1.0,
    ) {
        let f = WeightedSum::new(rw, tw);
        let r_hi: Vec<f64> = r_lo.iter().zip(&r_span).map(|(a, s)| a + s).collect();
        let t_hi: Vec<f64> = t_lo.iter().zip(&t_span).map(|(a, s)| a + s).collect();
        let (lo, hi) = f.eval_bounds(&r_lo, &r_hi, &t_lo, &t_hi);
        // Sample an interior point per box.
        let r: Vec<f64> = r_lo.iter().zip(&r_hi).map(|(a, b)| a + (b - a) * fr).collect();
        let t: Vec<f64> = t_lo.iter().zip(&t_hi).map(|(a, b)| a + (b - a) * ft).collect();
        let v = f.eval(&r, &t);
        prop_assert!(lo - 1e-9 <= v && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }
}

/// Rows of one random source: attributes plus a join key each.
type SourceRows = Vec<(Vec<f64>, u32)>;

/// A random SMJ instance: attribute rows plus join keys for both sources.
fn smj_instance(
    dims: usize,
    max_rows: usize,
    keys: u32,
) -> impl Strategy<Value = (SourceRows, SourceRows)> {
    let row = |dims: usize| (point(dims), 0..keys);
    (
        prop::collection::vec(row(dims), 1..max_rows),
        prop::collection::vec(row(dims), 1..max_rows),
    )
}

fn build_source(rows: &SourceRows, dims: usize) -> SourceData {
    let mut s = SourceData::new(dims);
    for (attrs, key) in rows {
        s.push(attrs, *key);
    }
    s
}

fn result_ids(results: &[ResultTuple]) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ProgXe (default config) equals the nested-loop + naive-skyline
    /// oracle on arbitrary small instances — the headline correctness
    /// property of the whole framework.
    #[test]
    fn progxe_equals_oracle((r_rows, t_rows) in smj_instance(2, 40, 4)) {
        let r = build_source(&r_rows, 2);
        let t = build_source(&t_rows, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = result_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let out = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        prop_assert_eq!(result_ids(&out.results), expected);
    }

    /// Ordering policy never affects the result set (only its timing).
    #[test]
    fn ordering_invariance((r_rows, t_rows) in smj_instance(2, 30, 3), seed in any::<u64>()) {
        let r = build_source(&r_rows, 2);
        let t = build_source(&t_rows, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let a = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        let b = ProgXe::new(
            ProgXeConfig::default().with_ordering(OrderingPolicy::Random { seed }),
        )
        .run_collect(&r.view(), &t.view(), &maps)
        .unwrap();
        prop_assert_eq!(result_ids(&a.results), result_ids(&b.results));
    }

    /// Push-through pruning is invisible in the result set.
    #[test]
    fn push_through_invariance((r_rows, t_rows) in smj_instance(3, 30, 3)) {
        let r = build_source(&r_rows, 3);
        let t = build_source(&t_rows, 3);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let plain = ProgXe::new(ProgXeConfig::variation(true, false))
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        let plus = ProgXe::new(ProgXeConfig::variation(true, true))
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        prop_assert_eq!(result_ids(&plain.results), result_ids(&plus.results));
    }

    /// Grid granularity is invisible in the result set.
    #[test]
    fn granularity_invariance(
        (r_rows, t_rows) in smj_instance(2, 30, 3),
        p in 1usize..6,
        k in 2usize..40,
    ) {
        let r = build_source(&r_rows, 2);
        let t = build_source(&t_rows, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let base = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        let other = ProgXe::new(
            ProgXeConfig::default()
                .with_input_partitions(p)
                .with_output_cells(k),
        )
        .run_collect(&r.view(), &t.view(), &maps)
        .unwrap();
        prop_assert_eq!(result_ids(&base.results), result_ids(&other.results));
    }

    /// Mixed preference directions stay oracle-equal.
    #[test]
    fn mixed_directions_equal_oracle((r_rows, t_rows) in smj_instance(2, 30, 3)) {
        let r = build_source(&r_rows, 2);
        let t = build_source(&t_rows, 2);
        let maps =
            MapSet::pairwise_sum(2, Preference::new(vec![Order::Lowest, Order::Highest]));
        let expected = result_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let out = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        prop_assert_eq!(result_ids(&out.results), expected);
    }
}
