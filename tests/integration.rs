//! Cross-crate integration tests: generated workloads → every engine →
//! oracle equivalence, progressive soundness, determinism.

use progxe::baselines::{jfsl, jfsl_plus, oracle_smj, saj, ssmj, SkyAlgo};
use progxe::core::prelude::*;
use progxe::core::sink::ProgressSink;
use progxe::datagen::{Distribution, WorkloadSpec};

fn views(w: &progxe::datagen::SmjWorkload) -> (SourceView<'_>, SourceView<'_>) {
    (
        SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap(),
        SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap(),
    )
}

fn ids(results: &[ResultTuple]) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
    v.sort_unstable();
    v
}

#[test]
fn progxe_matches_oracle_on_all_distributions() {
    for dist in Distribution::ALL {
        for dims in [2usize, 3, 4] {
            let w = WorkloadSpec::new(250, dims, dist, 0.05)
                .with_seed(41 + dims as u64)
                .generate();
            let (r, t) = views(&w);
            let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
            let expected = ids(&oracle_smj(&r, &t, &maps));
            let out = ProgXe::new(ProgXeConfig::default())
                .run_collect(&r, &t, &maps)
                .unwrap();
            assert_eq!(
                ids(&out.results),
                expected,
                "{} d={dims} diverged from oracle",
                dist.name()
            );
        }
    }
}

#[test]
fn all_baselines_match_oracle() {
    let w = WorkloadSpec::new(300, 3, Distribution::Independent, 0.02)
        .with_seed(7)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
    let expected = ids(&oracle_smj(&r, &t, &maps));

    let mut sink = CollectSink::default();
    jfsl(&r, &t, &maps, SkyAlgo::Bnl, &mut sink);
    assert_eq!(ids(&sink.results), expected, "JF-SL");

    let mut sink = CollectSink::default();
    jfsl_plus(&r, &t, &maps, SkyAlgo::Dnc, &mut sink);
    assert_eq!(ids(&sink.results), expected, "JF-SL+");

    let mut sink = CollectSink::default();
    saj(&r, &t, &maps, SkyAlgo::Salsa, &mut sink);
    assert_eq!(ids(&sink.results), expected, "SAJ");

    // SSMJ's emitted union ⊇ oracle; surplus = batch-1 false positives.
    let mut sink = CollectSink::default();
    let stats = ssmj(&r, &t, &maps, SkyAlgo::Sfs, &mut sink);
    let emitted = ids(&sink.results);
    for id in &expected {
        assert!(emitted.contains(id), "SSMJ missing {id:?}");
    }
    assert_eq!(
        emitted.len(),
        expected.len() + stats.batch1_false_positives as usize
    );
}

/// Progressive soundness: every ProgXe batch must contain only tuples of
/// the *final* skyline (no false positives at any point in time), and the
/// union of batches must be the complete skyline (no false negatives).
#[test]
fn progressive_output_is_sound_and_complete() {
    for dist in Distribution::ALL {
        let w = WorkloadSpec::new(400, 3, dist, 0.03)
            .with_seed(99)
            .generate();
        let (r, t) = views(&w);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let expected = ids(&oracle_smj(&r, &t, &maps));
        let mut sink = ProgressSink::new();
        ProgXe::new(ProgXeConfig::default())
            .run(&r, &t, &maps, &mut sink)
            .unwrap();
        // Soundness + completeness: emitted set == oracle set.
        assert_eq!(ids(&sink.results), expected, "{}", dist.name());
        // Monotone, strictly growing cumulative counts.
        let mut prev = 0;
        for rec in &sink.records {
            assert!(rec.cumulative > prev, "batch must add results");
            prev = rec.cumulative;
        }
        assert_eq!(prev as usize, expected.len());
    }
}

#[test]
fn deterministic_across_runs() {
    let w = WorkloadSpec::new(300, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(5)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    let exec = ProgXe::new(ProgXeConfig::default());
    let a = exec.run_collect(&r, &t, &maps).unwrap();
    let b = exec.run_collect(&r, &t, &maps).unwrap();
    // Same results in the same emission order.
    assert_eq!(a.results, b.results);
    assert_eq!(a.stats.regions_processed, b.stats.regions_processed);
    assert_eq!(a.stats.dominance_tests, b.stats.dominance_tests);
}

#[test]
fn every_engine_through_the_query_layer() {
    use progxe::core::source::SourceData;
    use progxe::query::{Catalog, Engine, QueryRunner, TableSchema};

    let w = WorkloadSpec::new(200, 2, Distribution::Independent, 0.05)
        .with_seed(3)
        .generate();
    let mut suppliers = SourceData::new(2);
    for i in 0..w.r.len() {
        suppliers.push(w.r.attrs_of(i), w.r.join_key_of(i));
    }
    let mut transporters = SourceData::new(2);
    for i in 0..w.t.len() {
        transporters.push(w.t.attrs_of(i), w.t.join_key_of(i));
    }
    let mut catalog = Catalog::new();
    catalog.register(
        TableSchema::new("S", vec!["a".into(), "b".into()], "k"),
        suppliers,
    );
    catalog.register(
        TableSchema::new("T", vec!["a".into(), "b".into()], "k"),
        transporters,
    );
    let runner = QueryRunner::new(catalog);
    let sql = "SELECT (R.a + X.a) AS c0, (R.b + X.b) AS c1 FROM S R, T X \
               WHERE R.k = X.k PREFERRING LOWEST(c0) AND LOWEST(c1)";
    let reference = ids(&runner
        .run_collect(sql, &Engine::JfSl(SkyAlgo::Bnl))
        .unwrap()
        .results);
    assert!(!reference.is_empty());
    for engine in [
        Engine::progxe(),
        Engine::JfSlPlus(SkyAlgo::Sfs),
        Engine::Saj(SkyAlgo::Bnl),
    ] {
        let out = runner.run_collect(sql, &engine).unwrap();
        assert_eq!(ids(&out.results), reference, "{}", engine.name());
    }
}

#[test]
fn progxe_plus_and_signatures_do_not_change_results() {
    let w = WorkloadSpec::new(350, 3, Distribution::Correlated, 0.02)
        .with_seed(11)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
    let base = ids(&ProgXe::new(ProgXeConfig::default())
        .run_collect(&r, &t, &maps)
        .unwrap()
        .results);
    for config in [
        ProgXeConfig::variation(true, true),
        ProgXeConfig::variation(false, true),
        ProgXeConfig::default().with_signature(SignatureConfig::Bloom { bits: 512 }),
        ProgXeConfig::default()
            .with_input_partitions(5)
            .with_output_cells(40),
    ] {
        let out = ProgXe::new(config.clone())
            .run_collect(&r, &t, &maps)
            .unwrap();
        assert_eq!(ids(&out.results), base, "config {config:?}");
    }
}

#[test]
fn mixed_direction_preferences_end_to_end() {
    let w = WorkloadSpec::new(250, 2, Distribution::Independent, 0.04)
        .with_seed(13)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::new(vec![Order::Lowest, Order::Highest]));
    let expected = ids(&oracle_smj(&r, &t, &maps));
    let out = ProgXe::new(ProgXeConfig::variation(true, true))
        .run_collect(&r, &t, &maps)
        .unwrap();
    assert_eq!(ids(&out.results), expected);
}

#[test]
fn stats_describe_the_pipeline() {
    let w = WorkloadSpec::new(500, 3, Distribution::Independent, 0.01)
        .with_seed(17)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
    let out = ProgXe::new(ProgXeConfig::default())
        .run_collect(&r, &t, &maps)
        .unwrap();
    let s = &out.stats;
    assert!(s.partitions_r > 0 && s.partitions_t > 0);
    assert!(s.regions_created > 0);
    assert!(s.cells_tracked > 0);
    assert_eq!(s.results_emitted as usize, out.results.len());
    assert!(s.join_matches >= s.results_emitted);
    assert!(s.total_time >= s.lookahead_time);
}
