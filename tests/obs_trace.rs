//! Trace well-formedness: the observability subsystem's structural
//! guarantees, fuzzed across workload distributions and seeds on both
//! executor backends.
//!
//! * Every span begun ends exactly once (balanced begin/end, unique ids,
//!   monotone sequence numbers) — on completed *and* cancelled sessions.
//! * Inline and Pooled backends agree on the multiset of `emit` points
//!   (tracing must see the same bit-identical emission the session
//!   contract guarantees).
//! * Streaming sessions record `ingest_batch` spans, `seal` points on
//!   close, and `stall` points while the schedule is input-gated.

use progxe::core::config::ProgXeConfig;
use progxe::core::driver::ExecutorBackend;
use progxe::core::ingest::{IngestPoll, IngestSession, SourceId, StreamSpec};
use progxe::core::mapping::MapSet;
use progxe::core::prelude::*;
use progxe::core::session::CancellationToken;
use progxe::datagen::{Distribution, SmjWorkload, WorkloadSpec};
use progxe::obs::{Event, EventKind, Point, Recorder, RingRecorder, Span, SpanId};
use progxe::runtime::ParallelProgXe;
use progxe::skyline::Preference;
use std::collections::BTreeMap;
use std::sync::Arc;

const DISTRIBUTIONS: [Distribution; 3] = [
    Distribution::Correlated,
    Distribution::Independent,
    Distribution::AntiCorrelated,
];

fn views(w: &SmjWorkload) -> (SourceView<'_>, SourceView<'_>) {
    (
        SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap(),
        SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap(),
    )
}

fn big_ring() -> Arc<RingRecorder> {
    // Large enough that no test workload can overflow: a dropped event
    // would make the balance check vacuous.
    Arc::new(RingRecorder::with_capacity(1 << 20))
}

/// Asserts the structural invariants every trace must satisfy and returns
/// the number of spans seen.
fn assert_wellformed(events: &[Event], ctx: &str) -> usize {
    let mut last_seq = None;
    let mut open: BTreeMap<SpanId, Span> = BTreeMap::new();
    let mut closed: BTreeMap<SpanId, ()> = BTreeMap::new();
    for event in events {
        if let Some(prev) = last_seq {
            assert!(event.seq > prev, "{ctx}: seq not strictly increasing");
        }
        last_seq = Some(event.seq);
        match &event.kind {
            EventKind::SpanBegin { id, span } => {
                assert!(
                    !closed.contains_key(id),
                    "{ctx}: span id {id} reused after close"
                );
                assert!(
                    open.insert(*id, *span).is_none(),
                    "{ctx}: span id {id} begun twice"
                );
            }
            EventKind::SpanEnd { id } => {
                assert!(
                    open.remove(id).is_some(),
                    "{ctx}: span {id} ended without begin (or twice)"
                );
                closed.insert(*id, ());
            }
            _ => {}
        }
    }
    assert!(
        open.is_empty(),
        "{ctx}: {} spans never closed: {:?}",
        open.len(),
        open.values().map(Span::name).collect::<Vec<_>>()
    );
    closed.len()
}

/// The multiset of `emit` points, sorted for comparison.
fn emit_multiset(events: &[Event]) -> Vec<(u64, u64, bool)> {
    let mut emits: Vec<(u64, u64, bool)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Point(Point::Emit {
                cell,
                n,
                proven_final,
            }) => Some((cell, n, proven_final)),
            _ => None,
        })
        .collect();
    emits.sort_unstable();
    emits
}

fn has_point(events: &[Event], want: &str) -> bool {
    events.iter().any(|e| match &e.kind {
        EventKind::Point(p) => p.name() == want,
        _ => false,
    })
}

#[test]
fn spans_balance_and_backends_agree_on_emission() {
    for dist in DISTRIBUTIONS {
        for seed in [7u64, 4242] {
            let w = WorkloadSpec::new(400, 2, dist, 0.02)
                .with_seed(seed)
                .generate();
            let (r, t) = views(&w);
            let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
            let ctx = format!("{dist:?}/{seed}");

            let inline_ring = big_ring();
            let inline = ProgXe::new(ProgXeConfig::default())
                .with_recorder(inline_ring.clone() as Arc<dyn Recorder>)
                .run_collect(&r, &t, &maps)
                .unwrap();
            assert_eq!(inline_ring.dropped(), 0, "{ctx}: inline ring overflowed");
            let inline_events = inline_ring.drain();
            let spans = assert_wellformed(&inline_events, &format!("{ctx}/inline"));
            assert!(spans > 0, "{ctx}: no spans recorded");

            let pooled_ring = big_ring();
            let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
                .with_recorder(pooled_ring.clone() as Arc<dyn Recorder>);
            let pooled = engine.run_collect(&r, &t, &maps).unwrap();
            drop(engine); // joins the pool: every worker-side event has landed
            assert_eq!(pooled_ring.dropped(), 0, "{ctx}: pooled ring overflowed");
            let pooled_events = pooled_ring.drain();
            assert_wellformed(&pooled_events, &format!("{ctx}/pooled"));

            let inline_emits = emit_multiset(&inline_events);
            assert_eq!(
                inline_emits,
                emit_multiset(&pooled_events),
                "{ctx}: backends disagree on emit events"
            );
            let traced: u64 = inline_emits.iter().map(|&(_, n, _)| n).sum();
            assert_eq!(
                traced, inline.stats.results_emitted,
                "{ctx}: emit points must account for every result"
            );
            assert_eq!(inline.stats.results_emitted, pooled.stats.results_emitted);
            assert!(
                inline_emits.iter().all(|&(_, _, f)| f),
                "{ctx}: ProgXe emitted a non-final batch"
            );
        }
    }
}

#[test]
fn cancelled_sessions_close_every_span() {
    for dist in DISTRIBUTIONS {
        for seed in [11u64, 23] {
            let w = WorkloadSpec::new(500, 2, dist, 0.05)
                .with_seed(seed)
                .generate();
            let (r, t) = views(&w);
            let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));

            for backend in ["inline", "pooled"] {
                let ctx = format!("{dist:?}/{seed}/{backend}/cancelled");
                let ring = big_ring();
                let pooled_engine = (backend == "pooled").then(|| {
                    ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
                        .with_recorder(ring.clone() as Arc<dyn Recorder>)
                });
                let out = match &pooled_engine {
                    Some(engine) => engine.open(&r, &t, &maps).unwrap().take(1),
                    None => ProgXe::new(ProgXeConfig::default())
                        .with_recorder(ring.clone() as Arc<dyn Recorder>)
                        .open(&r, &t, &maps)
                        .unwrap()
                        .take(1),
                };
                // Joining the pool bounds the wait for in-flight workers'
                // span ends; aborted deliveries close their spans on the
                // unwind path before the guard reports.
                drop(pooled_engine);
                assert_eq!(out.results.len(), 1, "{ctx}: no result before cancel");
                assert!(out.stats.cancelled, "{ctx}: take(1) must cancel");
                assert_eq!(ring.dropped(), 0, "{ctx}: ring overflowed");
                let events = ring.drain();
                assert_wellformed(&events, &ctx);
                assert!(
                    has_point(&events, "cancel"),
                    "{ctx}: no cancel point recorded"
                );
            }
        }
    }
}

#[test]
fn ingest_traces_record_batches_seals_and_stalls() {
    let dims = 2;
    for dist in DISTRIBUTIONS {
        let w = WorkloadSpec::new(240, dims, dist, 0.05)
            .with_seed(99)
            .generate();
        let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
        let spec = || StreamSpec::new(vec![1.0; dims], vec![100.0; dims]).unwrap();
        let ctx = format!("{dist:?}/ingest");

        let run = |session: &mut IngestSession| -> (u64, usize) {
            let mut results = 0u64;
            let mut pushes = 0usize;
            for (side, rel) in [(SourceId::R, &w.r), (SourceId::T, &w.t)] {
                for chunk in 0..4 {
                    let lo = chunk * 60;
                    let rows: Vec<(&[f64], u32)> = (lo..lo + 60)
                        .map(|i| (rel.attrs_of(i), rel.join_key_of(i)))
                        .collect();
                    session.push(side, &rows).unwrap();
                    pushes += 1;
                    // Mid-ingest poll: with both sources still open the
                    // schedule is input-gated, so stalls are recorded.
                    while let IngestPoll::Batch(e) = session.poll() {
                        results += e.tuples.len() as u64;
                    }
                }
            }
            session.close(SourceId::R);
            session.close(SourceId::T);
            loop {
                match session.poll() {
                    IngestPoll::Batch(e) => results += e.tuples.len() as u64,
                    IngestPoll::NeedInput => panic!("{ctx}: closed session needs input"),
                    IngestPoll::Complete => break,
                }
            }
            (results, pushes)
        };

        let ring = big_ring();
        let mut session = IngestSession::open_observed(
            &ProgXeConfig::default(),
            &maps,
            spec(),
            spec(),
            ExecutorBackend::Inline,
            CancellationToken::new(),
            Some(ring.clone() as Arc<dyn Recorder>),
        )
        .unwrap();
        let (results, pushes) = run(&mut session);
        let stats = session.finish();
        assert!(!stats.cancelled, "{ctx}");
        assert_eq!(ring.dropped(), 0, "{ctx}: ring overflowed");
        let events = ring.drain();
        assert_wellformed(&events, &ctx);

        let batch_spans = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::SpanBegin {
                        span: Span::IngestBatch { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(batch_spans, pushes, "{ctx}: one span per accepted batch");
        assert!(has_point(&events, "seal"), "{ctx}: close never sealed");
        assert!(
            has_point(&events, "stall"),
            "{ctx}: gated polls never stalled"
        );
        let traced: u64 = emit_multiset(&events).iter().map(|&(_, n, _)| n).sum();
        assert_eq!(traced, results, "{ctx}: emit points vs polled results");
        assert_eq!(results, stats.results_emitted, "{ctx}");
        assert!(
            stats.batch_interarrival.count() as usize >= pushes - 1,
            "{ctx}: inter-arrival histogram missing batches"
        );

        // The pooled backend must trace the identical emission.
        let pooled_ring = big_ring();
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
            .with_recorder(pooled_ring.clone() as Arc<dyn Recorder>);
        let mut pooled = engine.open_ingest(&maps, spec(), spec()).unwrap();
        let (pooled_results, _) = run(&mut pooled);
        assert!(!pooled.finish().cancelled, "{ctx}");
        drop(engine);
        assert_eq!(pooled_ring.dropped(), 0, "{ctx}: pooled ring overflowed");
        let pooled_events = pooled_ring.drain();
        assert_wellformed(&pooled_events, &format!("{ctx}/pooled"));
        assert_eq!(pooled_results, results, "{ctx}: backends diverged");
        assert_eq!(
            emit_multiset(&pooled_events),
            emit_multiset(&events),
            "{ctx}: backends disagree on streamed emit events"
        );
    }
}
