//! Shared helpers for the integration suites. Each test binary compiles
//! this module independently and uses a subset of it.
#![allow(dead_code)]

pub mod oracle;
