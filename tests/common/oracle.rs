//! The one brute-force reference every integration suite checks against:
//! full nested-loop join + map + skyline under the query's
//! [`DominanceModel`](progxe::core::fdom::DominanceModel) — classical
//! Pareto by default, F-dominance when the [`MapSet`] carries a flexible
//! weight family. Replaces the per-suite oracles that used to be
//! duplicated across `tests/parallel.rs`, `tests/ingest.rs`, and
//! `tests/streaming.rs`.

use progxe::core::mapping::MapSet;
use progxe::core::source::SourceView;
use progxe::datagen::SmjWorkload;
use std::collections::BTreeSet;

/// Brute-force result-id set of a SkyMapJoin query under `maps`'s
/// dominance model: every join match is materialized and a tuple survives
/// iff no other match dominates it ([`MapSet::result_dominates`]).
pub fn oracle_ids(r: &SourceView<'_>, t: &SourceView<'_>, maps: &MapSet) -> BTreeSet<(u32, u32)> {
    let mut points: Vec<Vec<f64>> = Vec::new();
    let mut ids: Vec<(u32, u32)> = Vec::new();
    let mut buf = Vec::new();
    for ri in 0..r.len() {
        for ti in 0..t.len() {
            if r.join_key_of(ri) != t.join_key_of(ti) {
                continue;
            }
            maps.eval_into(r.attrs_of(ri), t.attrs_of(ti), &mut buf);
            points.push(buf.clone());
            ids.push((ri as u32, ti as u32));
        }
    }
    (0..ids.len())
        .filter(|&i| {
            !(0..ids.len()).any(|j| j != i && maps.result_dominates(&points[j], &points[i]))
        })
        .map(|i| ids[i])
        .collect()
}

/// [`oracle_ids`] over a generated workload's two relations.
pub fn workload_oracle_ids(w: &SmjWorkload, maps: &MapSet) -> BTreeSet<(u32, u32)> {
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).expect("parallel arrays");
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).expect("parallel arrays");
    oracle_ids(&r, &t, maps)
}
