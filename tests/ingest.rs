//! Differential arrival-order fuzzing for streaming ingestion.
//!
//! The contract under test (see `progxe_core::ingest`): for a fixed logical
//! input — row ids, attributes, join keys — the streaming engine's emitted
//! event sequence is **identical** for *every* arrival schedule (batch
//! sizes × row orders × watermark cadences × source interleavings) and
//! equal to the all-at-once run, on both the Inline and Pooled backends;
//! and the final result set equals the batch engine's. Along the way every
//! run re-checks the session invariants: progress estimates clamped to
//! `[0, 1]` and monotone, every batch proven-final, and no tuple ever
//! emitted twice (no retraction).

mod common;

use progxe::core::ingest::{IngestPoll, IngestSession, SourceId, StreamSpec};
use progxe::core::prelude::*;
use progxe::datagen::{ArrivalSchedule, ArrivalSpec, Batching, Distribution, WorkloadSpec};
use progxe::runtime::ParallelProgXe;

const N: usize = 120;
const DIMS: usize = 2;

/// Flattened emission transcript: one inner vec per `ResultEvent`.
type Transcript = Vec<Vec<(u32, u32)>>;

fn spec() -> StreamSpec {
    // The generator's declared value range is [1, 100].
    StreamSpec::new(vec![0.0; DIMS], vec![101.0; DIMS]).unwrap()
}

fn open_session(pooled: bool) -> IngestSession {
    let maps = MapSet::pairwise_sum(DIMS, Preference::all_lowest(DIMS));
    let config = ProgXeConfig::default();
    if pooled {
        ParallelProgXe::new(config.with_threads(3))
            .open_ingest(&maps, spec(), spec())
            .unwrap()
    } else {
        IngestSession::open(&config, &maps, spec(), spec()).unwrap()
    }
}

/// Drains deliverable events, checking the session invariants as it goes.
fn drain(
    session: &mut IngestSession,
    transcript: &mut Transcript,
    seen: &mut std::collections::HashSet<(u32, u32)>,
    last_progress: &mut f64,
) {
    while let IngestPoll::Batch(event) = session.poll() {
        assert!(event.proven_final, "every ingest batch is final");
        assert!(
            (0.0..=1.0).contains(&event.progress_estimate),
            "progress clamped"
        );
        assert!(
            event.progress_estimate >= *last_progress,
            "progress monotone across ingest-unlocked batches"
        );
        *last_progress = event.progress_estimate;
        let ids: Vec<(u32, u32)> = event.tuples.iter().map(|t| (t.r_idx, t.t_idx)).collect();
        for &id in &ids {
            assert!(seen.insert(id), "tuple {id:?} emitted twice (retraction)");
        }
        transcript.push(ids);
    }
}

/// Runs one full streaming session following per-source schedules
/// interleaved round-robin, returning the emission transcript.
fn run_schedule(
    w: &progxe::datagen::SmjWorkload,
    r_sched: &ArrivalSchedule,
    t_sched: &ArrivalSchedule,
    pooled: bool,
) -> Transcript {
    let mut session = open_session(pooled);
    let mut transcript = Transcript::new();
    let mut seen = std::collections::HashSet::new();
    let mut progress = 0.0;

    let steps = r_sched.batches.len().max(t_sched.batches.len());
    for i in 0..steps {
        for (side, rel, sched) in [(SourceId::R, &w.r, r_sched), (SourceId::T, &w.t, t_sched)] {
            let Some(batch) = sched.batches.get(i) else {
                continue;
            };
            let rows: Vec<(u32, &[f64], u32)> = batch
                .rows
                .iter()
                .map(|&row| {
                    (
                        row,
                        rel.attrs_of(row as usize),
                        rel.join_key_of(row as usize),
                    )
                })
                .collect();
            session.push_with_ids(side, &rows).unwrap();
            if let Some(wm) = &batch.watermark {
                session.set_watermark(side, wm).unwrap();
            }
            drain(&mut session, &mut transcript, &mut seen, &mut progress);
        }
    }
    session.close(SourceId::R);
    session.close(SourceId::T);
    drain(&mut session, &mut transcript, &mut seen, &mut progress);
    assert!(matches!(session.poll(), IngestPoll::Complete));
    let stats = session.finish();
    assert!(!stats.cancelled, "fully-fed session must complete");
    assert_eq!(stats.tuples_ingested, (w.r.len() + w.t.len()) as u64);
    transcript
}

/// The all-at-once oracle: everything pushed in relation order, then close.
fn oracle(w: &progxe::datagen::SmjWorkload, pooled: bool) -> Transcript {
    let all = |rel: &progxe::datagen::Relation| ArrivalSchedule {
        batches: vec![progxe::datagen::ArrivalBatch {
            rows: (0..rel.len() as u32).collect(),
            watermark: None,
        }],
    };
    run_schedule(w, &all(&w.r), &all(&w.t), pooled)
}

/// The batch engine's result set on the same workload.
fn batch_ids(w: &progxe::datagen::SmjWorkload) -> Vec<(u32, u32)> {
    let maps = MapSet::pairwise_sum(DIMS, Preference::all_lowest(DIMS));
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
    let out = ProgXe::new(ProgXeConfig::default())
        .run_collect(&r, &t, &maps)
        .unwrap();
    let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
    ids.sort_unstable();
    ids
}

/// The shared brute-force oracle's result set (tests/common/oracle.rs).
fn naive_ids(w: &progxe::datagen::SmjWorkload) -> Vec<(u32, u32)> {
    let maps = MapSet::pairwise_sum(DIMS, Preference::all_lowest(DIMS));
    common::oracle::workload_oracle_ids(w, &maps)
        .into_iter()
        .collect()
}

/// The sampled schedule grid: 3 orders × 3 batchings/cadences = 9 specs.
fn schedule_specs(seed: u64) -> Vec<ArrivalSpec> {
    let mut specs = Vec::new();
    for order_spec in [
        ArrivalSpec::uniform_shuffle(seed, 13),
        ArrivalSpec::attr_sorted(17),
        ArrivalSpec {
            order: progxe::datagen::ArrivalOrder::Original,
            batching: Batching::Fixed(40),
            watermark_every: Some(1),
            seed,
        },
    ] {
        for variant in 0..3 {
            let mut s = order_spec.clone();
            match variant {
                0 => {} // the preset's own batching + per-batch watermarks
                1 => {
                    s.batching = Batching::Bursty {
                        small: 5,
                        large: 45,
                    };
                    s.watermark_every = Some(4);
                }
                _ => {
                    s.batching = Batching::Fixed(29);
                    s.watermark_every = None; // no watermarks at all
                }
            }
            specs.push(s);
        }
    }
    specs
}

/// ≥50 sampled arrival schedules over 3 distributions × 2 seeds, asserting
/// streaming ≡ all-at-once oracle (result set *and* emission order) on the
/// Inline backend.
#[test]
fn arrival_order_fuzz_inline() {
    arrival_order_fuzz(false);
}

/// The same grid through the Pooled backend (shared worker pool).
#[test]
fn arrival_order_fuzz_pooled() {
    arrival_order_fuzz(true);
}

fn arrival_order_fuzz(pooled: bool) {
    let mut schedules_run = 0usize;
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
    ] {
        for seed in [11u64, 29] {
            let w = WorkloadSpec::new(N, DIMS, dist, 0.1)
                .with_seed(seed)
                .generate();
            let reference = oracle(&w, pooled);
            assert!(
                reference.iter().map(|b| b.len()).sum::<usize>() > 0,
                "workload produced no results — fuzz would be vacuous"
            );
            // Result-set equality with the *batch engine* and with the
            // shared brute-force oracle.
            let mut flat: Vec<(u32, u32)> = reference.iter().flatten().copied().collect();
            flat.sort_unstable();
            assert_eq!(flat, batch_ids(&w), "{dist:?}/{seed}: oracle vs batch");
            assert_eq!(flat, naive_ids(&w), "{dist:?}/{seed}: oracle vs naive");

            for (si, spec) in schedule_specs(seed).into_iter().enumerate() {
                // R and T follow differently-seeded variants of the same
                // spec so their interleaving is non-trivial.
                let mut t_spec = spec.clone();
                t_spec.seed = spec.seed.wrapping_add(1);
                let r_sched = spec.schedule(&w.r);
                let t_sched = t_spec.schedule(&w.t);
                let transcript = run_schedule(&w, &r_sched, &t_sched, pooled);
                assert_eq!(
                    transcript, reference,
                    "{dist:?}/seed {seed}/schedule {si}: emission diverged from all-at-once"
                );
                schedules_run += 1;
            }
        }
    }
    assert!(
        schedules_run >= 50,
        "fuzz grid shrank below the 50-schedule floor ({schedules_run})"
    );
}

/// `cancel()` during ingestion on a never-closed source stops cleanly —
/// no deadlock, stats flagged cancelled — on both backends.
#[test]
fn cancel_during_ingestion_never_deadlocks() {
    for pooled in [false, true] {
        let w = WorkloadSpec::new(N, DIMS, Distribution::Independent, 0.1)
            .with_seed(5)
            .generate();
        let mut session = open_session(pooled);
        let rows: Vec<(u32, &[f64], u32)> = (0..N / 2)
            .map(|i| (i as u32, w.r.attrs_of(i), w.r.join_key_of(i)))
            .collect();
        session.push_with_ids(SourceId::R, &rows).unwrap();
        // T never receives anything and neither source ever closes.
        assert!(matches!(session.poll(), IngestPoll::NeedInput));
        session.cancel();
        assert!(matches!(session.poll(), IngestPoll::Complete));
        let stats = session.finish();
        assert!(stats.cancelled, "pooled={pooled}");
        assert!(stats.regions_skipped > 0);
        assert_eq!(stats.results_emitted, 0);
    }
}

/// Early results taken mid-ingest are a strict prefix of the full run
/// (take(k)-style consumption), and detaching afterwards cancels cleanly.
#[test]
fn take_k_style_early_stop_mid_ingest() {
    // Independent data populates the low output cells, which is what lets
    // the sorted trickle emit before close (anti-correlated data leaves
    // them empty: tuples concentrate along the anti-diagonal, whose cells
    // wait for mid-grid regions that only seal at close).
    let w = WorkloadSpec::new(300, DIMS, Distribution::Independent, 0.1)
        .with_seed(77)
        .generate();
    // Sorted trickle with watermarks so results flow before close.
    let spec_r = ArrivalSpec::trickle(10);
    let full = {
        let r = spec_r.schedule(&w.r);
        let t = spec_r.schedule(&w.t);
        run_schedule(&w, &r, &t, false)
    };
    let full_flat: Vec<(u32, u32)> = full.iter().flatten().copied().collect();
    assert!(full_flat.len() >= 3, "workload too small for the test");

    let mut session = open_session(false);
    let r_sched = spec_r.schedule(&w.r);
    let t_sched = spec_r.schedule(&w.t);
    let k = 2;
    let mut taken: Vec<(u32, u32)> = Vec::new();
    'feed: for i in 0..r_sched.batches.len().max(t_sched.batches.len()) {
        for (side, rel, sched) in [(SourceId::R, &w.r, &r_sched), (SourceId::T, &w.t, &t_sched)] {
            let Some(batch) = sched.batches.get(i) else {
                continue;
            };
            let rows: Vec<(u32, &[f64], u32)> = batch
                .rows
                .iter()
                .map(|&row| {
                    (
                        row,
                        rel.attrs_of(row as usize),
                        rel.join_key_of(row as usize),
                    )
                })
                .collect();
            session.push_with_ids(side, &rows).unwrap();
            if let Some(wm) = &batch.watermark {
                session.set_watermark(side, wm).unwrap();
            }
            while taken.len() < k {
                match session.poll() {
                    IngestPoll::Batch(e) => {
                        taken.extend(e.tuples.iter().map(|t| (t.r_idx, t.t_idx)))
                    }
                    _ => break,
                }
            }
            if taken.len() >= k {
                break 'feed;
            }
        }
    }
    assert!(taken.len() >= k, "watermarked trickle must emit early");
    session.cancel();
    let stats = session.finish();
    assert!(stats.cancelled);
    // Prefix property: what was taken is exactly how the full run starts.
    assert_eq!(&full_flat[..taken.len()], &taken[..]);
}

// ── Watermark boundary semantics ─────────────────────────────────────────
//
// The admission check is strict (`v < watermark[d]` rejects), so a row
// exactly *equal* to the watermark in some dimension is legal — including
// the subtle case where the watermark sits exactly on a grid cell
// boundary: the boundary value belongs to the *next* slot, so the low
// slice seals while the equality row is still admissible. Bounds [0, 90]
// with the default 3 input partitions per dimension put those boundaries
// at exactly 30 and 60; the waves below walk watermarks onto both (plus a
// non-boundary value, 45.5) and push equality rows after each one.

fn boundary_spec() -> StreamSpec {
    StreamSpec::new(vec![0.0; DIMS], vec![90.0; DIMS]).unwrap()
}

fn open_boundary_session(pooled: bool) -> IngestSession {
    let maps = MapSet::pairwise_sum(DIMS, Preference::all_lowest(DIMS));
    let config = ProgXeConfig::default();
    if pooled {
        ParallelProgXe::new(config.with_threads(3))
            .open_ingest(&maps, boundary_spec(), boundary_spec())
            .unwrap()
    } else {
        IngestSession::open(&config, &maps, boundary_spec(), boundary_spec()).unwrap()
    }
}

/// One arrival step: rows to push, then an optional watermark.
type BoundaryWave = (Vec<(u32, Vec<f64>, u32)>, Option<Vec<f64>>);

fn r_boundary_waves() -> Vec<BoundaryWave> {
    vec![
        (
            vec![
                (0, vec![5.0, 80.0], 0),
                (1, vec![78.0, 6.0], 0),
                (2, vec![25.0, 28.0], 0),
            ],
            Some(vec![30.0, 30.0]), // exactly on the first cell boundary
        ),
        (
            vec![
                (3, vec![30.0, 30.0], 0), // == watermark in every dimension
                (4, vec![30.0, 55.0], 0), // == watermark in dimension 0 only
                (5, vec![55.0, 30.0], 0), // == watermark in dimension 1 only
            ],
            Some(vec![45.5, 30.0]), // non-boundary watermark value
        ),
        (
            vec![(6, vec![45.5, 30.0], 0), (7, vec![60.0, 44.0], 0)],
            Some(vec![60.0, 60.0]), // exactly on the second cell boundary
        ),
        (
            vec![(8, vec![60.0, 60.0], 0), (9, vec![89.0, 89.0], 0)],
            None,
        ),
    ]
}

fn t_boundary_waves() -> Vec<BoundaryWave> {
    vec![
        (
            vec![
                (0, vec![10.0, 60.0], 0),
                (1, vec![62.0, 8.0], 0),
                (2, vec![28.0, 25.0], 0),
            ],
            Some(vec![30.0, 30.0]),
        ),
        (
            vec![(3, vec![30.0, 30.0], 0), (4, vec![40.0, 33.0], 0)],
            Some(vec![60.0, 60.0]),
        ),
        (
            vec![(5, vec![60.0, 60.0], 0), (6, vec![85.0, 70.0], 0)],
            None,
        ),
    ]
}

fn push_boundary_wave(session: &mut IngestSession, side: SourceId, wave: &BoundaryWave) {
    let rows: Vec<(u32, &[f64], u32)> = wave
        .0
        .iter()
        .map(|(id, attrs, key)| (*id, attrs.as_slice(), *key))
        .collect();
    session.push_with_ids(side, &rows).unwrap();
    if let Some(wm) = &wave.1 {
        session.set_watermark(side, wm).unwrap();
    }
}

/// Feeds the boundary waves following `order` (a sequence of
/// `(source, wave index)` steps), draining after every step, and returns
/// the emission transcript.
fn run_boundary_schedule(order: &[(SourceId, usize)], pooled: bool) -> Transcript {
    let r = r_boundary_waves();
    let t = t_boundary_waves();
    let mut session = open_boundary_session(pooled);
    let mut transcript = Transcript::new();
    let mut seen = std::collections::HashSet::new();
    let mut progress = 0.0;
    for &(side, wave) in order {
        let wave = match side {
            SourceId::R => &r[wave],
            SourceId::T => &t[wave],
        };
        push_boundary_wave(&mut session, side, wave);
        drain(&mut session, &mut transcript, &mut seen, &mut progress);
    }
    session.close(SourceId::R);
    session.close(SourceId::T);
    drain(&mut session, &mut transcript, &mut seen, &mut progress);
    assert!(matches!(session.poll(), IngestPoll::Complete));
    let stats = session.finish();
    assert!(!stats.cancelled);
    let total: usize =
        r.iter().map(|w| w.0.len()).sum::<usize>() + t.iter().map(|w| w.0.len()).sum::<usize>();
    assert_eq!(
        stats.tuples_ingested, total as u64,
        "every equality row must be admitted"
    );
    transcript
}

/// Rows exactly equal to the watermark — including watermarks sitting on
/// grid cell boundaries — are admitted on every arrival schedule, and the
/// emission transcript still matches the all-at-once oracle on both
/// backends.
#[test]
fn watermark_equality_rows_match_the_oracle_across_schedules() {
    use SourceId::{R, T};
    let interleaved: &[(SourceId, usize)] =
        &[(R, 0), (T, 0), (R, 1), (T, 1), (R, 2), (T, 2), (R, 3)];
    let t_first: &[(SourceId, usize)] = &[(T, 0), (T, 1), (T, 2), (R, 0), (R, 1), (R, 2), (R, 3)];
    let r_first: &[(SourceId, usize)] = &[(R, 0), (R, 1), (R, 2), (R, 3), (T, 0), (T, 1), (T, 2)];

    for pooled in [false, true] {
        // All-at-once oracle: same logical rows, no watermarks.
        let mut session = open_boundary_session(pooled);
        let r_rows: Vec<(u32, Vec<f64>, u32)> =
            r_boundary_waves().into_iter().flat_map(|w| w.0).collect();
        let t_rows: Vec<(u32, Vec<f64>, u32)> =
            t_boundary_waves().into_iter().flat_map(|w| w.0).collect();
        for (side, rows) in [(R, &r_rows), (T, &t_rows)] {
            let refs: Vec<(u32, &[f64], u32)> = rows
                .iter()
                .map(|(id, attrs, key)| (*id, attrs.as_slice(), *key))
                .collect();
            session.push_with_ids(side, &refs).unwrap();
            session.close(side);
        }
        let mut reference = Transcript::new();
        let mut seen = std::collections::HashSet::new();
        let mut progress = 0.0;
        drain(&mut session, &mut reference, &mut seen, &mut progress);
        session.finish();
        let results: usize = reference.iter().map(|b| b.len()).sum();
        assert!(
            results > 1,
            "boundary workload must keep a non-trivial skyline ({results} results)"
        );

        for (name, order) in [
            ("interleaved", interleaved),
            ("t-first", t_first),
            ("r-first", r_first),
        ] {
            let transcript = run_boundary_schedule(order, pooled);
            assert_eq!(
                transcript, reference,
                "pooled={pooled}/{name}: emission diverged from all-at-once"
            );
        }
    }
}

/// The admission boundary is strict in the right direction: exactly-equal
/// rows are accepted (even on a cell boundary), strictly-below rows get a
/// typed `RowBelowWatermark` with the offending dimension, and the
/// rejection leaves the session fully usable.
#[test]
fn below_watermark_rows_are_rejected_with_a_typed_error() {
    use progxe::core::ingest::IngestError;

    for pooled in [false, true] {
        let mut session = open_boundary_session(pooled);
        session.set_watermark(SourceId::R, &[30.0, 30.0]).unwrap();

        // Equality on a cell boundary: admitted.
        session
            .push_with_ids(SourceId::R, &[(0, &[30.0, 30.0][..], 0)])
            .unwrap();
        // Strictly below in dimension 1: typed rejection.
        let err = session
            .push_with_ids(SourceId::R, &[(1, &[31.0, 29.5][..], 0)])
            .unwrap_err();
        match err {
            IngestError::RowBelowWatermark {
                source,
                dim,
                watermark,
                value,
            } => {
                assert_eq!(source, SourceId::R);
                assert_eq!(dim, 1);
                assert_eq!(watermark, 30.0);
                assert_eq!(value, 29.5);
            }
            other => panic!("expected RowBelowWatermark, got {other:?}"),
        }

        // The rejection must not poison the session: keep feeding and run
        // to completion.
        session
            .push_with_ids(SourceId::R, &[(2, &[40.0, 30.0][..], 0)])
            .unwrap();
        session
            .push_with_ids(SourceId::T, &[(0, &[10.0, 10.0][..], 0)])
            .unwrap();
        session.close(SourceId::R);
        session.close(SourceId::T);
        let mut transcript = Transcript::new();
        let mut seen = std::collections::HashSet::new();
        let mut progress = 0.0;
        drain(&mut session, &mut transcript, &mut seen, &mut progress);
        assert!(matches!(session.poll(), IngestPoll::Complete));
        let stats = session.finish();
        assert!(!stats.cancelled, "pooled={pooled}");
        assert_eq!(stats.tuples_ingested, 3, "the rejected row is not counted");
        let flat: Vec<(u32, u32)> = transcript.into_iter().flatten().collect();
        assert_eq!(
            flat,
            vec![(0, 0)],
            "pooled={pooled}: the boundary row joins; the rejected row never surfaces"
        );
    }
}
