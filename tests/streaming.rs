//! Integration tests for the pull-based streaming API: stream/sink
//! equivalence across every engine, `take(k)` early termination, and
//! cancellation — on generated workloads, through the facade crate.

mod common;

use progxe::baselines::{JfSlEngine, SajEngine, SkyAlgo, SsmjEngine};
use progxe::core::prelude::*;
use progxe::datagen::{Distribution, SmjWorkload, WorkloadSpec};

fn views(w: &SmjWorkload) -> (SourceView<'_>, SourceView<'_>) {
    (
        SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap(),
        SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap(),
    )
}

fn engines() -> Vec<Box<dyn ProgressiveEngine>> {
    vec![
        Box::new(ProgXe::new(ProgXeConfig::default())),
        Box::new(progxe::runtime::ParallelProgXe::new(
            ProgXeConfig::default().with_threads(4),
        )),
        Box::new(JfSlEngine::new(SkyAlgo::Bnl)),
        Box::new(JfSlEngine::plus(SkyAlgo::Sfs)),
        Box::new(SsmjEngine::new(SkyAlgo::Sfs)),
        Box::new(SajEngine::new(SkyAlgo::Sfs)),
    ]
}

/// The stream API and the sink API must produce identical results in
/// identical order, for ProgXe and every baseline, on a seeded
/// anti-correlated workload (the skyline-hostile case).
#[test]
fn stream_and_sink_agree_for_every_engine() {
    let w = WorkloadSpec::new(400, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(2024)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    // Shared brute-force reference (tests/common/oracle.rs): every engine's
    // final set must cover it; non-tentative engines must equal it.
    let expected = common::oracle::workload_oracle_ids(&w, &maps);
    for engine in engines() {
        // Push path.
        let mut sink = CollectSink::default();
        let sink_stats = engine.run_sink(&r, &t, &maps, &mut sink).unwrap();
        let emitted: std::collections::BTreeSet<(u32, u32)> =
            sink.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        for id in &expected {
            assert!(emitted.contains(id), "{}: missing {id:?}", engine.name());
        }
        if engine.name() != "ssmj" {
            assert_eq!(emitted, expected, "{}: oracle mismatch", engine.name());
        }

        // Pull path.
        let mut session = engine.open(&r, &t, &maps).unwrap();
        let mut streamed = Vec::new();
        while let Some(event) = session.next_batch() {
            streamed.extend(event.tuples);
        }
        let stream_stats = session.finish();

        assert_eq!(
            streamed,
            sink.results,
            "{}: stream and sink diverged",
            engine.name()
        );
        assert_eq!(
            sink_stats.results_emitted,
            stream_stats.results_emitted,
            "{}: stats diverged",
            engine.name()
        );
        assert!(!stream_stats.cancelled, "{}", engine.name());
    }
}

/// Event metadata is coherent on every engine: progress estimates are
/// monotone in `[0, 1]`, elapsed times are monotone, and only SSMJ may
/// deliver batches that are not proven final.
#[test]
fn event_metadata_is_coherent() {
    let w = WorkloadSpec::new(300, 3, Distribution::Independent, 0.02)
        .with_seed(11)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
    for engine in engines() {
        let mut session = engine.open(&r, &t, &maps).unwrap();
        let mut last_progress = 0.0;
        let mut last_elapsed = std::time::Duration::ZERO;
        let mut tentative = 0;
        while let Some(event) = session.next_batch() {
            assert!(!event.tuples.is_empty(), "{}: empty event", engine.name());
            assert!(
                (0.0..=1.0).contains(&event.progress_estimate),
                "{}: progress {} out of range",
                engine.name(),
                event.progress_estimate
            );
            assert!(
                event.progress_estimate >= last_progress,
                "{}: progress regressed",
                engine.name()
            );
            assert!(
                event.elapsed >= last_elapsed,
                "{}: elapsed regressed",
                engine.name()
            );
            last_progress = event.progress_estimate;
            last_elapsed = event.elapsed;
            if !event.proven_final {
                tentative += 1;
            }
        }
        if engine.name() != "ssmj" {
            assert_eq!(
                tentative,
                0,
                "{}: unexpected tentative batch",
                engine.name()
            );
        }
        let _ = session.finish();
    }
}

/// The acceptance scenario: `take(k)` on a 10k-row anti-correlated
/// workload returns exactly the first k emitted tuples and demonstrably
/// stops before full execution — fewer regions processed, fewer join pairs
/// evaluated, fewer dominance tests than a full run.
#[test]
fn take_k_terminates_early_on_10k_anticorrelated() {
    let w = WorkloadSpec::new(10_000, 2, Distribution::AntiCorrelated, 0.002)
        .with_seed(77)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    let exec = ProgXe::new(
        ProgXeConfig::default()
            .with_input_partitions(6)
            .with_output_cells(48)
            .with_selectivity_hint(0.002),
    );

    let full = exec.run_collect(&r, &t, &maps).unwrap();
    assert!(
        full.results.len() > 20,
        "anti-correlated workload should have a large skyline, got {}",
        full.results.len()
    );

    let k = 10;
    let partial = exec.session(&r, &t, &maps).unwrap().take(k);

    // Exactly the first k tuples, in emission order.
    assert_eq!(partial.results.len(), k);
    assert_eq!(&full.results[..k], &partial.results[..]);

    // And the executor really stopped: strictly less work than a full run.
    assert!(partial.stats.cancelled);
    assert!(partial.stats.regions_skipped > 0);
    assert!(
        partial.stats.regions_processed < full.stats.regions_processed,
        "regions: {} !< {}",
        partial.stats.regions_processed,
        full.stats.regions_processed
    );
    assert!(
        partial.stats.join_pairs_evaluated < full.stats.join_pairs_evaluated,
        "join pairs: {} !< {}",
        partial.stats.join_pairs_evaluated,
        full.stats.join_pairs_evaluated
    );
    assert!(
        partial.stats.dominance_tests < full.stats.dominance_tests,
        "dominance tests: {} !< {}",
        partial.stats.dominance_tests,
        full.stats.dominance_tests
    );
}

/// `take(k)` through every engine returns a prefix of that engine's own
/// full emission order.
#[test]
fn take_k_is_a_prefix_for_every_engine() {
    let w = WorkloadSpec::new(300, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(5)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    for engine in engines() {
        let full = engine.run_collect(&r, &t, &maps).unwrap();
        let k = 3.min(full.results.len());
        let partial = engine.open(&r, &t, &maps).unwrap().take(k);
        assert_eq!(partial.results.len(), k, "{}", engine.name());
        assert_eq!(
            &full.results[..k],
            &partial.results[..],
            "{}: take(k) is not a prefix",
            engine.name()
        );
    }
}

/// A cancelled session stops every engine before (baselines) or during
/// (ProgXe) execution.
#[test]
fn cancellation_stops_every_engine() {
    let w = WorkloadSpec::new(500, 2, Distribution::Independent, 0.02)
        .with_seed(9)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    for engine in engines() {
        let mut session = engine.open(&r, &t, &maps).unwrap();
        session.cancel();
        assert!(session.next_batch().is_none(), "{}", engine.name());
        let stats = session.finish();
        assert!(stats.cancelled, "{}", engine.name());
        assert_eq!(stats.results_emitted, 0, "{}", engine.name());
    }
}

/// A shared token cancels a ProgXe run mid-flight through the adapter API.
#[test]
fn shared_token_interrupts_sink_adapter() {
    let w = WorkloadSpec::new(2_000, 2, Distribution::AntiCorrelated, 0.01)
        .with_seed(13)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    let exec = ProgXe::new(ProgXeConfig::default());
    let token = CancellationToken::new();

    // Cancel from inside the sink after the first batch: the region loop
    // must stop at the next boundary.
    struct CancellingSink {
        token: CancellationToken,
        batches: usize,
    }
    impl ResultSink for CancellingSink {
        fn emit_batch(&mut self, _batch: &[ResultTuple]) {
            self.batches += 1;
            self.token.cancel();
        }
    }
    let mut sink = CancellingSink {
        token: token.clone(),
        batches: 0,
    };
    let stats = exec
        .run_cancellable(&r, &t, &maps, &mut sink, token)
        .unwrap();
    assert_eq!(sink.batches, 1, "cancelled after the first batch");
    assert!(stats.cancelled);
    assert!(stats.regions_skipped > 0, "remaining regions were skipped");
}

/// Regression (progress normalization): `QuerySession::next_batch` clamps
/// `progress_estimate` to `[0, 1]` and makes it monotone non-decreasing —
/// even when the underlying engine reports garbage (negative, > 1, NaN,
/// or regressing values).
#[test]
fn progress_estimates_are_clamped_and_monotone() {
    use progxe::core::session::QuerySession;
    use std::time::Duration;

    let raw = [-0.5, 0.2, f64::NAN, 7.0, 0.4, f64::INFINITY];
    let mut session = QuerySession::deferred("rogue", move || {
        let events = raw
            .iter()
            .map(|&p| ResultEvent {
                tuples: vec![ResultTuple {
                    r_idx: 0,
                    t_idx: 0,
                    values: vec![0.0],
                }],
                proven_final: true,
                progress_estimate: p,
                elapsed: Duration::ZERO,
            })
            .collect();
        (events, ExecStats::default())
    });
    let mut seen = Vec::new();
    while let Some(event) = session.next_batch() {
        seen.push(event.progress_estimate);
    }
    assert_eq!(seen.len(), raw.len());
    let mut last = 0.0;
    for (i, &p) in seen.iter().enumerate() {
        assert!((0.0..=1.0).contains(&p), "event {i}: {p} out of range");
        assert!(p >= last, "event {i}: progress regressed ({p} < {last})");
        last = p;
    }
    // NaN degrades to the previous value; 7.0 clamps to the 1.0 ceiling.
    assert_eq!(seen[2], seen[1]);
    assert_eq!(seen[3], 1.0);
    assert_eq!(seen[4], 1.0, "monotonicity holds after the ceiling");
}

/// Mid-run statistics snapshots: available without consuming the session,
/// and coherent with the final numbers.
#[test]
fn stats_snapshot_mid_run_is_coherent() {
    let w = WorkloadSpec::new(600, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(21)
        .generate();
    let (r, t) = views(&w);
    let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
    let exec = ProgXe::new(ProgXeConfig::default());
    let mut session = exec.session(&r, &t, &maps).unwrap();
    assert!(session.next_batch().is_some());
    let mid = session.stats_snapshot();
    assert!(mid.results_emitted > 0);
    assert!(
        !mid.cancelled,
        "snapshot must not flag a live run cancelled"
    );
    while session.next_batch().is_some() {}
    let fin = session.finish();
    assert!(fin.results_emitted >= mid.results_emitted);
    assert!(fin.regions_processed >= mid.regions_processed);
}
