//! Differential suite for the flexible-skyline (F-dominance) workload.
//!
//! Contract under test: with a `MapSet` carrying a flexible
//! [`DominanceModel`], every engine — ProgXe on the Inline backend (all
//! three tuple-level paths), ProgXe on the Pooled backend, and all four
//! baselines — produces exactly the brute-force F-skyline of
//! `tests/common/oracle.rs`; progressive emission stays no-retraction and
//! run-to-run deterministic; `take(k)` early-stop and mid-region
//! cancellation behave as under Pareto; and streaming ingestion emits a
//! bit-identical event stream across sampled arrival schedules, equal to
//! the all-at-once run. The CI matrix re-runs this file under
//! `PROGXE_THREADS={1,4}`, which routes the env-built engine through the
//! sequential and pooled dispatch respectively.

mod common;

use progxe::baselines::{JfSlEngine, SajEngine, SkyAlgo, SsmjEngine};
use progxe::core::fdom::DominanceModel;
use progxe::core::ingest::{IngestPoll, IngestSession, SourceId, StreamSpec};
use progxe::core::prelude::*;
use progxe::datagen::{ArrivalSpec, Distribution, SmjWorkload, WorkloadSpec};
use progxe::runtime::ParallelProgXe;
use std::collections::BTreeSet;

fn views(w: &SmjWorkload) -> (SourceView<'_>, SourceView<'_>) {
    (
        SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap(),
        SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap(),
    )
}

/// The canonical nested band family (`tight=0` ≡ the whole simplex ≡
/// Pareto; `tight→1` pins equal weights) — the same
/// `datagen::weights::simplex_band` the `figures -- fdom` bench sweeps, so
/// the differential suite and the measurements can never drift apart.
fn band_model(dims: usize, tight: f64) -> DominanceModel {
    progxe::core::fdom::flexible_model(dims, progxe::datagen::simplex_band(dims, tight))
        .expect("band is non-empty")
}

fn flexible_maps(dims: usize, tight: f64) -> MapSet {
    MapSet::pairwise_sum(dims, Preference::all_lowest(dims))
        .with_dominance(band_model(dims, tight))
        .unwrap()
}

fn result_ids(results: &[progxe::core::stats::ResultTuple]) -> BTreeSet<(u32, u32)> {
    results.iter().map(|x| (x.r_idx, x.t_idx)).collect()
}

/// The acceptance matrix: every engine/backend/path combination equals the
/// shared brute-force F-oracle, across 3 distributions × seeds × two
/// constraint tightnesses — and the flexible answer genuinely shrinks
/// below the Pareto skyline somewhere in the grid.
#[test]
fn fskyline_matches_oracle_across_engines_and_backends() {
    let mut shrunk_somewhere = false;
    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ] {
        for seed in [19u64, 1234] {
            let w = WorkloadSpec::new(220, 2, dist, 0.03)
                .with_seed(seed)
                .generate();
            let (r, t) = views(&w);
            for tight in [0.4, 0.8] {
                let maps = flexible_maps(2, tight);
                let expected = common::oracle::workload_oracle_ids(&w, &maps);
                assert!(
                    !expected.is_empty(),
                    "{dist:?}/{seed}/{tight}: empty oracle"
                );
                let pareto = common::oracle::workload_oracle_ids(
                    &w,
                    &MapSet::pairwise_sum(2, Preference::all_lowest(2)),
                );
                assert!(expected.is_subset(&pareto));
                shrunk_somewhere |= expected.len() < pareto.len();

                // ProgXe Inline: default, forced-batch, forced-streaming
                // tuple-level paths.
                for (label, config) in [
                    ("inline-default", ProgXeConfig::default()),
                    (
                        "inline-batch",
                        ProgXeConfig::default().with_prefilter_min_pairs(0),
                    ),
                    (
                        "inline-streaming",
                        ProgXeConfig::default().with_prefilter_min_pairs(usize::MAX),
                    ),
                ] {
                    let out = ProgXe::new(config).run_collect(&r, &t, &maps).unwrap();
                    assert!(!out.stats.cancelled);
                    assert_eq!(
                        result_ids(&out.results),
                        expected,
                        "{dist:?}/{seed}/{tight}: {label}"
                    );
                }
                // ProgXe Pooled (shared worker pool).
                let pooled = ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
                    .run_collect(&r, &t, &maps)
                    .unwrap();
                assert_eq!(
                    result_ids(&pooled.results),
                    expected,
                    "{dist:?}/{seed}/{tight}: pooled"
                );
                // The env-built engine — the dispatch the CI PROGXE_THREADS
                // matrix steers between Inline and Pooled.
                let env_config = ProgXeConfig::from_env();
                let env_out = if env_config.threads.get() > 1 {
                    ParallelProgXe::new(env_config).run_collect(&r, &t, &maps)
                } else {
                    ProgXe::new(env_config).run_collect(&r, &t, &maps)
                }
                .unwrap();
                assert_eq!(
                    result_ids(&env_out.results),
                    expected,
                    "{dist:?}/{seed}/{tight}: env-dispatched engine"
                );

                // The four baselines, across two skyline algorithms each
                // (BNL/SFS run the model natively; DNC/SaLSa go through
                // the Pareto-then-filter composition).
                let baselines: Vec<Box<dyn ProgressiveEngine>> = vec![
                    Box::new(JfSlEngine::new(SkyAlgo::Bnl)),
                    Box::new(JfSlEngine::new(SkyAlgo::Dnc)),
                    Box::new(JfSlEngine::plus(SkyAlgo::Sfs)),
                    Box::new(JfSlEngine::plus(SkyAlgo::Salsa)),
                    Box::new(SsmjEngine::new(SkyAlgo::Sfs)),
                    Box::new(SajEngine::new(SkyAlgo::Bnl)),
                ];
                for engine in baselines {
                    let out = engine.run_collect(&r, &t, &maps).unwrap();
                    let emitted = result_ids(&out.results);
                    for id in &expected {
                        assert!(
                            emitted.contains(id),
                            "{dist:?}/{seed}/{tight}: {} missing {id:?}",
                            engine.name()
                        );
                    }
                    if engine.name() != "ssmj" {
                        // SSMJ's batch 1 is tentative by design; everyone
                        // else must be exact.
                        assert_eq!(
                            emitted,
                            expected,
                            "{dist:?}/{seed}/{tight}: {}",
                            engine.name()
                        );
                    }
                }
            }
        }
    }
    assert!(
        shrunk_somewhere,
        "constraints never shrank the skyline — the F-workload is vacuous"
    );
}

/// Progressive semantics under F-dominance: every emitted batch is proven
/// final and a subset of the final answer (no retraction), and two
/// identical runs produce the identical event stream on both backends.
#[test]
fn fdominance_emission_is_no_retraction_and_deterministic() {
    let w = WorkloadSpec::new(500, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(42)
        .generate();
    let (r, t) = views(&w);
    let maps = flexible_maps(2, 0.6);
    let expected = common::oracle::workload_oracle_ids(&w, &maps);

    let collect_stream = |pooled: bool| -> Vec<Vec<(u32, u32)>> {
        let mut session = if pooled {
            ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
                .open(&r, &t, &maps)
                .unwrap()
        } else {
            ProgXe::new(ProgXeConfig::default())
                .open(&r, &t, &maps)
                .unwrap()
        };
        let mut batches = Vec::new();
        let mut emitted = BTreeSet::new();
        while let Some(event) = session.next_batch() {
            assert!(event.proven_final, "pooled={pooled}: tentative batch");
            let ids: Vec<(u32, u32)> = event.tuples.iter().map(|x| (x.r_idx, x.t_idx)).collect();
            for &id in &ids {
                assert!(
                    expected.contains(&id),
                    "pooled={pooled}: emitted {id:?} outside the F-skyline (false positive)"
                );
                assert!(emitted.insert(id), "pooled={pooled}: duplicate emission");
            }
            batches.push(ids);
        }
        assert!(!session.finish().cancelled);
        assert_eq!(emitted, expected, "pooled={pooled}: false negatives");
        batches
    };

    for pooled in [false, true] {
        let a = collect_stream(pooled);
        let b = collect_stream(pooled);
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "pooled={pooled}: emission not run-to-run deterministic"
        );
    }
    // Inline and Pooled agree event-for-event too.
    assert_eq!(collect_stream(false), collect_stream(true));
}

/// Regression pin for the batched dominance kernels: the full emission
/// stream — batch boundaries, tuple identities, *and the exact f64 bit
/// patterns of every output value* — is identical between the Inline and
/// Pooled backends and across repeated runs. Any drift in tie/strictness
/// semantics or float accumulation order inside the kernels (batch
/// projection, windowed pre-filter, cell-store eviction, emission filter)
/// shows up here as a bit-level diff.
#[test]
fn fdominance_emission_stream_is_bit_identical_across_backends() {
    type Stream = Vec<Vec<(u32, u32, Vec<u64>)>>;
    let w = WorkloadSpec::new(400, 3, Distribution::AntiCorrelated, 0.03)
        .with_seed(11)
        .generate();
    let (r, t) = views(&w);
    let maps = flexible_maps(3, 0.5);
    let collect = |pooled: bool| -> Stream {
        let mut session = if pooled {
            ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
                .open(&r, &t, &maps)
                .unwrap()
        } else {
            ProgXe::new(ProgXeConfig::default())
                .open(&r, &t, &maps)
                .unwrap()
        };
        let mut stream = Vec::new();
        while let Some(event) = session.next_batch() {
            stream.push(
                event
                    .tuples
                    .iter()
                    .map(|x| {
                        (
                            x.r_idx,
                            x.t_idx,
                            x.values.iter().map(|v| v.to_bits()).collect(),
                        )
                    })
                    .collect(),
            );
        }
        session.finish();
        stream
    };
    let inline_a = collect(false);
    assert!(!inline_a.is_empty(), "workload emitted nothing");
    assert_eq!(inline_a, collect(false), "inline not run-deterministic");
    assert_eq!(inline_a, collect(true), "pooled diverged from inline");
}

/// `take(k)` under F-dominance returns exactly the first `k` tuples of the
/// engine's own full emission order and stops early.
#[test]
fn take_k_is_an_early_stopping_prefix_under_fdominance() {
    let w = WorkloadSpec::new(600, 2, Distribution::AntiCorrelated, 0.02)
        .with_seed(7)
        .generate();
    let (r, t) = views(&w);
    let maps = flexible_maps(2, 0.4);
    let exec = ProgXe::new(ProgXeConfig::default());
    let full = exec.run_collect(&r, &t, &maps).unwrap();
    assert!(full.results.len() >= 3, "workload too small for take(k)");
    let k = 2;
    let partial = exec.session(&r, &t, &maps).unwrap().take(k);
    assert_eq!(partial.results.len(), k);
    assert_eq!(&full.results[..k], &partial.results[..]);
    assert!(partial.stats.cancelled);
    assert!(partial.stats.regions_skipped > 0);
    assert!(partial.stats.regions_processed < full.stats.regions_processed);
}

/// Mid-region cancellation stays prompt when the model is flexible: the
/// token check lives in the shared probe loop, which the model does not
/// touch.
#[test]
fn mid_region_cancel_stays_prompt_under_fdominance() {
    use progxe::core::mapping::{GeneralMap, MappingFunction};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let n = 250usize;
    let mut r = SourceData::new(2);
    let mut t = SourceData::new(2);
    let mut x: u64 = 3;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) % 1000) as f64 / 10.0
    };
    for _ in 0..n {
        r.push(&[next(), next()], 0);
        t.push(&[next(), next()], 0);
    }
    let token = CancellationToken::new();
    let fuse_token = token.clone();
    let evals = Arc::new(AtomicU64::new(0));
    let fuse_evals = Arc::clone(&evals);
    let counting = GeneralMap::new(
        "fused-sum",
        move |r: &[f64], t: &[f64]| {
            if fuse_evals.fetch_add(1, Ordering::Relaxed) + 1 == 4_000 {
                fuse_token.cancel();
            }
            r[0] + t[0]
        },
        |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
            (r_lo[0] + t_lo[0], r_hi[0] + t_hi[0])
        },
    );
    let plain = GeneralMap::new(
        "sum1",
        |r: &[f64], t: &[f64]| r[1] + t[1],
        |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
            (r_lo[1] + t_lo[1], r_hi[1] + t_hi[1])
        },
    );
    let maps = MapSet::new(
        vec![
            Box::new(counting) as Box<dyn MappingFunction>,
            Box::new(plain),
        ],
        Preference::all_lowest(2),
    )
    .unwrap()
    .with_dominance(band_model(2, 0.6))
    .unwrap();

    let exec = ProgXe::new(ProgXeConfig::default().with_input_partitions(1));
    let mut session = exec
        .session_with_token(&r.view(), &t.view(), &maps, token)
        .unwrap();
    assert!(session.next_batch().is_none(), "cancel fires mid-region");
    let stats = session.finish();
    assert!(stats.cancelled);
    assert_eq!(stats.results_emitted, 0);
    assert!(
        stats.join_matches < (n * n) as u64 / 4,
        "join stopped late under the flexible model ({} matches)",
        stats.join_matches
    );
}

/// Streaming ingestion under F-dominance: the emitted event stream is
/// bit-identical across sampled arrival schedules and backends, equal to
/// the all-at-once run, and its result set equals the brute-force
/// F-oracle.
#[test]
fn streaming_ingest_is_schedule_invariant_under_fdominance() {
    const N: usize = 110;
    let spec = || StreamSpec::new(vec![0.0; 2], vec![101.0; 2]).unwrap();
    let maps = flexible_maps(2, 0.5);

    type Transcript = Vec<Vec<(u32, u32)>>;
    let run_schedule = |w: &SmjWorkload,
                        r_sched: &progxe::datagen::ArrivalSchedule,
                        t_sched: &progxe::datagen::ArrivalSchedule,
                        pooled: bool|
     -> Transcript {
        let config = ProgXeConfig::default();
        let mut session = if pooled {
            ParallelProgXe::new(config.with_threads(3))
                .open_ingest(&maps, spec(), spec())
                .unwrap()
        } else {
            IngestSession::open(&config, &maps, spec(), spec()).unwrap()
        };
        let mut transcript = Transcript::new();
        let mut seen = BTreeSet::new();
        let mut drain = |session: &mut IngestSession, transcript: &mut Transcript| {
            while let IngestPoll::Batch(event) = session.poll() {
                assert!(event.proven_final);
                let ids: Vec<(u32, u32)> =
                    event.tuples.iter().map(|t| (t.r_idx, t.t_idx)).collect();
                for &id in &ids {
                    assert!(seen.insert(id), "tuple {id:?} emitted twice");
                }
                transcript.push(ids);
            }
        };
        let steps = r_sched.batches.len().max(t_sched.batches.len());
        for i in 0..steps {
            for (side, rel, sched) in [(SourceId::R, &w.r, r_sched), (SourceId::T, &w.t, t_sched)] {
                let Some(batch) = sched.batches.get(i) else {
                    continue;
                };
                let rows: Vec<(u32, &[f64], u32)> = batch
                    .rows
                    .iter()
                    .map(|&row| {
                        (
                            row,
                            rel.attrs_of(row as usize),
                            rel.join_key_of(row as usize),
                        )
                    })
                    .collect();
                session.push_with_ids(side, &rows).unwrap();
                if let Some(wm) = &batch.watermark {
                    session.set_watermark(side, wm).unwrap();
                }
                drain(&mut session, &mut transcript);
            }
        }
        session.close(SourceId::R);
        session.close(SourceId::T);
        drain(&mut session, &mut transcript);
        assert!(!session.finish().cancelled);
        transcript
    };

    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let w = WorkloadSpec::new(N, 2, dist, 0.1).with_seed(23).generate();
        let expected = common::oracle::workload_oracle_ids(&w, &maps);
        let all = |rel: &progxe::datagen::Relation| progxe::datagen::ArrivalSchedule {
            batches: vec![progxe::datagen::ArrivalBatch {
                rows: (0..rel.len() as u32).collect(),
                watermark: None,
            }],
        };
        for pooled in [false, true] {
            let reference = run_schedule(&w, &all(&w.r), &all(&w.t), pooled);
            let flat: BTreeSet<(u32, u32)> = reference.iter().flatten().copied().collect();
            assert_eq!(flat, expected, "{dist:?}/pooled={pooled}: vs F-oracle");

            for (si, sched_spec) in [
                ArrivalSpec::uniform_shuffle(23, 11),
                ArrivalSpec::attr_sorted(13),
                ArrivalSpec::trickle(9),
                ArrivalSpec::bursty(23, 4, 30),
            ]
            .into_iter()
            .enumerate()
            {
                let mut t_spec = sched_spec.clone();
                t_spec.seed = sched_spec.seed.wrapping_add(1);
                let transcript = run_schedule(
                    &w,
                    &sched_spec.schedule(&w.r),
                    &t_spec.schedule(&w.t),
                    pooled,
                );
                assert_eq!(
                    transcript, reference,
                    "{dist:?}/pooled={pooled}/schedule {si}: emission diverged"
                );
            }
        }
    }
}
