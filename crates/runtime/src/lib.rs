//! # progxe-runtime — parallel region execution with ordered commit
//!
//! The paper's output-space look-ahead (§III) decomposes a SkyMapJoin query
//! into output regions precisely so that tuple-level work is partitionable.
//! This crate exploits that: [`pool`] provides a dependency-free
//! work-stealing thread pool (scoped to `std::thread`, `Mutex`, and
//! `Condvar`), and [`parallel`] provides [`parallel::ParallelProgXe`] — a
//! drop-in [`ProgressiveEngine`](progxe_core::session::ProgressiveEngine)
//! that fans the tuple-level phase (join + map + local dominance filtering,
//! Figure 2 phase 3) out across regions while a single **ordered committer**
//! applies Algorithm 2's blocker bookkeeping in schedule order.
//!
//! The division of labor keeps every progressive-output guarantee intact:
//!
//! * workers only ever touch immutable, owned state
//!   ([`RegionCtx`](progxe_core::tuple_level::RegionCtx));
//! * the committer — the sole owner of the cell store and the blocker
//!   counts — applies batches strictly in the order regions were popped
//!   from the schedule, so emission is **deterministic** regardless of
//!   worker interleaving, and a cell still only emits once every region
//!   that could dominate it has committed (no false positives, no false
//!   negatives);
//! * cancellation tokens are checked inside each worker's probe loop, so
//!   `take(k)` and timeouts stop in-flight workers mid-region.
//!
//! Thread count comes from
//! [`ProgXeConfig::threads`](progxe_core::config::ProgXeConfig) (env
//! override: `PROGXE_THREADS`, via
//! [`ProgXeConfig::from_env`](progxe_core::config::ProgXeConfig::from_env)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;
pub mod pool;

pub use parallel::ParallelProgXe;
pub use pool::ThreadPool;
