//! # progxe-runtime — shared execution runtime for parallel ProgXe
//!
//! The paper's output-space look-ahead (§III) decomposes a SkyMapJoin query
//! into output regions precisely so that tuple-level work is partitionable.
//! This crate exploits that with three pieces:
//!
//! * [`pool`] — a dependency-free work-stealing thread pool (scoped to
//!   `std::thread`, `Mutex`, and `Condvar`) whose workers survive
//!   panicking user code;
//! * [`runtime`] — [`EngineRuntime`], the per-engine lifecycle: one
//!   lazily-spawned, long-lived pool shared by every session of an engine
//!   (and by every clone of it), so high-QPS serving pays thread
//!   spawn/join once per engine instead of once per query;
//! * [`parallel`] — [`parallel::ParallelProgXe`], a drop-in
//!   [`ProgressiveEngine`](progxe_core::session::ProgressiveEngine) that
//!   instantiates the core's unified
//!   [`RegionDriver`](progxe_core::driver::RegionDriver) on its `Pooled`
//!   backend. The region loop itself lives in `progxe-core` — this crate
//!   only provides the [`TaskSpawner`](progxe_core::driver::TaskSpawner)
//!   implementation and the pool lifecycle.
//!
//! The division of labor keeps every progressive-output guarantee intact:
//!
//! * workers only ever touch immutable, owned state
//!   ([`RegionCtx`](progxe_core::tuple_level::RegionCtx));
//! * the committer — the sole owner of the cell store and the blocker
//!   counts — applies batches strictly in the order regions were popped
//!   from the schedule, so emission is **deterministic** regardless of
//!   worker interleaving, and a cell still only emits once every region
//!   that could dominate it has committed (no false positives, no false
//!   negatives);
//! * cancellation tokens are checked inside each worker's probe loop, so
//!   `take(k)` and timeouts stop in-flight workers mid-region — and vacate
//!   the shared pool for other sessions' work.
//!
//! Thread count comes from
//! [`ProgXeConfig::threads`](progxe_core::config::ProgXeConfig) (env
//! override: `PROGXE_THREADS`, via
//! [`ProgXeConfig::from_env`](progxe_core::config::ProgXeConfig::from_env)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;
pub mod pool;
pub mod runtime;

pub use parallel::ParallelProgXe;
pub use pool::{PoolClosed, ThreadPool};
pub use runtime::EngineRuntime;
