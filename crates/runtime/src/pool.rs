//! A std-only work-stealing thread pool.
//!
//! No external dependencies: workers are plain `std::thread`s, and all
//! coordination is a single `Mutex`-guarded state plus a `Condvar` (the
//! repo-wide "no crates the container doesn't have" rule applies to the
//! runtime too). Each worker owns a deque; submission round-robins across
//! deques, and a worker that runs dry steals from the *back* of the
//! longest other deque — the stealing discipline that keeps region work
//! units (which vary wildly in size: a dead region's neighbor may join
//! thousands of pairs while another joins ten) balanced across workers.
//!
//! Honesty note on granularity: the deques and the steal heuristic live
//! under one coarse mutex, so this buys *placement/balance* (submission
//! affinity, steal-from-the-longest), **not** lock-free pops. That is a
//! deliberate trade: the lock is held for O(1) deque operations, while a
//! job — one region's join + map + filter — runs for orders of magnitude
//! longer unlocked, so the pop path is nowhere near contention at region
//! granularity. If profiles ever show otherwise, the upgrade path is
//! per-deque locks (the structure is already per-worker).
//!
//! Shutdown semantics match the driver's needs: dropping the pool discards
//! *queued* jobs (so an abandoned query does not keep burning CPU) but
//! joins every worker, letting in-flight jobs finish — which is what lets
//! the parallel committer rely on "every dispatched job eventually reports"
//! while the pool is alive.

use progxe_obs::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    /// One deque per worker; `queues[i]` is worker `i`'s own queue.
    queues: Vec<VecDeque<Job>>,
    /// Round-robin submission cursor.
    next: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
}

/// A fixed-size work-stealing thread pool for `'static` jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                next: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("progxe-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Jobs are distributed round-robin across worker
    /// deques; idle workers steal, so any worker may end up running it.
    ///
    /// A panicking job is **caught and swallowed** by the worker (the pool
    /// is shared across queries and must keep serving): the global panic
    /// hook still prints the payload to stderr, but `execute` offers no
    /// success/failure signal. Callers that need to observe failure must
    /// report through the job's own channel — see the region driver's
    /// `DeliveryGuard` for the pattern.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        // Process-wide pool telemetry: queue-wait (enqueue → dequeue) vs
        // run time, per job. The registry is two relaxed-contention mutex
        // touches per job — noise next to a region join — so it stays
        // unconditional rather than plumbing a recorder into every pool
        // user.
        let enqueued = Instant::now();
        let wrapped = move || {
            let registry = MetricsRegistry::global();
            registry.observe("pool.queue_wait", enqueued.elapsed());
            let run_started = Instant::now();
            job();
            registry.observe("pool.run", run_started.elapsed());
            registry.incr("pool.jobs", 1);
        };
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        debug_assert!(!state.shutdown, "execute after shutdown");
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(Box::new(wrapped));
        drop(state);
        self.shared.work.notify_one();
    }

    /// Queued (not yet started) jobs across all deques.
    pub fn queued(&self) -> usize {
        let state = self.shared.state.lock().expect("pool state poisoned");
        state.queues.iter().map(VecDeque::len).sum()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            // Discard queued jobs: an abandoned query must stop burning CPU.
            for q in state.queues.iter_mut() {
                q.clear();
            }
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            // Workers catch job panics and keep running, so this join
            // normally succeeds; best-effort is still the right call on
            // the shutdown path.
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let mut state = shared.state.lock().expect("pool state poisoned");
    loop {
        if let Some(job) = take_job(&mut state, me) {
            drop(state);
            // A pool shared across sessions of one engine must survive a
            // panicking job (a user mapping function): catch the unwind so
            // the worker keeps serving other queries. The job's own
            // reporting channel (the driver's DeliveryGuard) surfaces the
            // failure to the session that dispatched it, and the panic
            // hook has already printed the payload to stderr.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            state = shared.state.lock().expect("pool state poisoned");
            continue;
        }
        if state.shutdown {
            return;
        }
        state = shared.work.wait(state).expect("pool state poisoned");
    }
}

/// Own queue front first; otherwise steal from the back of the longest
/// other queue.
fn take_job(state: &mut State, me: usize) -> Option<Job> {
    if let Some(job) = state.queues[me].pop_front() {
        return Some(job);
    }
    let victim = (0..state.queues.len())
        .filter(|&i| i != me)
        .max_by_key(|&i| state.queues[i].len())?;
    state.queues[victim].pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(Duration::from_secs(10)).expect("job ran");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.execute(move || {
            let _ = tx.send(42);
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn idle_workers_steal_queued_work() {
        // One producer floods a single submission slot with slow jobs; with
        // stealing, total wall time is bounded by roughly jobs/threads.
        let pool = ThreadPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(20));
                let _ = tx.send(i);
            });
        }
        let mut got: Vec<i32> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(10)).expect("job ran"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        // A shared pool must keep serving after a user job panics.
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("job explodes"));
        let (tx, rx) = mpsc::channel();
        pool.execute(move || {
            let _ = tx.send(7);
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Ok(7),
            "worker died with the panicking job"
        );
    }

    #[test]
    fn pool_jobs_feed_the_global_metrics_registry() {
        // The registry is process-wide and other tests run concurrently,
        // so assert monotone growth, not exact counts.
        let before = MetricsRegistry::global().counter("pool.jobs");
        {
            let pool = ThreadPool::new(2);
            let (tx, rx) = mpsc::channel();
            for _ in 0..10 {
                let tx = tx.clone();
                pool.execute(move || {
                    let _ = tx.send(());
                });
            }
            for _ in 0..10 {
                rx.recv_timeout(Duration::from_secs(10)).expect("job ran");
            }
            // Drop joins the workers, so every metric write has landed.
        }
        let after = MetricsRegistry::global().counter("pool.jobs");
        assert!(after >= before + 10, "before={before} after={after}");
        let run = MetricsRegistry::global()
            .histogram("pool.run")
            .expect("run histogram exists");
        assert!(run.count() >= 10);
        assert!(MetricsRegistry::global()
            .histogram("pool.queue_wait")
            .is_some());
    }

    #[test]
    fn drop_joins_and_discards_queued_jobs() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            let gate = Arc::new(AtomicUsize::new(0));
            // First job blocks the only worker so the rest stay queued.
            let g = Arc::clone(&gate);
            pool.execute(move || {
                while g.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
            });
            for _ in 0..50 {
                let ran = Arc::clone(&ran);
                pool.execute(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Once the worker has dequeued the gate job, exactly the 50
            // follow-ups remain queued behind it.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while pool.queued() > 50 && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            assert_eq!(pool.queued(), 50, "worker is gated; all jobs queued");
            gate.store(1, Ordering::Release);
            // Dropping now: in-flight job finishes, queued jobs may be
            // discarded before running.
        }
        assert!(ran.load(Ordering::Relaxed) <= 50);
    }
}
