//! A std-only work-stealing thread pool.
//!
//! No external dependencies: workers are plain `std::thread`s, and all
//! coordination is a single `Mutex`-guarded state plus a `Condvar` (the
//! repo-wide "no crates the container doesn't have" rule applies to the
//! runtime too). Each worker owns a deque; submission round-robins across
//! deques, and a worker that runs dry steals from the *back* of the
//! longest other deque — the stealing discipline that keeps region work
//! units (which vary wildly in size: a dead region's neighbor may join
//! thousands of pairs while another joins ten) balanced across workers.
//!
//! Honesty note on granularity: the deques and the steal heuristic live
//! under one coarse mutex, so this buys *placement/balance* (submission
//! affinity, steal-from-the-longest), **not** lock-free pops. That is a
//! deliberate trade: the lock is held for O(1) deque operations, while a
//! job — one region's join + map + filter — runs for orders of magnitude
//! longer unlocked, so the pop path is nowhere near contention at region
//! granularity. If profiles ever show otherwise, the upgrade path is
//! per-deque locks (the structure is already per-worker).
//!
//! Shutdown semantics match the driver's needs: [`ThreadPool::close`]
//! rejects new work with a typed [`PoolClosed`] error while still running
//! everything accepted before it — so "accepted ⇒ eventually reports"
//! holds across a graceful shutdown and the parallel committer never waits
//! on a silently dropped job. Dropping the pool additionally discards
//! *queued* jobs (an abandoned query must not keep burning CPU) but joins
//! every worker, letting in-flight jobs finish; by then no session can be
//! waiting, because live sessions hold an `Arc` to the pool.

use progxe_obs::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Typed rejection from [`ThreadPool::execute`]: the pool has been closed
/// (via [`ThreadPool::close`] or drop) and accepts no new jobs. The job is
/// *not* run — callers own the failure path, which is exactly what the
/// region driver needs to cancel a session instead of deadlocking its
/// committer on a job that will never report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool is closed and accepts no new jobs")
    }
}

impl std::error::Error for PoolClosed {}

struct State {
    /// One deque per worker; `queues[i]` is worker `i`'s own queue.
    queues: Vec<VecDeque<Job>>,
    /// Round-robin submission cursor.
    next: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
}

/// A fixed-size work-stealing thread pool for `'static` jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                next: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("progxe-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job, or returns [`PoolClosed`] if [`close`](Self::close)
    /// (or drop) already ran. Jobs are distributed round-robin across
    /// worker deques; idle workers steal, so any worker may end up running
    /// it. The closed check happens under the same lock as the enqueue, so
    /// `Ok` is a guarantee: an accepted job runs before the workers exit.
    ///
    /// A panicking job is **caught and swallowed** by the worker (the pool
    /// is shared across queries and must keep serving): the global panic
    /// hook still prints the payload to stderr, but `execute` offers no
    /// per-job completion signal. Callers that need to observe failure must
    /// report through the job's own channel — see the region driver's
    /// `DeliveryGuard` for the pattern.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed> {
        // Process-wide pool telemetry: queue-wait (enqueue → dequeue) vs
        // run time, per job. The registry is two relaxed-contention mutex
        // touches per job — noise next to a region join — so it stays
        // unconditional rather than plumbing a recorder into every pool
        // user.
        let enqueued = Instant::now();
        let wrapped = move || {
            let registry = MetricsRegistry::global();
            registry.observe("pool.queue_wait", enqueued.elapsed());
            let run_started = Instant::now();
            job();
            registry.observe("pool.run", run_started.elapsed());
            registry.incr("pool.jobs", 1);
        };
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        if state.shutdown {
            return Err(PoolClosed);
        }
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(Box::new(wrapped));
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Gracefully closes the pool: every later [`execute`](Self::execute)
    /// returns [`PoolClosed`], while jobs accepted *before* the close still
    /// run to completion (workers drain their deques before exiting).
    /// Idempotent. Workers are joined by `Drop`, not here, so sessions
    /// holding an `Arc` to the pool keep their already-dispatched work.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
    }

    /// Whether [`close`](Self::close) has run.
    pub fn is_closed(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .shutdown
    }

    /// Queued (not yet started) jobs across all deques.
    pub fn queued(&self) -> usize {
        let state = self.shared.state.lock().expect("pool state poisoned");
        state.queues.iter().map(VecDeque::len).sum()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            // Discard queued jobs: an abandoned query must stop burning CPU.
            for q in state.queues.iter_mut() {
                q.clear();
            }
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            // Workers catch job panics and keep running, so this join
            // normally succeeds; best-effort is still the right call on
            // the shutdown path.
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let mut state = shared.state.lock().expect("pool state poisoned");
    loop {
        if let Some(job) = take_job(&mut state, me) {
            drop(state);
            // A pool shared across sessions of one engine must survive a
            // panicking job (a user mapping function): catch the unwind so
            // the worker keeps serving other queries. The job's own
            // reporting channel (the driver's DeliveryGuard) surfaces the
            // failure to the session that dispatched it, and the panic
            // hook has already printed the payload to stderr.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            state = shared.state.lock().expect("pool state poisoned");
            continue;
        }
        if state.shutdown {
            return;
        }
        state = shared.work.wait(state).expect("pool state poisoned");
    }
}

/// Own queue front first; otherwise steal from the back of the longest
/// other queue.
fn take_job(state: &mut State, me: usize) -> Option<Job> {
    if let Some(job) = state.queues[me].pop_front() {
        return Some(job);
    }
    let victim = (0..state.queues.len())
        .filter(|&i| i != me)
        .max_by_key(|&i| state.queues[i].len())?;
    state.queues[victim].pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            })
            .expect("pool open");
        }
        for _ in 0..100 {
            rx.recv_timeout(Duration::from_secs(10)).expect("job ran");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.execute(move || {
            let _ = tx.send(42);
        })
        .expect("pool open");
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn idle_workers_steal_queued_work() {
        // One producer floods a single submission slot with slow jobs; with
        // stealing, total wall time is bounded by roughly jobs/threads.
        let pool = ThreadPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(20));
                let _ = tx.send(i);
            })
            .expect("pool open");
        }
        let mut got: Vec<i32> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(10)).expect("job ran"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        // A shared pool must keep serving after a user job panics.
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("job explodes")).expect("pool open");
        let (tx, rx) = mpsc::channel();
        pool.execute(move || {
            let _ = tx.send(7);
        })
        .expect("pool open");
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Ok(7),
            "worker died with the panicking job"
        );
    }

    #[test]
    fn pool_jobs_feed_the_global_metrics_registry() {
        // The registry is process-wide and other tests run concurrently,
        // so assert monotone growth, not exact counts.
        let before = MetricsRegistry::global().counter("pool.jobs");
        {
            let pool = ThreadPool::new(2);
            let (tx, rx) = mpsc::channel();
            for _ in 0..10 {
                let tx = tx.clone();
                pool.execute(move || {
                    let _ = tx.send(());
                })
                .expect("pool open");
            }
            for _ in 0..10 {
                rx.recv_timeout(Duration::from_secs(10)).expect("job ran");
            }
            // Drop joins the workers, so every metric write has landed.
        }
        let after = MetricsRegistry::global().counter("pool.jobs");
        assert!(after >= before + 10, "before={before} after={after}");
        let run = MetricsRegistry::global()
            .histogram("pool.run")
            .expect("run histogram exists");
        assert!(run.count() >= 10);
        assert!(MetricsRegistry::global()
            .histogram("pool.queue_wait")
            .is_some());
    }

    #[test]
    fn drop_joins_and_discards_queued_jobs() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            let gate = Arc::new(AtomicUsize::new(0));
            // First job blocks the only worker so the rest stay queued.
            let g = Arc::clone(&gate);
            pool.execute(move || {
                while g.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
            })
            .expect("pool open");
            for _ in 0..50 {
                let ran = Arc::clone(&ran);
                pool.execute(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
                .expect("pool open");
            }
            // Once the worker has dequeued the gate job, exactly the 50
            // follow-ups remain queued behind it.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while pool.queued() > 50 && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            assert_eq!(pool.queued(), 50, "worker is gated; all jobs queued");
            gate.store(1, Ordering::Release);
            // Dropping now: in-flight job finishes, queued jobs may be
            // discarded before running.
        }
        assert!(ran.load(Ordering::Relaxed) <= 50);
    }

    #[test]
    fn execute_after_close_returns_typed_error() {
        let pool = ThreadPool::new(2);
        assert!(!pool.is_closed());
        pool.close();
        assert!(pool.is_closed());
        let err = pool.execute(|| unreachable!("rejected job must not run"));
        assert_eq!(err, Err(PoolClosed));
        // Idempotent: a second close and a second execute behave the same.
        pool.close();
        assert_eq!(pool.execute(|| ()), Err(PoolClosed));
    }

    #[test]
    fn jobs_accepted_before_close_still_run() {
        // The committer-side contract: `Ok` from execute means the job runs
        // even if the pool closes immediately afterwards — close must never
        // strand an accepted job (that would deadlock a waiting session).
        let pool = ThreadPool::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let ran = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            while g.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        })
        .expect("pool open");
        for _ in 0..20 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .expect("pool open");
        }
        pool.close();
        assert_eq!(pool.execute(|| ()), Err(PoolClosed));
        gate.store(1, Ordering::Release);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while ran.load(Ordering::Relaxed) < 20 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            ran.load(Ordering::Relaxed),
            20,
            "all jobs accepted before close must run"
        );
    }
}
