//! The parallel ProgXe engine: the pooled instantiation of the core's
//! unified region driver.
//!
//! ## Architecture
//!
//! [`ParallelProgXe`] reuses the whole pipeline front end
//! ([`ProgXe::prepare`]): validation, push-through, grid construction,
//! output-space look-ahead, and the region schedule. The region loop itself
//! is **not** implemented here — it lives exactly once, in
//! [`progxe_core::driver::RegionDriver`]; this crate merely supplies the
//! [`Pooled`](progxe_core::driver::ExecutorBackend::Pooled) backend: a
//! handle to the engine's shared [`EngineRuntime`] pool.
//!
//! ```text
//!           ┌─ pop ──▶ worker: ctx.compute(rid)  ─┐   (any thread, any order)
//! schedule ─┼─ pop ──▶ worker: ctx.compute(rid)  ─┼─▶ reorder buffer
//!           └─ pop ──▶ worker: ctx.compute(rid)  ─┘        │
//!                                                          ▼  oldest-first
//!                                       committer: insert + resolve + emit
//! ```
//!
//! The driver pops regions from the schedule into a bounded dispatch
//! window (`2 × threads`), hands each to the shared pool as a pure work
//! unit, and then **commits strictly in pop order**, blocking on the oldest
//! outstanding batch. Because every pop and every commit happens at a
//! deterministic point of that loop — never "whichever worker finished
//! first" — the emitted event sequence is a pure function of the query and
//! its configuration, independent of worker interleaving or machine load.
//!
//! ## Why safety is preserved
//!
//! Algorithm 2's guarantee ("emit a cell only when no unresolved region can
//! still place a tuple into a dominating cell") only cares that a region is
//! *resolved after its tuples are in the store*. Workers never touch the
//! store; the committer inserts a region's batch and resolves it in one
//! step, exactly like the inline backend — in-flight regions simply stay
//! unresolved, keeping their blocker counts up, so nothing they could still
//! produce is ever contradicted by an early emission. Dispatch order
//! deviating from sequential ProgOrder only shifts the *rate* optimization
//! (Section IV), never correctness, as the paper's No-Order variation
//! already establishes.
//!
//! ## Pool lifecycle
//!
//! Sessions **never construct a pool**: they borrow the engine's
//! [`EngineRuntime`], which lazily spawns one long-lived
//! [`ThreadPool`](crate::ThreadPool) on the first session and shares it
//! with every subsequent one — per-query spawn/join latency is paid once per engine,
//! not once per query. Cancellation: workers check the shared token inside
//! the probe loop and return partial batches flagged `completed = false`;
//! the committer never commits those, so a cancelled query cannot emit a
//! false positive, and its leftover jobs vacate the shared pool at their
//! first token check.

use crate::runtime::EngineRuntime;
use progxe_core::config::ProgXeConfig;
use progxe_core::driver::{ExecutorBackend, RegionDriver, TaskSpawner};
use progxe_core::error::Result;
use progxe_core::executor::ProgXe;
use progxe_core::ingest::{IngestSession, StreamSpec};
use progxe_core::mapping::MapSet;
use progxe_core::session::{CancellationToken, ProgressiveEngine, QuerySession};
use progxe_core::source::SourceView;
use progxe_obs::Recorder;
use std::sync::Arc;

/// A [`ProgressiveEngine`] that runs ProgXe's tuple-level phase on
/// [`ProgXeConfig::threads`] shared worker threads with ordered progressive
/// commit. With `threads = 1` it still works (one worker + committer) but
/// [`ProgXe`] itself is the better choice — the query layer dispatches
/// accordingly.
///
/// Cloning shares the [`EngineRuntime`]: clones and their sessions all use
/// the same pool.
#[derive(Debug, Clone)]
pub struct ParallelProgXe {
    config: ProgXeConfig,
    runtime: Arc<EngineRuntime>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl ParallelProgXe {
    /// Creates a parallel executor with the given configuration and a
    /// fresh (lazily-spawned) runtime sized to `config.threads`.
    #[must_use]
    pub fn new(config: ProgXeConfig) -> Self {
        let threads = config.threads.get();
        Self {
            config,
            runtime: Arc::new(EngineRuntime::new(threads)),
            recorder: None,
        }
    }

    /// Creates a parallel executor borrowing an existing shared runtime —
    /// the query layer uses this so every engine clone and every session
    /// of one query-layer `Engine` description reuses one pool.
    #[must_use]
    pub fn with_runtime(config: ProgXeConfig, runtime: Arc<EngineRuntime>) -> Self {
        Self {
            config,
            runtime,
            recorder: None,
        }
    }

    /// Attaches a trace [`Recorder`]; every session opened afterwards
    /// emits span/point/counter events into it (see `progxe_obs`).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// [`with_recorder`](Self::with_recorder) taking an optional recorder —
    /// `None` leaves tracing off (the zero-cost default).
    #[must_use]
    pub fn with_recorder_opt(mut self, recorder: Option<Arc<dyn Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ProgXeConfig {
        &self.config
    }

    /// The shared execution runtime backing this engine's sessions.
    pub fn runtime(&self) -> &Arc<EngineRuntime> {
        &self.runtime
    }

    /// Opens a session sharing a caller-provided cancellation token. The
    /// token stops the committer *and* every in-flight worker.
    pub fn session_with_token<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
        token: CancellationToken,
    ) -> Result<QuerySession<'a>> {
        let mut prep = ProgXe::new(self.config.clone())
            .with_recorder_opt(self.recorder.clone())
            .prepare(r, t, maps, token.clone())?;
        prep.stats.threads_used = self.runtime.threads();
        // Trivial runs (empty input, cancelled setup) must not spawn the
        // lazily-created pool.
        let backend = if prep.committer.is_some() {
            let pool = self.runtime.handle();
            let threads = pool.threads();
            ExecutorBackend::Pooled {
                spawner: pool as Arc<dyn TaskSpawner>,
                threads,
            }
        } else {
            ExecutorBackend::Inline
        };
        let driver = RegionDriver::new(
            prep,
            token.clone(),
            backend,
            self.config.prefilter_min_pairs,
        );
        Ok(QuerySession::stepped("progxe-mt", token, Box::new(driver)))
    }

    /// Opens a streaming-ingestion session whose region compute runs on
    /// this engine's shared pool. Ingestion (pushes, watermarks, closes)
    /// happens on the caller's thread and overlaps with in-flight region
    /// joins; the readiness-gated schedule keeps emission identical to the
    /// Inline backend (see `progxe_core::ingest`).
    pub fn open_ingest(
        &self,
        maps: &MapSet,
        r_spec: StreamSpec,
        t_spec: StreamSpec,
    ) -> Result<IngestSession> {
        self.open_ingest_with_token(maps, r_spec, t_spec, CancellationToken::new())
    }

    /// [`open_ingest`](Self::open_ingest) sharing a caller-provided
    /// cancellation token (e.g. one watched by a timeout thread).
    pub fn open_ingest_with_token(
        &self,
        maps: &MapSet,
        r_spec: StreamSpec,
        t_spec: StreamSpec,
        token: CancellationToken,
    ) -> Result<IngestSession> {
        let pool = self.runtime.handle();
        let threads = pool.threads();
        IngestSession::open_observed(
            &self.config,
            maps,
            r_spec,
            t_spec,
            ExecutorBackend::Pooled {
                spawner: pool as Arc<dyn TaskSpawner>,
                threads,
            },
            token,
            self.recorder.clone(),
        )
    }
}

impl ProgressiveEngine for ParallelProgXe {
    fn name(&self) -> &'static str {
        "progxe-mt"
    }

    fn open<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        self.session_with_token(r, t, maps, CancellationToken::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progxe_core::source::SourceData;
    use progxe_skyline::Preference;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            let k = (lcg(&mut st) % keys as u64) as u32;
            s.push(&row, k);
        }
        s
    }

    fn sorted_ids(results: &[progxe_core::stats::ResultTuple]) -> Vec<(u32, u32)> {
        let mut ids: Vec<(u32, u32)> = results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let r = random_source(300, 2, 6, 1);
        let t = random_source(300, 2, 6, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let seq = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        let par = ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        assert_eq!(sorted_ids(&seq.results), sorted_ids(&par.results));
        assert_eq!(par.stats.threads_used, 4);
        assert!(!par.stats.cancelled);
        assert_eq!(seq.stats.results_emitted, par.stats.results_emitted);
    }

    #[test]
    fn parallel_run_is_self_deterministic() {
        // Same query twice: identical event-by-event output, including
        // batch boundaries — worker interleaving must not leak through.
        let r = random_source(250, 2, 5, 3);
        let t = random_source(250, 2, 5, 4);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let run = || {
            let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
            let mut batches = Vec::new();
            while let Some(event) = session.next_batch() {
                assert!(event.proven_final);
                batches.push(event.tuples);
            }
            batches
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sessions_share_one_pool() {
        let r = random_source(200, 2, 5, 30);
        let t = random_source(200, 2, 5, 31);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(3));
        assert_eq!(engine.runtime().pools_spawned(), 0, "runtime is lazy");
        let a = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let b = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert_eq!(sorted_ids(&a.results), sorted_ids(&b.results));
        assert_eq!(
            engine.runtime().pools_spawned(),
            1,
            "both sessions must reuse the engine's pool"
        );
    }

    #[test]
    fn dropping_the_engine_shuts_the_pool_down() {
        let r = random_source(150, 2, 5, 40);
        let t = random_source(150, 2, 5, 41);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(2));
        let _ = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let watch = engine.runtime().pool_watch().expect("pool spawned");
        drop(engine);
        assert!(
            watch.upgrade().is_none(),
            "engine drop must join the shared pool's workers"
        );
    }

    #[test]
    fn parallel_take_k_cancels_workers() {
        let r = random_source(400, 2, 4, 5);
        let t = random_source(400, 2, 4, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let full = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(full.results.len() >= 3);
        let partial = engine.open(&r.view(), &t.view(), &maps).unwrap().take(2);
        assert_eq!(partial.results.len(), 2);
        assert_eq!(&full.results[..2], &partial.results[..]);
        assert!(partial.stats.cancelled);
        assert!(partial.stats.regions_skipped > 0);
    }

    #[test]
    fn finish_without_explicit_cancel_stops_inflight_workers() {
        let r = random_source(400, 2, 4, 20);
        let t = random_source(400, 2, 4, 21);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
        assert!(session.next_batch().is_some());
        // No cancel() call: finish() itself must skip the remaining work
        // (firing the token for in-flight workers) rather than await it.
        let stats = session.finish();
        assert!(stats.cancelled);
        assert!(stats.regions_skipped > 0);
    }

    #[test]
    fn pre_cancelled_parallel_session_does_nothing() {
        let r = random_source(100, 2, 5, 7);
        let t = random_source(100, 2, 5, 8);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(2));
        let token = CancellationToken::new();
        token.cancel();
        let mut session = engine
            .session_with_token(&r.view(), &t.view(), &maps, token)
            .unwrap();
        assert!(session.next_batch().is_none());
        let stats = session.finish();
        assert!(stats.cancelled);
        assert_eq!(stats.regions_processed, 0);
        assert!(
            !engine.runtime().is_running(),
            "a trivial session must not spawn the pool"
        );
    }

    #[test]
    fn empty_inputs_are_trivial() {
        let r = SourceData::new(2);
        let t = random_source(10, 2, 2, 9);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
        assert!(!out.stats.cancelled);
        assert!(!engine.runtime().is_running());
    }

    #[test]
    #[should_panic(expected = "progxe worker panicked while computing region")]
    fn worker_panic_propagates_instead_of_masquerading_as_cancel() {
        use progxe_core::mapping::{GeneralMap, MappingFunction};
        let r = random_source(50, 1, 1, 12);
        let t = random_source(50, 1, 1, 13);
        let exploding = GeneralMap::new(
            "exploding",
            |_r: &[f64], _t: &[f64]| panic!("user mapping function failed"),
            |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
                (r_lo[0] + t_lo[0], r_hi[0] + t_hi[0])
            },
        );
        let maps = MapSet::new(
            vec![Box::new(exploding) as Box<dyn MappingFunction>],
            Preference::all_lowest(1),
        )
        .unwrap();
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(2));
        let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
        while session.next_batch().is_some() {}
    }

    #[test]
    fn pool_survives_a_query_with_panicking_maps() {
        use progxe_core::mapping::{GeneralMap, MappingFunction};
        let r = random_source(50, 1, 1, 14);
        let t = random_source(50, 1, 1, 15);
        let exploding = GeneralMap::new(
            "exploding",
            |_r: &[f64], _t: &[f64]| panic!("user mapping function failed"),
            |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
                (r_lo[0] + t_lo[0], r_hi[0] + t_hi[0])
            },
        );
        let maps = MapSet::new(
            vec![Box::new(exploding) as Box<dyn MappingFunction>],
            Preference::all_lowest(1),
        )
        .unwrap();
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(2));
        let failed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
            while session.next_batch().is_some() {}
        }));
        assert!(failed.is_err(), "the failing query must propagate");
        // The *shared* pool must still serve healthy queries afterwards.
        let good = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let out = engine.run_collect(&r.view(), &t.view(), &good).unwrap();
        assert!(!out.stats.cancelled);
        assert_eq!(engine.runtime().pools_spawned(), 1);
    }

    #[test]
    fn pooled_ingest_matches_inline_ingest_event_for_event() {
        use progxe_core::ingest::{IngestPoll, IngestSession, SourceId, StreamSpec};
        let rows_r = random_source(200, 2, 5, 50);
        let rows_t = random_source(200, 2, 5, 51);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let spec = || StreamSpec::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();

        let run = |mut session: IngestSession| -> Vec<Vec<(u32, u32)>> {
            let mut batches: Vec<Vec<(u32, u32)>> = Vec::new();
            for (side, src) in [(SourceId::R, &rows_r), (SourceId::T, &rows_t)] {
                // Trickled in four batches to exercise mid-ingest polls.
                for chunk in 0..4 {
                    let lo = chunk * 50;
                    let rows: Vec<(&[f64], u32)> = (lo..lo + 50)
                        .map(|i| (src.view().attrs_of(i), src.view().join_key_of(i)))
                        .collect();
                    session.push(side, &rows).unwrap();
                    while let IngestPoll::Batch(e) = session.poll() {
                        batches.push(e.tuples.iter().map(|t| (t.r_idx, t.t_idx)).collect());
                    }
                }
                session.close(side);
            }
            loop {
                match session.poll() {
                    IngestPoll::Batch(e) => {
                        batches.push(e.tuples.iter().map(|t| (t.r_idx, t.t_idx)).collect())
                    }
                    IngestPoll::NeedInput => panic!("closed session cannot need input"),
                    IngestPoll::Complete => break,
                }
            }
            let stats = session.finish();
            assert!(!stats.cancelled);
            assert_eq!(stats.tuples_ingested, 400);
            batches
        };

        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(3));
        let pooled = run(engine.open_ingest(&maps, spec(), spec()).unwrap());
        assert_eq!(engine.runtime().pools_spawned(), 1);
        let inline = IngestSession::open(&ProgXeConfig::default(), &maps, spec(), spec()).unwrap();
        // The readiness-gated schedule serializes the dispatch window, so
        // pooled and inline agree batch-for-batch — not just as sets.
        // (Only events after close are compared here; both paths drain
        // mid-ingest identically by the same argument.)
        assert_eq!(run(inline), pooled);
        assert!(!pooled.is_empty());
    }

    #[test]
    fn parallel_works_across_orderings() {
        use progxe_core::config::OrderingPolicy;
        let r = random_source(200, 2, 5, 10);
        let t = random_source(200, 2, 5, 11);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let reference = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        for ordering in [
            OrderingPolicy::ProgOrder,
            OrderingPolicy::Random { seed: 1 },
            OrderingPolicy::Fifo,
        ] {
            let engine = ParallelProgXe::new(
                ProgXeConfig::default()
                    .with_ordering(ordering)
                    .with_threads(3),
            );
            let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
            assert_eq!(
                sorted_ids(&reference.results),
                sorted_ids(&out.results),
                "{ordering:?}"
            );
        }
    }

    #[test]
    fn dropping_a_session_without_finish_fires_its_token_on_both_backends() {
        // Regression: a dropped (not finished, not cancelled) session left
        // its token unfired unless the driver happened to have in-flight
        // dispatches — so pooled workers of an abandoned session could keep
        // burning shared CPU. Drop must behave like cancel on *every*
        // backend, including mid-stream with nothing in flight.
        let r = random_source(300, 2, 6, 41);
        let t = random_source(300, 2, 6, 42);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        // Inline backend (sequential ProgXe).
        let engine = ProgXe::new(ProgXeConfig::default());
        let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
        let token = session.cancel_token();
        assert!(session.next_batch().is_some(), "mid-stream, not unpulled");
        drop(session);
        assert!(token.is_cancelled(), "inline: drop must fire the token");
        // Pooled backend (shared runtime).
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(3));
        let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
        let token = session.cancel_token();
        assert!(session.next_batch().is_some(), "mid-stream, not unpulled");
        drop(session);
        assert!(token.is_cancelled(), "pooled: drop must fire the token");
        // Pooled ingest session, same contract.
        let spec = || StreamSpec::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(3));
        let session = engine.open_ingest(&maps, spec(), spec()).unwrap();
        let token = session.cancel_token();
        drop(session);
        assert!(token.is_cancelled(), "ingest: drop must fire the token");
    }

    #[test]
    fn shutdown_under_a_live_session_cancels_instead_of_deadlocking() {
        // Regression: `ThreadPool::execute` after shutdown used to enqueue
        // into queues no worker would ever drain again (release builds
        // compiled the debug_assert away), so the committer blocked forever
        // in `wait_take` on a job that never ran. Pinned behavior: the
        // pool is *closed* by `EngineRuntime::shutdown`, the session's next
        // dispatch gets a typed `SpawnError`, and the run ends as a clean
        // cancellation — never a deadlock, never a silent drop.
        let r = random_source(400, 2, 8, 21);
        let t = random_source(400, 2, 8, 22);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let runtime = std::sync::Arc::new(EngineRuntime::new(2));
        let engine = ParallelProgXe::with_runtime(
            ProgXeConfig::default().with_threads(2),
            std::sync::Arc::clone(&runtime),
        );
        let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
        // Let the first dispatch window land so the session is genuinely
        // mid-flight, then rip the pool out from under it.
        assert!(session.next_batch().is_some(), "workload emits something");
        runtime.shutdown();
        // Draining must terminate (the whole point of the fix)...
        while session.next_batch().is_some() {}
        // ...and the interrupted run must say so.
        let stats = session.finish();
        assert!(
            stats.cancelled,
            "a shutdown racing a live session must surface as a cancelled run"
        );
        // The runtime stays usable: the next session respawns a pool.
        let fresh = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(!fresh.stats.cancelled);
        assert_eq!(runtime.pools_spawned(), 2);
    }
}
