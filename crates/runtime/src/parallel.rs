//! The parallel ProgXe driver: region fan-out, ordered progressive commit.
//!
//! ## Architecture
//!
//! [`ParallelProgXe`] reuses the whole sequential front end
//! ([`ProgXe::prepare`]): validation, push-through, grid construction,
//! output-space look-ahead, and the region schedule. Only the region loop
//! changes shape:
//!
//! ```text
//!           ┌─ pop ──▶ worker: ctx.compute(rid)  ─┐   (any thread, any order)
//! schedule ─┼─ pop ──▶ worker: ctx.compute(rid)  ─┼─▶ reorder buffer
//!           └─ pop ──▶ worker: ctx.compute(rid)  ─┘        │
//!                                                          ▼  oldest-first
//!                                       committer: insert + resolve + emit
//! ```
//!
//! The committer pops regions from the schedule into a bounded dispatch
//! window (`2 × threads`), hands each to the [`ThreadPool`] as a pure work
//! unit, and then **commits strictly in pop order**, blocking on the oldest
//! outstanding batch. Because every pop and every commit happens at a
//! deterministic point of that loop — never "whichever worker finished
//! first" — the emitted event sequence is a pure function of the query and
//! its configuration, independent of worker interleaving or machine load.
//!
//! ## Why safety is preserved
//!
//! Algorithm 2's guarantee ("emit a cell only when no unresolved region can
//! still place a tuple into a dominating cell") only cares that a region is
//! *resolved after its tuples are in the store*. Workers never touch the
//! store; the committer inserts a region's batch and resolves it in one
//! step, exactly like the sequential path — in-flight regions simply stay
//! unresolved, keeping their blocker counts up, so nothing they could still
//! produce is ever contradicted by an early emission. Dispatch order
//! deviating from sequential ProgOrder only shifts the *rate* optimization
//! (Section IV), never correctness, as the paper's No-Order variation
//! already establishes.
//!
//! Cancellation: workers check the shared token inside the probe loop and
//! return partial batches flagged `completed = false`; the committer never
//! commits those, so a cancelled query cannot emit a false positive.

use crate::pool::ThreadPool;
use progxe_core::config::ProgXeConfig;
use progxe_core::error::Result;
use progxe_core::executor::{Committer, ProgXe};
use progxe_core::mapping::MapSet;
use progxe_core::session::{
    CancellationToken, ProgressiveEngine, QuerySession, ResultEvent, SessionStep,
};
use progxe_core::source::SourceView;
use progxe_core::stats::ExecStats;
use progxe_core::tuple_level::{RegionBatch, RegionCtx};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A [`ProgressiveEngine`] that runs ProgXe's tuple-level phase on
/// [`ProgXeConfig::threads`] worker threads with ordered progressive
/// commit. With `threads = 1` it still works (one worker + committer) but
/// [`ProgXe`] itself is the better choice — the query layer dispatches
/// accordingly.
#[derive(Debug, Clone, Default)]
pub struct ParallelProgXe {
    config: ProgXeConfig,
}

impl ParallelProgXe {
    /// Creates a parallel executor with the given configuration.
    #[must_use]
    pub fn new(config: ProgXeConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProgXeConfig {
        &self.config
    }

    /// Opens a session sharing a caller-provided cancellation token. The
    /// token stops the committer *and* every in-flight worker.
    pub fn session_with_token<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
        token: CancellationToken,
    ) -> Result<QuerySession<'a>> {
        let threads = self.config.threads.get();
        let prep = ProgXe::new(self.config.clone()).prepare(r, t, maps, token.clone())?;
        let mut stats = prep.stats;
        stats.threads_used = threads;
        let session =
            ParallelSession::new(prep.started, prep.committer, stats, token.clone(), threads);
        Ok(QuerySession::stepped("progxe-mt", token, Box::new(session)))
    }
}

impl ProgressiveEngine for ParallelProgXe {
    fn name(&self) -> &'static str {
        "progxe-mt"
    }

    fn open<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        self.session_with_token(r, t, maps, CancellationToken::new())
    }
}

/// Reorder buffer between workers and the committer: a `Mutex`/`Condvar`
/// channel keyed by dispatch sequence number.
struct ResultQueue {
    slots: Mutex<BTreeMap<u64, RegionBatch>>,
    ready: Condvar,
}

impl ResultQueue {
    fn new() -> Self {
        Self {
            slots: Mutex::new(BTreeMap::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, seq: u64, batch: RegionBatch) {
        let mut slots = self.slots.lock().expect("result queue poisoned");
        slots.insert(seq, batch);
        drop(slots);
        self.ready.notify_all();
    }

    /// Blocks until the batch for `seq` arrives. Every dispatched job is
    /// guaranteed to push exactly one entry (a [`DeliveryGuard`] reports
    /// even on worker panic), so this cannot deadlock while the pool lives.
    fn wait_take(&self, seq: u64) -> RegionBatch {
        let mut slots = self.slots.lock().expect("result queue poisoned");
        loop {
            if let Some(batch) = slots.remove(&seq) {
                return batch;
            }
            slots = self.ready.wait(slots).expect("result queue poisoned");
        }
    }
}

/// Ensures a dispatched work unit always reports: if the job unwinds before
/// delivering, `Drop` pushes an aborted batch so the committer wakes up and
/// treats the run as cancelled instead of deadlocking.
struct DeliveryGuard {
    queue: Arc<ResultQueue>,
    seq: u64,
    rid: u32,
    dims: usize,
    delivered: bool,
}

impl DeliveryGuard {
    fn deliver(mut self, batch: RegionBatch) {
        self.delivered = true;
        self.queue.push(self.seq, batch);
    }
}

impl Drop for DeliveryGuard {
    fn drop(&mut self) {
        if !self.delivered {
            self.queue
                .push(self.seq, RegionBatch::aborted(self.rid, self.dims));
        }
    }
}

/// The pull-stepped parallel session behind a [`QuerySession`].
struct ParallelSession {
    start: Instant,
    token: CancellationToken,
    stats: ExecStats,
    committer: Option<Committer>,
    /// `None` only for trivial runs (no committer, nothing to do).
    pool: Option<ThreadPool>,
    queue: Arc<ResultQueue>,
    /// Dispatch sequence numbers of in-flight regions, oldest first.
    inflight: VecDeque<u64>,
    next_seq: u64,
    /// Dispatch-window size (`2 × threads`): enough to keep workers busy
    /// while the committer blocks on the oldest batch, small enough to
    /// bound batch memory and stay close to the schedule's intent.
    window: usize,
    ready: VecDeque<ResultEvent>,
    done: bool,
}

impl ParallelSession {
    fn new(
        start: Instant,
        committer: Option<Committer>,
        stats: ExecStats,
        token: CancellationToken,
        threads: usize,
    ) -> Self {
        let pool = committer.as_ref().map(|_| ThreadPool::new(threads));
        let done = committer.is_none();
        Self {
            start,
            token,
            stats,
            committer,
            pool,
            queue: Arc::new(ResultQueue::new()),
            inflight: VecDeque::new(),
            next_seq: 0,
            window: threads.saturating_mul(2).max(1),
            ready: VecDeque::new(),
            done,
        }
    }

    /// One deterministic scheduling round: top the dispatch window up, then
    /// — unless dead-region discards already produced deliverable events —
    /// commit the oldest in-flight batch. Returns `false` when the run is
    /// over (schedule exhausted or cancelled mid-region).
    fn advance(&mut self) -> bool {
        let Some(committer) = self.committer.as_mut() else {
            return false;
        };
        while self.inflight.len() < self.window {
            let Some(rid) = committer.pop_next(&mut self.stats) else {
                break;
            };
            if committer.region_box_is_dead(rid) {
                if let Some(event) = committer.discard_dead(rid, &mut self.stats) {
                    self.ready.push_back(event);
                }
                continue;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let ctx = committer.ctx();
            let token = self.token.clone();
            let queue = Arc::clone(&self.queue);
            let dims = ctx.maps().out_dims();
            self.pool
                .as_ref()
                .expect("pool exists whenever a committer does")
                .execute(move || {
                    let guard = DeliveryGuard {
                        queue,
                        seq,
                        rid,
                        dims,
                        delivered: false,
                    };
                    let batch = compute_unit(&ctx, rid, &token);
                    guard.deliver(batch);
                });
            self.inflight.push_back(seq);
        }
        if !self.ready.is_empty() {
            // Deliver discard-produced events before blocking on a worker.
            return true;
        }
        let Some(seq) = self.inflight.pop_front() else {
            return false;
        };
        let batch = self.queue.wait_take(seq);
        if !batch.completed {
            // An incomplete batch has exactly two causes. If the shared
            // token fired, this is an ordinary cancellation: the region
            // stays unresolved and the run ends cancelled, never emitting
            // from partial state. Otherwise the worker died (a panicking
            // mapping function) and the DeliveryGuard reported for it —
            // propagate, matching the sequential engine's behavior instead
            // of disguising a crash as a user-initiated cancel.
            if !self.token.is_cancelled() {
                panic!(
                    "progxe worker panicked while computing region {} \
                     (see stderr for the worker's panic message)",
                    batch.rid
                );
            }
            self.stats.cancelled = true;
            return false;
        }
        if let Some(event) = committer.commit_batch(batch, &mut self.stats) {
            self.ready.push_back(event);
        }
        true
    }
}

/// The worker-side job body, separated for readability.
fn compute_unit(ctx: &RegionCtx, rid: u32, token: &CancellationToken) -> RegionBatch {
    ctx.compute(rid, token)
}

impl SessionStep for ParallelSession {
    fn next_event(&mut self) -> Option<ResultEvent> {
        loop {
            if self.token.is_cancelled() {
                return None;
            }
            if let Some(event) = self.ready.pop_front() {
                return Some(event);
            }
            if self.done {
                return None;
            }
            if !self.advance() {
                self.done = true;
            }
        }
    }

    fn stats_snapshot(&self) -> ExecStats {
        let mut stats = self.stats.clone();
        stats.total_time = self.start.elapsed();
        stats
    }

    fn finalize(mut self: Box<Self>) -> ExecStats {
        // Finishing with regions in flight means their work is *skipped*,
        // not awaited: fire the token so workers bail at their next check,
        // then join them (queued jobs are discarded by the pool's Drop).
        // Cancelling the shared token here is the parallel equivalent of
        // the sequential session abandoning its remaining regions.
        if !self.inflight.is_empty() {
            self.token.cancel();
        }
        let mut stats = std::mem::take(&mut self.stats);
        drop(self.pool.take());
        if let Some(committer) = self.committer.take() {
            if !self.ready.is_empty() || !self.inflight.is_empty() {
                stats.cancelled = true;
            }
            committer.finalize(&mut stats);
        }
        stats.total_time = self.start.elapsed();
        stats
    }
}

impl Drop for ParallelSession {
    /// A session dropped without `finish()` must not stall joining workers
    /// that are computing doomed regions: fire the token first (field drop
    /// order then joins the pool, whose in-flight jobs exit at their next
    /// token check).
    fn drop(&mut self) {
        if !self.inflight.is_empty() {
            self.token.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progxe_core::source::SourceData;
    use progxe_skyline::Preference;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            let k = (lcg(&mut st) % keys as u64) as u32;
            s.push(&row, k);
        }
        s
    }

    fn sorted_ids(results: &[progxe_core::stats::ResultTuple]) -> Vec<(u32, u32)> {
        let mut ids: Vec<(u32, u32)> = results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let r = random_source(300, 2, 6, 1);
        let t = random_source(300, 2, 6, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let seq = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        let par = ParallelProgXe::new(ProgXeConfig::default().with_threads(4))
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        assert_eq!(sorted_ids(&seq.results), sorted_ids(&par.results));
        assert_eq!(par.stats.threads_used, 4);
        assert!(!par.stats.cancelled);
        assert_eq!(seq.stats.results_emitted, par.stats.results_emitted);
    }

    #[test]
    fn parallel_run_is_self_deterministic() {
        // Same query twice: identical event-by-event output, including
        // batch boundaries — worker interleaving must not leak through.
        let r = random_source(250, 2, 5, 3);
        let t = random_source(250, 2, 5, 4);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let run = || {
            let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
            let mut batches = Vec::new();
            while let Some(event) = session.next_batch() {
                assert!(event.proven_final);
                batches.push(event.tuples);
            }
            batches
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_take_k_cancels_workers() {
        let r = random_source(400, 2, 4, 5);
        let t = random_source(400, 2, 4, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let full = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(full.results.len() >= 3);
        let partial = engine.open(&r.view(), &t.view(), &maps).unwrap().take(2);
        assert_eq!(partial.results.len(), 2);
        assert_eq!(&full.results[..2], &partial.results[..]);
        assert!(partial.stats.cancelled);
        assert!(partial.stats.regions_skipped > 0);
    }

    #[test]
    fn finish_without_explicit_cancel_stops_inflight_workers() {
        let r = random_source(400, 2, 4, 20);
        let t = random_source(400, 2, 4, 21);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
        assert!(session.next_batch().is_some());
        // No cancel() call: finish() itself must skip the remaining work
        // (firing the token for in-flight workers) rather than await it.
        let stats = session.finish();
        assert!(stats.cancelled);
        assert!(stats.regions_skipped > 0);
    }

    #[test]
    fn pre_cancelled_parallel_session_does_nothing() {
        let r = random_source(100, 2, 5, 7);
        let t = random_source(100, 2, 5, 8);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(2));
        let token = CancellationToken::new();
        token.cancel();
        let mut session = engine
            .session_with_token(&r.view(), &t.view(), &maps, token)
            .unwrap();
        assert!(session.next_batch().is_none());
        let stats = session.finish();
        assert!(stats.cancelled);
        assert_eq!(stats.regions_processed, 0);
    }

    #[test]
    fn empty_inputs_are_trivial() {
        let r = SourceData::new(2);
        let t = random_source(10, 2, 2, 9);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(4));
        let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
        assert!(!out.stats.cancelled);
    }

    #[test]
    #[should_panic(expected = "progxe worker panicked while computing region")]
    fn worker_panic_propagates_instead_of_masquerading_as_cancel() {
        use progxe_core::mapping::{GeneralMap, MappingFunction};
        let r = random_source(50, 1, 1, 12);
        let t = random_source(50, 1, 1, 13);
        let exploding = GeneralMap::new(
            "exploding",
            |_r: &[f64], _t: &[f64]| panic!("user mapping function failed"),
            |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
                (r_lo[0] + t_lo[0], r_hi[0] + t_hi[0])
            },
        );
        let maps = MapSet::new(
            vec![Box::new(exploding) as Box<dyn MappingFunction>],
            Preference::all_lowest(1),
        )
        .unwrap();
        let engine = ParallelProgXe::new(ProgXeConfig::default().with_threads(2));
        let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
        while session.next_batch().is_some() {}
    }

    #[test]
    fn parallel_works_across_orderings() {
        use progxe_core::config::OrderingPolicy;
        let r = random_source(200, 2, 5, 10);
        let t = random_source(200, 2, 5, 11);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let reference = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        for ordering in [
            OrderingPolicy::ProgOrder,
            OrderingPolicy::Random { seed: 1 },
            OrderingPolicy::Fifo,
        ] {
            let engine = ParallelProgXe::new(
                ProgXeConfig::default()
                    .with_ordering(ordering)
                    .with_threads(3),
            );
            let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
            assert_eq!(
                sorted_ids(&reference.results),
                sorted_ids(&out.results),
                "{ordering:?}"
            );
        }
    }
}
