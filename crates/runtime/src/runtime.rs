//! The per-engine execution runtime: one lazily-spawned, long-lived
//! [`ThreadPool`] shared by every session of an engine.
//!
//! Before this module, `ParallelProgXe` constructed a fresh pool per
//! session — fine for heavy analytical queries, but per-query spawn/join
//! latency is exactly what a high-QPS serving layer cannot afford.
//! [`EngineRuntime`] fixes the lifecycle: the pool is spawned on the first
//! session that needs it, handed out as an `Arc` to every subsequent
//! session, and joined when the last owner (normally the engine) drops it.
//!
//! Sharing is safe because the drivers' work units are self-contained:
//! each job owns `Arc`s of its query context, cancellation token, and
//! reorder buffer, so jobs of different sessions interleave freely on the
//! same workers. A session abandoned mid-run fires its token; its queued
//! jobs then exit at their first token check instead of burning shared
//! CPU. Worker threads survive panicking user code (the pool catches the
//! unwind), so one bad mapping function cannot degrade the pool for every
//! other query of the engine.

use crate::pool::{PoolClosed, ThreadPool};
use progxe_core::driver::{SpawnError, TaskSpawner};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// A long-lived, lazily-spawned [`ThreadPool`] shared across all sessions
/// of one engine. Cheap to construct: no threads exist until
/// [`handle`](Self::handle) is first called.
#[derive(Debug)]
pub struct EngineRuntime {
    /// Target worker count for the pool (clamped to ≥ 1).
    threads: usize,
    /// The shared pool, `None` until first use or after [`shutdown`](Self::shutdown).
    pool: Mutex<Option<Arc<ThreadPool>>>,
    /// How many times this runtime spawned a pool (1 after any number of
    /// sessions, unless `shutdown` forced a respawn).
    spawns: AtomicUsize,
}

impl EngineRuntime {
    /// A runtime that will lazily spawn a pool of `threads` workers
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            pool: Mutex::new(None),
            spawns: AtomicUsize::new(0),
        }
    }

    /// The worker count the pool has (or will have once spawned).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A shared handle to the pool, spawning it on first use. Sessions
    /// hold the returned `Arc` for their lifetime, so the pool stays alive
    /// while any session still runs even if the engine itself is dropped.
    pub fn handle(&self) -> Arc<ThreadPool> {
        let mut slot = self.pool.lock().expect("engine runtime poisoned");
        match slot.as_ref() {
            Some(pool) => Arc::clone(pool),
            None => {
                let pool = Arc::new(ThreadPool::new(self.threads));
                self.spawns.fetch_add(1, Ordering::Relaxed);
                *slot = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    /// Times this runtime spawned a pool. Stays at 1 across any number of
    /// sessions — the whole point of the shared runtime.
    pub fn pools_spawned(&self) -> usize {
        self.spawns.load(Ordering::Relaxed)
    }

    /// Whether the pool is currently spawned.
    pub fn is_running(&self) -> bool {
        self.pool.lock().expect("engine runtime poisoned").is_some()
    }

    /// A non-owning watch on the spawned pool (`None` before first use or
    /// after [`shutdown`](Self::shutdown)). Lets callers observe shutdown
    /// without keeping the pool alive: once the runtime and every session
    /// drop their handles, `upgrade()` returns `None` — proof the workers
    /// were joined.
    pub fn pool_watch(&self) -> Option<Weak<ThreadPool>> {
        self.pool
            .lock()
            .expect("engine runtime poisoned")
            .as_ref()
            .map(Arc::downgrade)
    }

    /// Closes and releases the runtime's pool. The pool is closed first
    /// ([`ThreadPool::close`]), so a live session racing this call gets a
    /// typed [`SpawnError`] from its next dispatch and cancels cleanly
    /// (`ExecStats::cancelled`) instead of deadlocking its committer on a
    /// job that would never run; jobs accepted before the close still
    /// complete. Workers are joined as soon as the last session handle
    /// drops (immediately, when no session is running). The next
    /// [`handle`](Self::handle) call respawns a fresh pool. Dropping the
    /// runtime skips the close (sessions keep the pool usable via their
    /// own `Arc`s) — only an explicit `shutdown` revokes admission.
    pub fn shutdown(&self) {
        let taken = self.pool.lock().expect("engine runtime poisoned").take();
        if let Some(pool) = taken {
            pool.close();
        }
    }
}

impl TaskSpawner for ThreadPool {
    fn spawn_task(&self, job: Box<dyn FnOnce() + Send + 'static>) -> Result<(), SpawnError> {
        self.execute(job).map_err(|PoolClosed| SpawnError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn pool_spawns_lazily_and_once() {
        let rt = EngineRuntime::new(2);
        assert!(!rt.is_running());
        assert_eq!(rt.pools_spawned(), 0);
        let a = rt.handle();
        let b = rt.handle();
        assert!(Arc::ptr_eq(&a, &b), "handles must share one pool");
        assert_eq!(rt.pools_spawned(), 1);
        assert!(rt.is_running());
        assert_eq!(a.threads(), 2);
    }

    #[test]
    fn dropping_runtime_and_handles_joins_the_pool() {
        let rt = EngineRuntime::new(1);
        let handle = rt.handle();
        let watch = rt.pool_watch().expect("spawned");
        let (tx, rx) = mpsc::channel();
        handle
            .spawn_task(Box::new(move || {
                let _ = tx.send(1);
            }))
            .expect("pool open");
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(1));
        drop(handle);
        drop(rt);
        assert!(
            watch.upgrade().is_none(),
            "pool must shut down with its last owner"
        );
    }

    #[test]
    fn shutdown_allows_respawn() {
        let rt = EngineRuntime::new(1);
        let watch = {
            let _h = rt.handle();
            rt.pool_watch().expect("spawned")
        };
        rt.shutdown();
        assert!(!rt.is_running());
        assert!(watch.upgrade().is_none(), "no session ⇒ joined immediately");
        let _h = rt.handle();
        assert_eq!(rt.pools_spawned(), 2, "respawn after explicit shutdown");
    }

    #[test]
    fn zero_threads_clamps() {
        let rt = EngineRuntime::new(0);
        assert_eq!(rt.threads(), 1);
    }
}
