//! Network serving layer for ProgXe.
//!
//! Turns the in-process [`QuerySession`](progxe_core::session::QuerySession)
//! streaming model into a TCP service without giving up its two defining
//! properties:
//!
//! * **Progressiveness** — result batches cross the wire the moment the
//!   engine proves them final; nothing is buffered server-side, so a
//!   client's first results arrive while the bulk of the join is still
//!   running (the paper's core metric, time-to-first-result, survives the
//!   network hop).
//! * **Cancellation** — every connection's in-flight session holds a
//!   [`CancellationToken`](progxe_core::session::CancellationToken) that a
//!   per-connection watchdog thread fires on an explicit `Cancel` frame
//!   *or* on disconnect, so a vanished client stops consuming the shared
//!   worker pool at the next region boundary. Cancels are sequenced per
//!   connection: an early Cancel is never lost and a late one never kills
//!   the next pipelined query.
//!
//! Protocol v2 adds **continuous queries**: a client `Subscribe`s a
//! `PREFERRING` query over streaming-registered tables, `Push`es rows and
//! watermarks over the wire, and receives proven-final `Update` frames the
//! moment regions resolve — the paper's progressive contract, standing
//! instead of one-shot. See [`protocol`] for the frame table, version
//! negotiation, and the subscription lifecycle.
//!
//! Modules:
//!
//! * [`protocol`] — the length-prefixed wire format (frames, codec).
//! * [`server`] — accept loop, admission control, per-connection serving.
//! * [`client`] — a blocking reference client used by tests and the bench
//!   load generator.
//! * [`synthetic`] — datagen-backed catalogs for the `progxe-serve` binary
//!   and load tests.
//!
//! Admission control sheds load instead of queueing: past
//! [`ServerConfig::max_sessions`] concurrent connections, new clients get
//! a typed `Overloaded` error frame and an immediate close.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod synthetic;

pub use client::{Client, ClientReader, ClientWriter, RunOutcome};
pub use protocol::{
    BatchFrame, ClientFrame, DoneFrame, ErrorCode, PushFrame, PushRow, ServerFrame, WireTuple,
};
pub use server::{Server, ServerConfig, ServerHandle, ServerMetrics};
