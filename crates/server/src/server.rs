//! The serving loop: accept, admit, stream, cancel.
//!
//! One OS thread per connection plus a per-connection *watchdog* thread
//! that owns the read half of the socket. The watchdog is what makes
//! cancellation prompt: while the handler streams batches, the watchdog
//! sits in a blocking read, so a [`ClientFrame::Cancel`] — or the read
//! error / EOF of a vanished client — reaches the in-flight session's
//! [`CancellationToken`] immediately, and pooled region workers stop at
//! their next token check instead of burning shared CPU for a client that
//! will never see the results.
//!
//! Admission control is strict shedding: past
//! [`ServerConfig::max_sessions`] concurrent connections, a new client
//! gets a typed [`ErrorCode::Overloaded`] frame and an immediate close.
//! The server never queues connections — unbounded queueing just converts
//! overload into latency nobody asked for.
//!
//! Batches are written as the engine proves them final ([`QuerySession`]
//! pull loop → frame → flush); the full result is never materialized
//! server-side.

use crate::protocol::{
    write_server_frame, BatchFrame, ClientFrame, DoneFrame, ErrorCode, ServerFrame, WireTuple,
    PROTOCOL_VERSION,
};
use progxe_core::session::CancellationToken;
use progxe_obs::MetricsRegistry;
use progxe_query::exec::{Engine, QueryRunner};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection cap; connection `max_sessions + 1` is shed
    /// with [`ErrorCode::Overloaded`].
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { max_sessions: 64 }
    }
}

/// Monotone counters describing a server's lifetime, shared across threads
/// and readable at any point (including from tests and the load
/// generator). Mirrored as `server.*` counters in
/// [`MetricsRegistry::global`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    queries_ok: AtomicU64,
    queries_cancelled: AtomicU64,
    queries_failed: AtomicU64,
}

impl ServerMetrics {
    /// Connections admitted past admission control.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections shed with [`ErrorCode::Overloaded`].
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queries that ran to completion.
    pub fn queries_ok(&self) -> u64 {
        self.queries_ok.load(Ordering::Relaxed)
    }

    /// Queries whose run ended with `ExecStats::cancelled` — an explicit
    /// `Cancel` frame, a vanished client, or a dropped session.
    pub fn queries_cancelled(&self) -> u64 {
        self.queries_cancelled.load(Ordering::Relaxed)
    }

    /// Queries rejected at parse/plan time or failed during execution.
    pub fn queries_failed(&self) -> u64 {
        self.queries_failed.load(Ordering::Relaxed)
    }
}

/// Shared state every connection handler needs.
struct Shared {
    runner: QueryRunner,
    engine: Engine,
    metrics: Arc<ServerMetrics>,
    active: AtomicUsize,
    max_sessions: usize,
    /// Read halves of live connections, keyed by connection id, so
    /// [`ServerHandle::shutdown`] can unblock every watchdog.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// The ProgXe TCP server. See [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `addr` and starts the accept loop on a background thread.
    ///
    /// `runner` supplies the catalog; `engine` is shared by every session
    /// (clones share one `EngineRuntime`, so the worker pool is spawned
    /// once for the whole server — per-session parallelism comes from
    /// `ProgXeConfig::threads`). Attach a `Recorder` to the engine
    /// beforehand (`Engine::with_recorder`) to trace every connection's
    /// sessions through `crates/obs`.
    pub fn start(
        runner: QueryRunner,
        engine: Engine,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            runner,
            engine,
            metrics: Arc::new(ServerMetrics::default()),
            active: AtomicUsize::new(0),
            max_sessions: config.max_sessions.max(1),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let stopping = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let stopping = Arc::clone(&stopping);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("progxe-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &stopping, &handlers))
                .expect("spawn accept thread")
        };
        progxe_obs::log::info(&format!("progxe-server listening on {local_addr}"));
        Ok(ServerHandle {
            addr: local_addr,
            shared,
            stopping,
            accept: Some(accept),
            handlers,
        })
    }
}

/// Owner handle for a running server: address, metrics, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stopping: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's lifetime counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Live connections right now.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Stops accepting, severs every live connection (in-flight queries
    /// cancel via their tokens), and joins all server threads. Idempotent
    /// via `Drop`; returns once the server is fully quiesced.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stopping.store(true, Ordering::Release);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Sever live connections: each watchdog's read fails, fires the
        // in-flight session's token, and its handler unwinds cleanly.
        {
            let conns = self.shared.conns.lock().expect("conn registry poisoned");
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for h in handlers {
            let _ = h.join();
        }
        debug_assert_eq!(self.shared.active.load(Ordering::Acquire), 0);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    stopping: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if stopping.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Admission control: shed, never queue. `fetch_add` first so two
        // racing connections cannot both sneak under the cap.
        if shared.active.fetch_add(1, Ordering::AcqRel) >= shared.max_sessions {
            shared.active.fetch_sub(1, Ordering::AcqRel);
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            MetricsRegistry::global().incr("server.rejected", 1);
            let mut w = BufWriter::new(&stream);
            let _ = write_server_frame(
                &mut w,
                &ServerFrame::Error {
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "session cap reached ({} concurrent); retry later",
                        shared.max_sessions
                    ),
                },
            );
            let _ = w.flush();
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global().incr("server.accepted", 1);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("progxe-conn".into())
            .spawn(move || {
                let conn_id = conn_shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                handle_connection(stream, conn_id, &conn_shared);
                conn_shared
                    .conns
                    .lock()
                    .expect("conn registry poisoned")
                    .remove(&conn_id);
                conn_shared.active.fetch_sub(1, Ordering::AcqRel);
            });
        match handle {
            Ok(h) => {
                let mut list = handlers.lock().expect("handler list poisoned");
                // Reap finished handlers so a long-lived server does not
                // accumulate join handles.
                list.retain(|h| !h.is_finished());
                list.push(h);
            }
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}

/// Serves one connection: a watchdog thread owns the read half and
/// forwards `Query` frames over a channel; this thread runs queries and
/// owns the write half. The watchdog cancels the in-flight session on
/// `Cancel`, read error, or EOF — disconnect detection is just "the read
/// failed".
fn handle_connection(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    {
        let mut conns = shared.conns.lock().expect("conn registry poisoned");
        match read_half.try_clone() {
            Ok(registered) => {
                conns.insert(conn_id, registered);
            }
            Err(_) => return,
        }
    }
    let mut writer = BufWriter::new(stream);
    if write_server_frame(
        &mut writer,
        &ServerFrame::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .and_then(|()| writer.flush())
    .is_err()
    {
        return;
    }

    // The token of the query currently streaming, if any; the watchdog
    // takes it out to cancel.
    let current: Arc<Mutex<Option<CancellationToken>>> = Arc::new(Mutex::new(None));
    let (tx, rx) = mpsc::channel::<String>();
    let watchdog = {
        let current = Arc::clone(&current);
        std::thread::Builder::new()
            .name("progxe-conn-watchdog".into())
            .spawn(move || {
                let mut reader = BufReader::new(read_half);
                loop {
                    match crate::protocol::read_client_frame(&mut reader) {
                        Ok(ClientFrame::Query(sql)) => {
                            if tx.send(sql).is_err() {
                                return;
                            }
                        }
                        Ok(ClientFrame::Cancel) => {
                            if let Some(token) = current.lock().expect("token slot poisoned").take()
                            {
                                token.cancel();
                            }
                        }
                        Err(_) => {
                            // Disconnect (or protocol garbage): stop the
                            // in-flight query and end the connection.
                            if let Some(token) = current.lock().expect("token slot poisoned").take()
                            {
                                token.cancel();
                            }
                            return;
                        }
                    }
                }
            })
    };
    let Ok(watchdog) = watchdog else { return };

    // Queries run sequentially per connection; the channel closes when the
    // watchdog exits (client gone), ending the loop.
    while let Ok(sql) = rx.recv() {
        if run_query(&sql, &mut writer, shared, &current).is_err() {
            break; // write half is dead; the connection is over
        }
    }
    // Unblock the watchdog if it is still in read() (e.g. we exited on a
    // write error before the client closed).
    let _ = writer.get_ref().shutdown(Shutdown::Both);
    let _ = watchdog.join();
}

/// Runs one query, streaming batches as they are proven final. `Err` means
/// the socket write failed (client gone) — the session is dropped, which
/// fires its token. Query-level failures (parse, plan) are reported
/// in-band and return `Ok`.
fn run_query(
    sql: &str,
    writer: &mut BufWriter<TcpStream>,
    shared: &Arc<Shared>,
    current: &Arc<Mutex<Option<CancellationToken>>>,
) -> io::Result<()> {
    let started = Instant::now();
    MetricsRegistry::global().incr("server.queries", 1);
    let planned = match shared.runner.prepare(sql) {
        Ok(p) => p,
        Err(e) => {
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            write_server_frame(
                writer,
                &ServerFrame::Error {
                    code: ErrorCode::BadQuery,
                    message: e.to_string(),
                },
            )?;
            return writer.flush();
        }
    };
    let mut session = match shared.runner.session(&planned, &shared.engine) {
        Ok(s) => s,
        Err(e) => {
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            write_server_frame(
                writer,
                &ServerFrame::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            )?;
            return writer.flush();
        }
    };
    *current.lock().expect("token slot poisoned") = Some(session.cancel_token());
    write_server_frame(
        writer,
        &ServerFrame::Accepted {
            columns: planned.output_names.clone(),
        },
    )?;
    writer.flush()?;

    let mut first_result = true;
    let stream_result: io::Result<()> = loop {
        let Some(event) = session.next_batch() else {
            break Ok(());
        };
        if event.tuples.is_empty() {
            continue;
        }
        if first_result {
            first_result = false;
            MetricsRegistry::global().observe("server.first_result", started.elapsed());
        }
        let frame = ServerFrame::Batch(BatchFrame {
            progress: event.progress_estimate,
            proven_final: event.proven_final,
            tuples: event
                .tuples
                .iter()
                .map(|t| WireTuple {
                    r_idx: t.r_idx,
                    t_idx: t.t_idx,
                    values: t.values.clone(),
                })
                .collect(),
        });
        // Flush per batch: progressiveness is the product; batching frames
        // in the BufWriter would trade first-result latency for throughput
        // behind the client's back.
        if let Err(e) = write_server_frame(writer, &frame).and_then(|()| writer.flush()) {
            break Err(e);
        }
    };

    current.lock().expect("token slot poisoned").take();
    if let Err(e) = stream_result {
        // Client vanished mid-stream. Finish (not drop) the session so the
        // cancellation is accounted in `ExecStats` and our counters even
        // though nobody is listening anymore.
        session.cancel();
        let stats = session.finish();
        debug_assert!(stats.cancelled);
        shared
            .metrics
            .queries_cancelled
            .fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global().incr("server.queries_cancelled", 1);
        return Err(e);
    }
    let stats = session.finish();
    if stats.cancelled {
        shared
            .metrics
            .queries_cancelled
            .fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global().incr("server.queries_cancelled", 1);
    } else {
        shared.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
    }
    let done = ServerFrame::Done(DoneFrame {
        cancelled: stats.cancelled,
        results: stats.results_emitted,
        elapsed_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
    });
    write_server_frame(writer, &done)?;
    writer.flush()
}

/// Blocks until `metrics` reports at least `n` cancelled queries or the
/// timeout elapses; returns whether the threshold was reached. Test and
/// load-generator helper (the cancel path is asynchronous by design).
pub fn wait_for_cancelled(metrics: &ServerMetrics, n: u64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if metrics.queries_cancelled() >= n {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    metrics.queries_cancelled() >= n
}
