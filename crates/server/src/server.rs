//! The serving loop: accept, admit, stream, cancel, subscribe.
//!
//! One OS thread per connection plus a per-connection *watchdog* thread
//! that owns the read half of the socket. The watchdog is what makes
//! cancellation prompt: while the handler streams batches, the watchdog
//! sits in a blocking read, so a [`ClientFrame::Cancel`], an
//! [`ClientFrame::Unsubscribe`] — or the read error / EOF of a vanished
//! client — reaches the targeted session's [`CancellationToken`]
//! immediately, and pooled region workers stop at their next token check
//! instead of burning shared CPU for a client that will never see the
//! results.
//!
//! Cancellation is *sequenced*: the watchdog assigns every `Query` frame a
//! connection-scoped sequence number in wire order, and a `Cancel` resolves
//! against it under one lock. A Cancel that races ahead of the query's
//! session (the token not yet installed) parks in a pending set and fires
//! the moment the token exists; a Cancel whose target already finished is
//! a no-op. Without the sequence discipline, an early Cancel was silently
//! lost and a late one killed the *next* pipelined query.
//!
//! Subscriptions (protocol v2) are standing [`StreamingQuery`] sessions
//! held in a per-connection registry, keyed by the client's `sub_id`. The handler
//! thread — the connection's single writer — ingests `Push` frames and
//! multiplexes each subscription's proven-final batches onto the socket as
//! `Update` frames the moment regions resolve. One token per subscription:
//! `Unsubscribe` and disconnect both fire it, and the teardown is
//! accounted in [`ServerMetrics::queries_cancelled`].
//!
//! Admission control is strict shedding: past
//! [`ServerConfig::max_sessions`] concurrent connections, a new client
//! gets a typed [`ErrorCode::Overloaded`] frame and an immediate close.
//! The server never queues connections — unbounded queueing just converts
//! overload into latency nobody asked for.
//!
//! Batches are written as the engine proves them final
//! ([`progxe_core::session::QuerySession`] pull loop → frame → flush);
//! the full result is never materialized
//! server-side. Empty batches are forwarded too when they advance the
//! progress estimate, so a wire client's observed progress never goes
//! stale relative to the server's.

use crate::protocol::{
    write_server_frame, BatchFrame, ClientFrame, DoneFrame, ErrorCode, PushFrame, ServerFrame,
    WireTuple, PROTOCOL_VERSION,
};
use progxe_core::ingest::{IngestError, IngestPoll};
use progxe_core::session::{CancellationToken, ResultEvent};
use progxe_obs::MetricsRegistry;
use progxe_query::exec::{Engine, QueryError, QueryRunner, StreamingQuery};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection cap; connection `max_sessions + 1` is shed
    /// with [`ErrorCode::Overloaded`].
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { max_sessions: 64 }
    }
}

/// Monotone counters describing a server's lifetime, shared across threads
/// and readable at any point (including from tests and the load
/// generator). Mirrored as `server.*` counters in
/// [`MetricsRegistry::global`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    queries_ok: AtomicU64,
    queries_cancelled: AtomicU64,
    queries_failed: AtomicU64,
}

impl ServerMetrics {
    /// Connections admitted past admission control.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections shed with [`ErrorCode::Overloaded`].
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queries and subscriptions that ran to completion.
    pub fn queries_ok(&self) -> u64 {
        self.queries_ok.load(Ordering::Relaxed)
    }

    /// Queries and subscriptions whose run ended with
    /// `ExecStats::cancelled` — an explicit `Cancel`/`Unsubscribe` frame,
    /// a vanished client, or a dropped session.
    pub fn queries_cancelled(&self) -> u64 {
        self.queries_cancelled.load(Ordering::Relaxed)
    }

    /// Queries rejected at parse/plan time or failed during execution.
    pub fn queries_failed(&self) -> u64 {
        self.queries_failed.load(Ordering::Relaxed)
    }

    fn count_done(&self, cancelled: bool) {
        if cancelled {
            self.queries_cancelled.fetch_add(1, Ordering::Relaxed);
            MetricsRegistry::global().incr("server.queries_cancelled", 1);
        } else {
            self.queries_ok.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Shared state every connection handler needs.
struct Shared {
    runner: QueryRunner,
    engine: Engine,
    metrics: Arc<ServerMetrics>,
    active: AtomicUsize,
    max_sessions: usize,
    /// Read halves of live connections, keyed by connection id, so
    /// [`ServerHandle::shutdown`] can unblock every watchdog.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// The ProgXe TCP server. See [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `addr` and starts the accept loop on a background thread.
    ///
    /// `runner` supplies the catalog; `engine` is shared by every session
    /// (clones share one `EngineRuntime`, so the worker pool is spawned
    /// once for the whole server — per-session parallelism comes from
    /// `ProgXeConfig::threads`). Attach a `Recorder` to the engine
    /// beforehand (`Engine::with_recorder`) to trace every connection's
    /// sessions through `crates/obs`.
    pub fn start(
        runner: QueryRunner,
        engine: Engine,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            runner,
            engine,
            metrics: Arc::new(ServerMetrics::default()),
            active: AtomicUsize::new(0),
            max_sessions: config.max_sessions.max(1),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let stopping = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let stopping = Arc::clone(&stopping);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("progxe-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &stopping, &handlers))
                .expect("spawn accept thread")
        };
        progxe_obs::log::info(&format!("progxe-server listening on {local_addr}"));
        Ok(ServerHandle {
            addr: local_addr,
            shared,
            stopping,
            accept: Some(accept),
            handlers,
        })
    }
}

/// Owner handle for a running server: address, metrics, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stopping: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's lifetime counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Live connections right now.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Stops accepting, severs every live connection (in-flight queries
    /// and subscriptions cancel via their tokens), and joins all server
    /// threads. Idempotent via `Drop`; returns once the server is fully
    /// quiesced.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stopping.store(true, Ordering::Release);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Sever live connections: each watchdog's read fails, fires the
        // in-flight tokens, and its handler unwinds cleanly.
        {
            let conns = self.shared.conns.lock().expect("conn registry poisoned");
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for h in handlers {
            let _ = h.join();
        }
        debug_assert_eq!(self.shared.active.load(Ordering::Acquire), 0);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    stopping: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if stopping.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Admission control: shed, never queue. `fetch_add` first so two
        // racing connections cannot both sneak under the cap.
        if shared.active.fetch_add(1, Ordering::AcqRel) >= shared.max_sessions {
            shared.active.fetch_sub(1, Ordering::AcqRel);
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            MetricsRegistry::global().incr("server.rejected", 1);
            let mut w = BufWriter::new(&stream);
            let _ = write_server_frame(
                &mut w,
                &ServerFrame::Error {
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "session cap reached ({} concurrent); retry later",
                        shared.max_sessions
                    ),
                },
            );
            let _ = w.flush();
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global().incr("server.accepted", 1);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("progxe-conn".into())
            .spawn(move || {
                let conn_id = conn_shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                handle_connection(stream, conn_id, &conn_shared);
                conn_shared
                    .conns
                    .lock()
                    .expect("conn registry poisoned")
                    .remove(&conn_id);
                conn_shared.active.fetch_sub(1, Ordering::AcqRel);
            });
        match handle {
            Ok(h) => {
                let mut list = handlers.lock().expect("handler list poisoned");
                // Reap finished handlers so a long-lived server does not
                // accumulate join handles.
                list.retain(|h| !h.is_finished());
                list.push(h);
            }
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}

/// Cancellation bookkeeping shared between a connection's watchdog (which
/// resolves `Cancel` frames and disconnects) and its handler (which
/// installs and clears tokens). Everything lives under one mutex so a
/// Cancel and a token install can never interleave invisibly.
#[derive(Default)]
struct CancelState {
    /// Queries received so far, i.e. the next `Query` frame's sequence
    /// number. Assigned by the watchdog in wire order.
    next_seq: u64,
    /// Sequences fully finished (`done_up_to` = highest finished + 1,
    /// since queries run in order). Cancels below this are stale no-ops.
    done_up_to: u64,
    /// The query currently holding a session, if any.
    running: Option<(u64, CancellationToken)>,
    /// Cancels that arrived before their target's token was installed.
    pending: HashSet<u64>,
    /// Live subscription tokens, keyed by `sub_id`, so disconnect and
    /// `Unsubscribe` can fire them without waiting on the handler.
    subs: HashMap<u64, CancellationToken>,
    /// Whether the client echoed `Hello { version >= 2 }`. Until then the
    /// server must not emit v2 frame tags.
    v2: bool,
}

impl CancelState {
    /// Resolves a `Cancel` frame. `None` (v1 wire image) targets the most
    /// recently received query.
    fn cancel(&mut self, seq: Option<u64>) {
        let target = match seq {
            Some(s) => s,
            None if self.next_seq > 0 => self.next_seq - 1,
            None => return, // nothing ever queried: no-op
        };
        if target < self.done_up_to {
            return; // already finished: must NOT touch a later query
        }
        match &self.running {
            Some((running_seq, token)) if *running_seq == target => token.cancel(),
            _ => {
                // Not started yet (or the handler hasn't installed the
                // token): park the cancel; `install_token` fires it.
                self.pending.insert(target);
            }
        }
    }

    /// Fires every live token — the connection is gone.
    fn cancel_all(&mut self) {
        if let Some((_, token)) = &self.running {
            token.cancel();
        }
        for token in self.subs.values() {
            token.cancel();
        }
    }
}

/// Work items the watchdog forwards to the handler thread, in wire order.
enum Work {
    Query { seq: u64, sql: String },
    Subscribe { sub_id: u64, sql: String },
    Unsubscribe { sub_id: u64 },
    Push(PushFrame),
}

/// Serves one connection: a watchdog thread owns the read half and
/// forwards work over a channel; this thread runs queries, feeds
/// subscriptions, and owns the write half. The watchdog cancels targeted
/// sessions on `Cancel`/`Unsubscribe`, and everything on read error or
/// EOF — disconnect detection is just "the read failed".
fn handle_connection(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    {
        let mut conns = shared.conns.lock().expect("conn registry poisoned");
        match read_half.try_clone() {
            Ok(registered) => {
                conns.insert(conn_id, registered);
            }
            Err(_) => return,
        }
    }
    let mut writer = BufWriter::new(stream);
    if write_server_frame(
        &mut writer,
        &ServerFrame::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .and_then(|()| writer.flush())
    .is_err()
    {
        return;
    }

    let state: Arc<Mutex<CancelState>> = Arc::new(Mutex::new(CancelState::default()));
    let (tx, rx) = mpsc::channel::<Work>();
    let watchdog = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("progxe-conn-watchdog".into())
            .spawn(move || {
                let mut reader = BufReader::new(read_half);
                loop {
                    match crate::protocol::read_client_frame(&mut reader) {
                        Ok(ClientFrame::Query(sql)) => {
                            let seq = {
                                let mut st = state.lock().expect("cancel state poisoned");
                                let seq = st.next_seq;
                                st.next_seq += 1;
                                seq
                            };
                            if tx.send(Work::Query { seq, sql }).is_err() {
                                return;
                            }
                        }
                        Ok(ClientFrame::Cancel { seq }) => {
                            state.lock().expect("cancel state poisoned").cancel(seq);
                        }
                        Ok(ClientFrame::Hello { version }) => {
                            state.lock().expect("cancel state poisoned").v2 = version >= 2;
                        }
                        Ok(ClientFrame::Subscribe { sub_id, sql }) => {
                            if tx.send(Work::Subscribe { sub_id, sql }).is_err() {
                                return;
                            }
                        }
                        Ok(ClientFrame::Unsubscribe { sub_id }) => {
                            // Fire the token *now* for promptness (pooled
                            // workers stop mid-drain); the handler sends
                            // SubDone when it reaches this point in the
                            // work queue.
                            if let Some(token) = state
                                .lock()
                                .expect("cancel state poisoned")
                                .subs
                                .get(&sub_id)
                            {
                                token.cancel();
                            }
                            if tx.send(Work::Unsubscribe { sub_id }).is_err() {
                                return;
                            }
                        }
                        Ok(ClientFrame::Push(push)) => {
                            if tx.send(Work::Push(push)).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            // Disconnect (or protocol garbage): stop every
                            // in-flight session and end the connection.
                            state.lock().expect("cancel state poisoned").cancel_all();
                            return;
                        }
                    }
                }
            })
    };
    let Ok(watchdog) = watchdog else { return };

    // Work items run sequentially per connection; the channel closes when
    // the watchdog exits (client gone), ending the loop.
    let mut subs: HashMap<u64, SubEntry> = HashMap::new();
    while let Ok(work) = rx.recv() {
        let io = match work {
            Work::Query { seq, sql } => run_query(seq, &sql, &mut writer, shared, &state),
            Work::Subscribe { sub_id, sql } => {
                subscribe(sub_id, &sql, &mut subs, &mut writer, shared, &state)
            }
            Work::Unsubscribe { sub_id } => {
                unsubscribe(sub_id, &mut subs, &mut writer, shared, &state)
            }
            Work::Push(push) => handle_push(push, &mut subs, &mut writer, shared, &state),
        };
        if io.is_err() {
            break; // write half is dead; the connection is over
        }
    }
    // Tear down standing subscriptions: the client is gone (or the socket
    // died), so every remaining session counts as cancelled.
    for (sub_id, entry) in subs.drain() {
        state
            .lock()
            .expect("cancel state poisoned")
            .subs
            .remove(&sub_id);
        let mut query = entry.query;
        query.cancel();
        let stats = query.finish();
        debug_assert!(stats.cancelled);
        shared.metrics.count_done(stats.cancelled);
    }
    // Unblock the watchdog if it is still in read() (e.g. we exited on a
    // write error before the client closed).
    let _ = writer.get_ref().shutdown(Shutdown::Both);
    let _ = watchdog.join();
}

/// A standing subscription owned by the handler thread.
struct SubEntry {
    query: StreamingQuery,
    started: Instant,
}

/// Converts a session event into its wire image.
fn batch_frame(event: &ResultEvent) -> BatchFrame {
    BatchFrame {
        progress: event.progress_estimate,
        proven_final: event.proven_final,
        tuples: event
            .tuples
            .iter()
            .map(|t| WireTuple {
                r_idx: t.r_idx,
                t_idx: t.t_idx,
                values: t.values.clone(),
            })
            .collect(),
    }
}

/// Runs one query, streaming batches as they are proven final. `Err` means
/// the socket write failed (client gone) — the session is dropped, which
/// fires its token. Query-level failures (parse, plan) are reported
/// in-band and return `Ok`.
fn run_query(
    seq: u64,
    sql: &str,
    writer: &mut BufWriter<TcpStream>,
    shared: &Arc<Shared>,
    state: &Arc<Mutex<CancelState>>,
) -> io::Result<()> {
    let started = Instant::now();
    MetricsRegistry::global().incr("server.queries", 1);
    // However this query ends, its sequence is finished afterwards: clear
    // the running slot, retire the seq, and drop any cancel still aimed at
    // it (all under one lock, so a racing Cancel sees either a live token
    // or a finished query — never the gap in between).
    let finish_seq = |state: &Arc<Mutex<CancelState>>| {
        let mut st = state.lock().expect("cancel state poisoned");
        st.running = None;
        st.done_up_to = st.done_up_to.max(seq + 1);
        st.pending.remove(&seq);
    };
    let planned = match shared.runner.prepare(sql) {
        Ok(p) => p,
        Err(e) => {
            finish_seq(state);
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            write_server_frame(
                writer,
                &ServerFrame::Error {
                    code: ErrorCode::BadQuery,
                    message: e.to_string(),
                },
            )?;
            return writer.flush();
        }
    };
    let mut session = match shared.runner.session(&planned, &shared.engine) {
        Ok(s) => s,
        Err(e) => {
            finish_seq(state);
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            write_server_frame(
                writer,
                &ServerFrame::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            )?;
            return writer.flush();
        }
    };
    {
        // Install the token; a Cancel that raced ahead of us (landed after
        // the Query frame but before this point) is parked in `pending`
        // and must fire now, not be lost.
        let mut st = state.lock().expect("cancel state poisoned");
        let token = session.cancel_token();
        if st.pending.remove(&seq) {
            token.cancel();
        }
        st.running = Some((seq, token));
    }
    write_server_frame(
        writer,
        &ServerFrame::Accepted {
            columns: planned.output_names.clone(),
        },
    )?;
    writer.flush()?;

    let mut first_result = true;
    // Progress high-water actually sent; empty batches are forwarded only
    // when they move it, so progress never goes stale and never spams.
    let mut sent_progress = -1.0f64;
    let stream_result: io::Result<()> = loop {
        let Some(event) = session.next_batch() else {
            break Ok(());
        };
        if event.is_progress_only() && event.progress_estimate <= sent_progress {
            continue;
        }
        if first_result && !event.tuples.is_empty() {
            first_result = false;
            MetricsRegistry::global().observe("server.first_result", started.elapsed());
        }
        sent_progress = sent_progress.max(event.progress_estimate);
        let frame = ServerFrame::Batch(batch_frame(&event));
        // Flush per batch: progressiveness is the product; batching frames
        // in the BufWriter would trade first-result latency for throughput
        // behind the client's back.
        if let Err(e) = write_server_frame(writer, &frame).and_then(|()| writer.flush()) {
            break Err(e);
        }
    };

    if let Err(e) = stream_result {
        finish_seq(state);
        // Client vanished mid-stream. Finish (not drop) the session so the
        // cancellation is accounted in `ExecStats` and our counters even
        // though nobody is listening anymore.
        session.cancel();
        let stats = session.finish();
        debug_assert!(stats.cancelled);
        shared
            .metrics
            .queries_cancelled
            .fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global().incr("server.queries_cancelled", 1);
        return Err(e);
    }
    finish_seq(state);
    let stats = session.finish();
    shared.metrics.count_done(stats.cancelled);
    let done = ServerFrame::Done(DoneFrame {
        cancelled: stats.cancelled,
        results: stats.results_emitted,
        elapsed_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
    });
    write_server_frame(writer, &done)?;
    writer.flush()
}

/// Writes a frame only a v2 client understands — or, when the client never
/// echoed `Hello { version: 2 }`, a v1-safe `Error` instead. Keeps the "a
/// v1 client never sees an unknown tag" invariant in one place.
fn write_v2_or_reject(
    writer: &mut BufWriter<TcpStream>,
    state: &Arc<Mutex<CancelState>>,
    frame: &ServerFrame,
) -> io::Result<bool> {
    let v2 = state.lock().expect("cancel state poisoned").v2;
    if v2 {
        write_server_frame(writer, frame)?;
        writer.flush()?;
        return Ok(true);
    }
    write_server_frame(
        writer,
        &ServerFrame::Error {
            code: ErrorCode::BadQuery,
            message: "subscriptions require a protocol v2 Hello echo".into(),
        },
    )?;
    writer.flush()?;
    Ok(false)
}

/// Opens a standing streaming query under `sub_id`.
fn subscribe(
    sub_id: u64,
    sql: &str,
    subs: &mut HashMap<u64, SubEntry>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Arc<Shared>,
    state: &Arc<Mutex<CancelState>>,
) -> io::Result<()> {
    MetricsRegistry::global().incr("server.subscriptions", 1);
    if subs.contains_key(&sub_id) {
        return write_v2_or_reject(
            writer,
            state,
            &ServerFrame::SubError {
                sub_id,
                code: ErrorCode::BadQuery,
                message: format!("sub_id {sub_id} is already subscribed on this connection"),
            },
        )
        .map(|_| ());
    }
    let query = match shared.runner.ingest_session(sql, &shared.engine) {
        Ok(q) => q,
        Err(e) => {
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            return write_v2_or_reject(
                writer,
                state,
                &ServerFrame::SubError {
                    sub_id,
                    code: ErrorCode::BadQuery,
                    message: e.to_string(),
                },
            )
            .map(|_| ());
        }
    };
    let accepted = ServerFrame::SubAccepted {
        sub_id,
        columns: query.output_names().to_vec(),
    };
    if !write_v2_or_reject(writer, state, &accepted)? {
        // v1 connection: the session never becomes visible; drop it (the
        // DropCancel guard fires its token).
        shared
            .metrics
            .queries_failed
            .fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    state
        .lock()
        .expect("cancel state poisoned")
        .subs
        .insert(sub_id, query.cancel_token());
    subs.insert(
        sub_id,
        SubEntry {
            query,
            started: Instant::now(),
        },
    );
    Ok(())
}

/// Ends a subscription: cancel (idempotent — the watchdog already fired
/// the token), finish, account, `SubDone`. Unknown ids are ignored: the
/// subscription may have just completed on its own while the Unsubscribe
/// was in flight.
fn unsubscribe(
    sub_id: u64,
    subs: &mut HashMap<u64, SubEntry>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Arc<Shared>,
    state: &Arc<Mutex<CancelState>>,
) -> io::Result<()> {
    let Some(entry) = subs.remove(&sub_id) else {
        return Ok(());
    };
    state
        .lock()
        .expect("cancel state poisoned")
        .subs
        .remove(&sub_id);
    let mut query = entry.query;
    query.cancel();
    let stats = query.finish();
    shared.metrics.count_done(stats.cancelled);
    let done = ServerFrame::SubDone {
        sub_id,
        done: DoneFrame {
            cancelled: stats.cancelled,
            results: stats.results_emitted,
            elapsed_us: u64::try_from(entry.started.elapsed().as_micros()).unwrap_or(u64::MAX),
        },
    };
    write_v2_or_reject(writer, state, &done).map(|_| ())
}

/// Feeds one `Push` frame into its subscription and multiplexes every
/// batch it unlocks onto the socket. Ingest rejections are subscription-
/// scoped `SubError`s (the session survives — ingest errors are atomic);
/// a push racing an unsubscribe is dropped silently.
fn handle_push(
    push: PushFrame,
    subs: &mut HashMap<u64, SubEntry>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Arc<Shared>,
    state: &Arc<Mutex<CancelState>>,
) -> io::Result<()> {
    let sub_id = push.sub_id;
    let Some(entry) = subs.get_mut(&sub_id) else {
        return write_v2_or_reject(
            writer,
            state,
            &ServerFrame::SubError {
                sub_id,
                code: ErrorCode::BadQuery,
                message: format!("push for unknown sub_id {sub_id}"),
            },
        )
        .map(|_| ());
    };
    let ingest: Result<(), QueryError> = (|| {
        let rows: Vec<(&[f64], u32)> = push
            .rows
            .iter()
            .map(|r| (r.attrs.as_slice(), r.key))
            .collect();
        if !rows.is_empty() {
            entry.query.push(push.source, &rows)?;
        }
        if let Some(wm) = &push.watermark {
            entry.query.set_watermark(push.source, wm)?;
        }
        if push.close {
            entry.query.close(push.source);
        }
        Ok(())
    })();
    match ingest {
        Ok(()) => {}
        Err(QueryError::Ingest(IngestError::Cancelled)) => {
            // An Unsubscribe raced this push through the watchdog's eager
            // token fire; the SubDone is already queued behind us.
            return Ok(());
        }
        Err(e) => {
            return write_v2_or_reject(
                writer,
                state,
                &ServerFrame::SubError {
                    sub_id,
                    code: ErrorCode::BadQuery,
                    message: e.to_string(),
                },
            )
            .map(|_| ());
        }
    }

    // Drain everything the push unlocked. Every batch is forwarded
    // verbatim — progress-only events included — so the wire transcript
    // is bit-identical to an in-process session fed the same schedule.
    let completed = loop {
        match entry.query.poll() {
            IngestPoll::Batch(event) => {
                let frame = ServerFrame::Update {
                    sub_id,
                    batch: batch_frame(&event),
                };
                write_server_frame(writer, &frame)?;
                writer.flush()?;
            }
            IngestPoll::NeedInput => break false,
            IngestPoll::Complete => break true,
        }
    };
    if !completed {
        return Ok(());
    }
    let entry = subs.remove(&sub_id).expect("entry exists");
    state
        .lock()
        .expect("cancel state poisoned")
        .subs
        .remove(&sub_id);
    let stats = entry.query.finish();
    shared.metrics.count_done(stats.cancelled);
    let done = ServerFrame::SubDone {
        sub_id,
        done: DoneFrame {
            cancelled: stats.cancelled,
            results: stats.results_emitted,
            elapsed_us: u64::try_from(entry.started.elapsed().as_micros()).unwrap_or(u64::MAX),
        },
    };
    write_server_frame(writer, &done)?;
    writer.flush()
}

/// Blocks until `metrics` reports at least `n` cancelled queries or the
/// timeout elapses; returns whether the threshold was reached. Test and
/// load-generator helper (the cancel path is asynchronous by design).
pub fn wait_for_cancelled(metrics: &ServerMetrics, n: u64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if metrics.queries_cancelled() >= n {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    metrics.queries_cancelled() >= n
}
