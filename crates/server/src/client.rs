//! A small blocking client for the ProgXe wire protocol.
//!
//! Used by the integration tests and the bench load generator; also the
//! reference implementation for anyone speaking the protocol from another
//! language. One [`Client`] maps to one connection; one-shot queries run
//! sequentially and any number of subscriptions multiplex alongside them,
//! mirroring the server's per-connection model.
//!
//! [`Client::connect`] performs the v2 handshake (reads the server's
//! `Hello`, echoes the client's). [`Client::connect_v1`] skips the echo
//! and restricts itself to v1 frames — it exists so tests can prove a v1
//! client keeps working against a v2 server, and doubles as the reference
//! for v1-era peers.

use crate::protocol::{
    read_server_frame, write_client_frame, ClientFrame, DoneFrame, ErrorCode, PushFrame,
    ServerFrame, WireTuple, PROTOCOL_VERSION,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything a completed (or failed) query produced, client-side.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Output column names from the `Accepted` frame.
    pub columns: Vec<String>,
    /// All tuples received, in server emission order.
    pub tuples: Vec<WireTuple>,
    /// The `progress` of every batch frame received, in arrival order
    /// (including empty, progress-only batches).
    pub progress: Vec<f64>,
    /// The terminal `Done` frame, if the query ran (even cancelled runs
    /// get one). `None` when the server answered with an error instead.
    pub done: Option<DoneFrame>,
    /// The terminal `Error` frame, if any.
    pub error: Option<(ErrorCode, String)>,
    /// Time from sending the query to the first non-empty batch.
    pub first_result: Option<Duration>,
}

/// A connected protocol client. Dropping it closes the socket, which the
/// server treats as disconnect: any in-flight query or standing
/// subscription is cancelled.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Queries sent on this connection — the server assigns sequence
    /// numbers in the same order, so this mirrors its numbering.
    queries_sent: u64,
}

impl Client {
    /// Connects, waits for the server's `Hello`, checks the protocol
    /// version, and echoes a client `Hello` (the v2 capability echo that
    /// unlocks subscription frames). An `Error` frame in place of `Hello`
    /// (admission shed) is surfaced as
    /// [`io::ErrorKind::ConnectionRefused`] with the server's message.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let mut client = Self::connect_v1(addr)?;
        write_client_frame(
            &mut client.writer,
            &ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        client.writer.flush()?;
        Ok(client)
    }

    /// Connects as a protocol v1 client: no capability echo, so the server
    /// confines itself to v1 frames. Subscription methods must not be used
    /// on such a connection.
    pub fn connect_v1(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Self {
            reader,
            writer,
            queries_sent: 0,
        };
        match client.next_server_frame()? {
            // Any server version ≥ 1 works: the server only ever sends v2
            // tags after our explicit opt-in.
            ServerFrame::Hello { version } if version >= 1 => Ok(client),
            ServerFrame::Hello { version } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server speaks protocol v{version}, client v{PROTOCOL_VERSION}"),
            )),
            ServerFrame::Error { code, message } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server refused connection ({code:?}): {message}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Hello, got {other:?}"),
            )),
        }
    }

    /// Sends a `Query` frame without waiting for any response; returns the
    /// query's connection-scoped sequence number (usable with
    /// [`Client::cancel_seq`]). Pair with [`Client::next_server_frame`] to
    /// drive the stream by hand (as the cancellation tests do).
    pub fn send_query(&mut self, sql: &str) -> io::Result<u64> {
        write_client_frame(&mut self.writer, &ClientFrame::Query(sql.to_string()))?;
        self.writer.flush()?;
        let seq = self.queries_sent;
        self.queries_sent += 1;
        Ok(seq)
    }

    /// Sends a v1 `Cancel` frame targeting the most recently sent query.
    /// The server still terminates that query's stream with
    /// `Done { cancelled: true }`.
    pub fn cancel(&mut self) -> io::Result<()> {
        write_client_frame(&mut self.writer, &ClientFrame::Cancel { seq: None })?;
        self.writer.flush()
    }

    /// Sends a v2 `Cancel` targeting one specific query by the sequence
    /// number [`Client::send_query`] returned. Stale targets (the query
    /// already finished) are no-ops server-side — this can never kill a
    /// later query.
    pub fn cancel_seq(&mut self, seq: u64) -> io::Result<()> {
        write_client_frame(&mut self.writer, &ClientFrame::Cancel { seq: Some(seq) })?;
        self.writer.flush()
    }

    /// Opens a subscription (standing streaming query) under a caller-
    /// chosen, connection-scoped `sub_id`. The server answers with
    /// `SubAccepted` (then `Update`s as pushes arrive) or `SubError`.
    pub fn subscribe(&mut self, sub_id: u64, sql: &str) -> io::Result<()> {
        write_client_frame(
            &mut self.writer,
            &ClientFrame::Subscribe {
                sub_id,
                sql: sql.to_string(),
            },
        )?;
        self.writer.flush()
    }

    /// Ends a subscription; the server answers with `SubDone`
    /// (`cancelled: true` unless it had already completed).
    pub fn unsubscribe(&mut self, sub_id: u64) -> io::Result<()> {
        write_client_frame(&mut self.writer, &ClientFrame::Unsubscribe { sub_id })?;
        self.writer.flush()
    }

    /// Feeds rows / a watermark / a close into a subscription's source.
    pub fn push(&mut self, frame: &PushFrame) -> io::Result<()> {
        write_client_frame(&mut self.writer, &ClientFrame::Push(frame.clone()))?;
        self.writer.flush()
    }

    /// Reads the next frame from the server (blocking).
    pub fn next_server_frame(&mut self) -> io::Result<ServerFrame> {
        read_server_frame(&mut self.reader)
    }

    /// Sets (or clears) the socket read timeout used by
    /// [`Client::next_server_frame`]; a timed-out read surfaces as
    /// `WouldBlock`/`TimedOut`. Note a timeout can strike mid-frame and
    /// lose the bytes already consumed — prefer [`Client::into_split`]
    /// with a blocking reader thread when multiplexing; timeouts suit
    /// liveness checks where the connection is abandoned on expiry.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Splits the connection into its two halves so one thread can keep
    /// pushing while another drains `Update`s — the multiplexed shape a
    /// real subscriber (and the bench load generator) uses. The halves
    /// share the socket; dropping both closes it.
    pub fn into_split(self) -> (ClientWriter, ClientReader) {
        (
            ClientWriter {
                writer: self.writer,
            },
            ClientReader {
                reader: self.reader,
            },
        )
    }

    /// Runs one query to completion: sends it, collects every batch, and
    /// returns when the terminal `Done` or `Error` frame arrives.
    /// Subscription frames for other streams arriving mid-run are an
    /// error here — drive the connection by hand when multiplexing.
    pub fn run_query(&mut self, sql: &str) -> io::Result<RunOutcome> {
        let started = Instant::now();
        self.send_query(sql)?;
        let mut outcome = RunOutcome::default();
        loop {
            match self.next_server_frame()? {
                ServerFrame::Accepted { columns } => outcome.columns = columns,
                ServerFrame::Batch(batch) => {
                    if outcome.first_result.is_none() && !batch.tuples.is_empty() {
                        outcome.first_result = Some(started.elapsed());
                    }
                    outcome.progress.push(batch.progress);
                    outcome.tuples.extend(batch.tuples);
                }
                ServerFrame::Done(done) => {
                    outcome.done = Some(done);
                    return Ok(outcome);
                }
                ServerFrame::Error { code, message } => {
                    outcome.error = Some((code, message));
                    return Ok(outcome);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame during one-shot query: {other:?}"),
                    ));
                }
            }
        }
    }
}

/// The sending half of a split [`Client`] (see [`Client::into_split`]).
#[derive(Debug)]
pub struct ClientWriter {
    writer: BufWriter<TcpStream>,
}

impl ClientWriter {
    /// Writes one frame and flushes it onto the wire.
    pub fn send(&mut self, frame: &ClientFrame) -> io::Result<()> {
        write_client_frame(&mut self.writer, frame)?;
        self.writer.flush()
    }
}

/// The receiving half of a split [`Client`] (see [`Client::into_split`]).
#[derive(Debug)]
pub struct ClientReader {
    reader: BufReader<TcpStream>,
}

impl ClientReader {
    /// Reads the next frame from the server (blocking).
    pub fn next_server_frame(&mut self) -> io::Result<ServerFrame> {
        read_server_frame(&mut self.reader)
    }
}
