//! A small blocking client for the ProgXe wire protocol.
//!
//! Used by the integration tests and the bench load generator; also the
//! reference implementation for anyone speaking the protocol from another
//! language. One [`Client`] maps to one connection and runs queries
//! sequentially, mirroring the server's per-connection model.

use crate::protocol::{
    read_server_frame, write_client_frame, ClientFrame, DoneFrame, ErrorCode, ServerFrame,
    WireTuple, PROTOCOL_VERSION,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything a completed (or failed) query produced, client-side.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Output column names from the `Accepted` frame.
    pub columns: Vec<String>,
    /// All tuples received, in server emission order.
    pub tuples: Vec<WireTuple>,
    /// The terminal `Done` frame, if the query ran (even cancelled runs
    /// get one). `None` when the server answered with an error instead.
    pub done: Option<DoneFrame>,
    /// The terminal `Error` frame, if any.
    pub error: Option<(ErrorCode, String)>,
    /// Time from sending the query to the first non-empty batch.
    pub first_result: Option<Duration>,
}

/// A connected protocol client. Dropping it closes the socket, which the
/// server treats as disconnect: any in-flight query is cancelled.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects, waits for the server's `Hello`, and checks the protocol
    /// version. An `Error` frame in place of `Hello` (admission shed) is
    /// surfaced as [`io::ErrorKind::ConnectionRefused`] with the server's
    /// message.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Self { reader, writer };
        match client.next_server_frame()? {
            ServerFrame::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            ServerFrame::Hello { version } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server speaks protocol v{version}, client v{PROTOCOL_VERSION}"),
            )),
            ServerFrame::Error { code, message } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server refused connection ({code:?}): {message}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Hello, got {other:?}"),
            )),
        }
    }

    /// Sends a `Query` frame without waiting for any response. Pair with
    /// [`Client::next_server_frame`] to drive the stream by hand (as the
    /// cancellation tests do).
    pub fn send_query(&mut self, sql: &str) -> io::Result<()> {
        write_client_frame(&mut self.writer, &ClientFrame::Query(sql.to_string()))?;
        self.writer.flush()
    }

    /// Sends a `Cancel` frame for the in-flight query. The server still
    /// terminates the stream with `Done { cancelled: true }`.
    pub fn cancel(&mut self) -> io::Result<()> {
        write_client_frame(&mut self.writer, &ClientFrame::Cancel)?;
        self.writer.flush()
    }

    /// Reads the next frame from the server (blocking).
    pub fn next_server_frame(&mut self) -> io::Result<ServerFrame> {
        read_server_frame(&mut self.reader)
    }

    /// Runs one query to completion: sends it, collects every batch, and
    /// returns when the terminal `Done` or `Error` frame arrives.
    pub fn run_query(&mut self, sql: &str) -> io::Result<RunOutcome> {
        let started = Instant::now();
        self.send_query(sql)?;
        let mut outcome = RunOutcome::default();
        loop {
            match self.next_server_frame()? {
                ServerFrame::Accepted { columns } => outcome.columns = columns,
                ServerFrame::Batch(batch) => {
                    if outcome.first_result.is_none() && !batch.tuples.is_empty() {
                        outcome.first_result = Some(started.elapsed());
                    }
                    outcome.tuples.extend(batch.tuples);
                }
                ServerFrame::Done(done) => {
                    outcome.done = Some(done);
                    return Ok(outcome);
                }
                ServerFrame::Error { code, message } => {
                    outcome.error = Some((code, message));
                    return Ok(outcome);
                }
                ServerFrame::Hello { version } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected mid-stream Hello (v{version})"),
                    ));
                }
            }
        }
    }
}
