//! Synthetic catalog for serving demos, tests, and the load generator.
//!
//! Builds a two-table catalog from the Börzsönyi-style generator in
//! `crates/datagen` (the same workloads the paper's experiments use), so
//! `progxe-serve` can come up with realistic data without any files on
//! disk, and the bench load generator can dial query cost through row
//! count, dimensionality, and distribution.

use crate::protocol::{PushFrame, PushRow};
use progxe_core::ingest::SourceId;
use progxe_core::source::SourceData;
use progxe_datagen::arrival::ArrivalSpec;
use progxe_datagen::{Distribution, Relation, WorkloadSpec};
use progxe_query::{Catalog, TableSchema};

/// Attribute column names for a `dims`-dimensional table: `a0 … a{dims-1}`.
fn columns(dims: usize) -> Vec<String> {
    (0..dims).map(|d| format!("a{d}")).collect()
}

/// Builds a catalog with tables `R` and `T` (`rows` rows each, `dims`
/// attribute columns `a0…`, join key column `k`) from an anti-correlated
/// workload — the paper's hard case, where skylines are large and region
/// work is plentiful.
pub fn catalog(rows: usize, dims: usize, seed: u64) -> Catalog {
    catalog_with(rows, dims, seed, Distribution::AntiCorrelated)
}

/// [`catalog`] with an explicit attribute distribution.
pub fn catalog_with(rows: usize, dims: usize, seed: u64, dist: Distribution) -> Catalog {
    let workload = WorkloadSpec::new(rows, dims, dist, 0.5)
        .with_seed(seed)
        .generate();
    let mut cat = Catalog::new();
    for (name, rel) in [("R", &workload.r), ("T", &workload.t)] {
        let rows: Vec<(&[f64], u32)> = (0..rel.len())
            .map(|i| (rel.attrs_of(i), rel.join_key_of(i)))
            .collect();
        cat.register(
            TableSchema::new(name, columns(dims), "k"),
            SourceData::from_rows(dims, &rows),
        );
    }
    cat
}

/// [`catalog`] plus streaming registrations of the same two table names,
/// so one server answers both one-shot queries (over the materialized
/// rows) and subscriptions (over rows pushed on the wire). The declared
/// streaming bounds are the workload generator's value range.
pub fn streaming_catalog(rows: usize, dims: usize, seed: u64) -> Catalog {
    let mut cat = catalog(rows, dims, seed);
    let (lo, hi) =
        WorkloadSpec::new(rows.max(1), dims, Distribution::AntiCorrelated, 0.5).value_range;
    for name in ["R", "T"] {
        cat.register_streaming(
            TableSchema::new(name, columns(dims), "k"),
            vec![lo; dims],
            vec![hi; dims],
        );
    }
    cat
}

/// A deterministic arrival feed for one subscription: attribute-sorted
/// batches of `batch` rows per source with tightest-sound watermarks
/// after every batch (see `progxe_datagen::arrival`), interleaved
/// R/T/R/T…, each source closed on its last frame. The rows are a fresh
/// anti-correlated workload — same generator family as [`catalog`], so
/// region work is plentiful and updates flow long before the close.
pub fn arrival_feed(
    sub_id: u64,
    rows: usize,
    dims: usize,
    seed: u64,
    batch: usize,
) -> Vec<PushFrame> {
    let workload = WorkloadSpec::new(rows, dims, Distribution::AntiCorrelated, 0.5)
        .with_seed(seed)
        .generate();
    let spec = ArrivalSpec::attr_sorted(batch);
    let sources: [(SourceId, &Relation); 2] =
        [(SourceId::R, &workload.r), (SourceId::T, &workload.t)];
    let schedules: Vec<_> = sources.iter().map(|(_, rel)| spec.schedule(rel)).collect();
    let mut frames = Vec::new();
    let rounds = schedules
        .iter()
        .map(|s| s.batches.len().max(1))
        .max()
        .unwrap_or(1);
    for i in 0..rounds {
        for ((source, rel), sched) in sources.iter().zip(&schedules) {
            let last = i + 1 >= sched.batches.len().max(1);
            let Some(b) = sched.batches.get(i) else {
                // Empty schedule (zero rows): still close the source once.
                if i == 0 {
                    frames.push(PushFrame {
                        sub_id,
                        source: *source,
                        rows: Vec::new(),
                        watermark: None,
                        close: true,
                    });
                }
                continue;
            };
            frames.push(PushFrame {
                sub_id,
                source: *source,
                rows: b
                    .rows
                    .iter()
                    .map(|&r| PushRow {
                        attrs: rel.attrs_of(r as usize).to_vec(),
                        key: rel.join_key_of(r as usize),
                    })
                    .collect(),
                watermark: b.watermark.clone(),
                close: last,
            });
        }
    }
    frames
}

/// The canonical serving query over [`catalog`]: joins `R` and `T` on `k`
/// and prefers the sum of each attribute pair to be lowest, mirroring the
/// paper's Q1 shape at arbitrary dimensionality.
pub fn query_sql(dims: usize) -> String {
    let selects: Vec<String> = (0..dims)
        .map(|d| format!("(R.a{d} + T.a{d}) AS c{d}"))
        .collect();
    let prefs: Vec<String> = (0..dims).map(|d| format!("LOWEST(c{d})")).collect();
    format!(
        "SELECT R.id, T.id, {} FROM R R, T T WHERE R.k = T.k PREFERRING {}",
        selects.join(", "),
        prefs.join(" AND ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use progxe_query::{Engine, QueryRunner};

    #[test]
    fn synthetic_catalog_answers_its_own_query() {
        let runner = QueryRunner::new(catalog(200, 2, 7));
        let out = runner
            .run_collect(&query_sql(2), &Engine::progxe())
            .expect("synthetic query runs");
        assert!(
            !out.results.is_empty(),
            "a 200-row anti-correlated join must produce results"
        );
        assert_eq!(out.output_names, vec!["c0", "c1"]);
    }

    #[test]
    fn arrival_feed_covers_every_row_and_closes_both_sources() {
        let feed = arrival_feed(1, 120, 2, 9, 16);
        let mut per_source = [0usize, 0usize];
        let mut closes = [0usize, 0usize];
        for frame in &feed {
            let slot = match frame.source {
                SourceId::R => 0,
                SourceId::T => 1,
            };
            per_source[slot] += frame.rows.len();
            closes[slot] += usize::from(frame.close);
            for row in &frame.rows {
                assert_eq!(row.attrs.len(), 2);
            }
        }
        assert_eq!(per_source, [120, 120]);
        assert_eq!(closes, [1, 1], "each source closes exactly once");
        assert_eq!(feed, arrival_feed(1, 120, 2, 9, 16), "deterministic");
        assert_ne!(feed, arrival_feed(1, 120, 2, 10, 16));
    }

    #[test]
    fn same_seed_is_deterministic_and_seeds_differ() {
        let a = QueryRunner::new(catalog(100, 2, 1))
            .run_collect(&query_sql(2), &Engine::progxe())
            .unwrap();
        let b = QueryRunner::new(catalog(100, 2, 1))
            .run_collect(&query_sql(2), &Engine::progxe())
            .unwrap();
        let c = QueryRunner::new(catalog(100, 2, 2))
            .run_collect(&query_sql(2), &Engine::progxe())
            .unwrap();
        assert_eq!(a.results, b.results, "same seed, same results");
        assert_ne!(
            a.results, c.results,
            "different seed should perturb results"
        );
    }
}
