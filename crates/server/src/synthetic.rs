//! Synthetic catalog for serving demos, tests, and the load generator.
//!
//! Builds a two-table catalog from the Börzsönyi-style generator in
//! `crates/datagen` (the same workloads the paper's experiments use), so
//! `progxe-serve` can come up with realistic data without any files on
//! disk, and the bench load generator can dial query cost through row
//! count, dimensionality, and distribution.

use progxe_core::source::SourceData;
use progxe_datagen::{Distribution, WorkloadSpec};
use progxe_query::{Catalog, TableSchema};

/// Attribute column names for a `dims`-dimensional table: `a0 … a{dims-1}`.
fn columns(dims: usize) -> Vec<String> {
    (0..dims).map(|d| format!("a{d}")).collect()
}

/// Builds a catalog with tables `R` and `T` (`rows` rows each, `dims`
/// attribute columns `a0…`, join key column `k`) from an anti-correlated
/// workload — the paper's hard case, where skylines are large and region
/// work is plentiful.
pub fn catalog(rows: usize, dims: usize, seed: u64) -> Catalog {
    catalog_with(rows, dims, seed, Distribution::AntiCorrelated)
}

/// [`catalog`] with an explicit attribute distribution.
pub fn catalog_with(rows: usize, dims: usize, seed: u64, dist: Distribution) -> Catalog {
    let workload = WorkloadSpec::new(rows, dims, dist, 0.5)
        .with_seed(seed)
        .generate();
    let mut cat = Catalog::new();
    for (name, rel) in [("R", &workload.r), ("T", &workload.t)] {
        let rows: Vec<(&[f64], u32)> = (0..rel.len())
            .map(|i| (rel.attrs_of(i), rel.join_key_of(i)))
            .collect();
        cat.register(
            TableSchema::new(name, columns(dims), "k"),
            SourceData::from_rows(dims, &rows),
        );
    }
    cat
}

/// The canonical serving query over [`catalog`]: joins `R` and `T` on `k`
/// and prefers the sum of each attribute pair to be lowest, mirroring the
/// paper's Q1 shape at arbitrary dimensionality.
pub fn query_sql(dims: usize) -> String {
    let selects: Vec<String> = (0..dims)
        .map(|d| format!("(R.a{d} + T.a{d}) AS c{d}"))
        .collect();
    let prefs: Vec<String> = (0..dims).map(|d| format!("LOWEST(c{d})")).collect();
    format!(
        "SELECT R.id, T.id, {} FROM R R, T T WHERE R.k = T.k PREFERRING {}",
        selects.join(", "),
        prefs.join(" AND ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use progxe_query::{Engine, QueryRunner};

    #[test]
    fn synthetic_catalog_answers_its_own_query() {
        let runner = QueryRunner::new(catalog(200, 2, 7));
        let out = runner
            .run_collect(&query_sql(2), &Engine::progxe())
            .expect("synthetic query runs");
        assert!(
            !out.results.is_empty(),
            "a 200-row anti-correlated join must produce results"
        );
        assert_eq!(out.output_names, vec!["c0", "c1"]);
    }

    #[test]
    fn same_seed_is_deterministic_and_seeds_differ() {
        let a = QueryRunner::new(catalog(100, 2, 1))
            .run_collect(&query_sql(2), &Engine::progxe())
            .unwrap();
        let b = QueryRunner::new(catalog(100, 2, 1))
            .run_collect(&query_sql(2), &Engine::progxe())
            .unwrap();
        let c = QueryRunner::new(catalog(100, 2, 2))
            .run_collect(&query_sql(2), &Engine::progxe())
            .unwrap();
        assert_eq!(a.results, b.results, "same seed, same results");
        assert_ne!(
            a.results, c.results,
            "different seed should perturb results"
        );
    }
}
