//! `progxe-serve`: a standalone ProgXe server over a synthetic catalog.
//!
//! Environment knobs (all optional, parsed via `progxe_obs::env` — bad
//! values warn and fall back to the default):
//!
//! * `PROGXE_SERVER_ADDR` — listen address (default `127.0.0.1:7878`).
//! * `PROGXE_SERVER_MAX_SESSIONS` — concurrent-connection cap (default 64).
//! * `PROGXE_SERVER_ROWS` — rows per synthetic table (default 20000).
//! * `PROGXE_SERVER_DIMS` — attribute dimensions (default 3).
//! * `PROGXE_SERVER_SEED` — workload seed (default 42).
//! * `PROGXE_THREADS` — engine worker threads (see `ProgXeConfig::from_env`).

use progxe_core::config::ProgXeConfig;
use progxe_query::{Engine, QueryRunner};
use progxe_server::server::{Server, ServerConfig};

fn main() {
    let addr = match progxe_obs::env::raw("PROGXE_SERVER_ADDR") {
        progxe_obs::env::EnvValue::Set(v) => v,
        _ => "127.0.0.1:7878".to_string(),
    };
    let max_sessions = progxe_obs::env::parse_usize_at_least("PROGXE_SERVER_MAX_SESSIONS", 64, 1);
    let rows = progxe_obs::env::parse_usize_at_least("PROGXE_SERVER_ROWS", 20_000, 1);
    let dims = progxe_obs::env::parse_usize_at_least("PROGXE_SERVER_DIMS", 3, 2);
    let seed = progxe_obs::env::parse_or("PROGXE_SERVER_SEED", 42u64, "a u64 seed", |v| {
        v.parse().ok()
    });

    let config = ProgXeConfig::from_env();
    eprintln!(
        "progxe-serve: {rows} rows x {dims} dims (seed {seed}), \
         {} engine threads, {max_sessions} max sessions",
        config.threads.get()
    );
    // The streaming catalog registers `R`/`T` twice: materialized rows for
    // one-shot queries, streaming declarations for v2 subscriptions — so
    // one process demos both the request/response and the standing shape.
    let runner = QueryRunner::new(progxe_server::synthetic::streaming_catalog(
        rows, dims, seed,
    ));
    let engine = Engine::progxe_with(config);
    eprintln!(
        "example query: {}",
        progxe_server::synthetic::query_sql(dims)
    );

    let handle = match Server::start(runner, engine, ServerConfig { max_sessions }, addr.as_str()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("progxe-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("progxe-serve: listening on {}", handle.addr());

    // Serve until killed. The handle's Drop would shut the server down, so
    // park this thread forever instead of letting main return.
    loop {
        std::thread::park();
    }
}
