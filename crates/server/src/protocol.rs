//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every frame is `tag (1 byte) · payload length (u32, big-endian) ·
//! payload`. Multi-byte integers and the IEEE-754 bit patterns of floats
//! are big-endian throughout. The protocol is deliberately minimal — text
//! query in, framed progressive result batches out — because the hard part
//! of serving progressive queries is lifecycle (cancellation, admission,
//! no-buffering streaming), not serialization.
//!
//! # Frame table
//!
//! | Tag    | Frame                        | Since | Direction |
//! |--------|------------------------------|-------|-----------|
//! | `0x01` | [`ClientFrame::Query`]       | v1    | c → s     |
//! | `0x02` | [`ClientFrame::Cancel`]      | v1¹   | c → s     |
//! | `0x03` | [`ClientFrame::Hello`]       | v2    | c → s     |
//! | `0x04` | [`ClientFrame::Subscribe`]   | v2    | c → s     |
//! | `0x05` | [`ClientFrame::Unsubscribe`] | v2    | c → s     |
//! | `0x06` | [`ClientFrame::Push`]        | v2    | c → s     |
//! | `0x81` | [`ServerFrame::Hello`]       | v1    | s → c     |
//! | `0x82` | [`ServerFrame::Accepted`]    | v1    | s → c     |
//! | `0x83` | [`ServerFrame::Batch`]       | v1    | s → c     |
//! | `0x84` | [`ServerFrame::Done`]        | v1    | s → c     |
//! | `0x85` | [`ServerFrame::Error`]       | v1    | s → c     |
//! | `0x86` | [`ServerFrame::SubAccepted`] | v2    | s → c     |
//! | `0x87` | [`ServerFrame::Update`]      | v2    | s → c     |
//! | `0x88` | [`ServerFrame::SubDone`]     | v2    | s → c     |
//! | `0x89` | [`ServerFrame::SubError`]    | v2    | s → c     |
//!
//! ¹ `Cancel` exists since v1 (empty payload: cancel the most recent
//! query); v2 adds an optional 8-byte query sequence number to target a
//! specific pipelined query.
//!
//! # Version negotiation
//!
//! The server's first frame is [`ServerFrame::Hello`] announcing
//! [`PROTOCOL_VERSION`]. A v1 client just starts sending `Query` frames; a
//! v2 client first *echoes* a [`ClientFrame::Hello`] carrying the version
//! it speaks. The server never sends a v2 tag until it has seen a Hello
//! echo with `version >= 2`, so a v1 client is never faced with an unknown
//! tag (which is, by design, a typed decode error). v2 client frames sent
//! before the echo are answered with a v1-safe [`ServerFrame::Error`]
//! (`BadQuery`) and otherwise ignored.
//!
//! # Subscription lifecycle
//!
//! A subscription is a *standing* streaming query (see
//! `progxe_query::exec::StreamingQuery`): the client supplies the rows,
//! the server pushes proven-final updates the moment regions resolve.
//!
//! ```text
//! client                                server
//!   │  Subscribe { sub_id, sql }          │
//!   │ ────────────────────────────────▶   │  plan + open ingest session
//!   │   ◀──────────────────────────────── │  SubAccepted { sub_id, columns }
//!   │  Push { sub_id, rows, watermark? }  │     (or SubError { sub_id, .. })
//!   │ ────────────────────────────────▶   │
//!   │   ◀──────────────────────────────── │  Update { sub_id, batch }  (0..n)
//!   │  Push { sub_id, rows, close }       │
//!   │ ────────────────────────────────▶   │
//!   │   ◀──────────────────────────────── │  Update { sub_id, batch }  (0..n)
//!   │   ◀──────────────────────────────── │  SubDone { sub_id, stats }
//! ```
//!
//! The terminal `SubDone` arrives when both sources are closed and every
//! region resolved, when the client sends
//! [`ClientFrame::Unsubscribe`] (`cancelled: true`), or when the query is
//! torn down with the connection. `sub_id` is chosen by the client and
//! scoped to the connection; reusing a live id is an error, reusing a
//! finished one is fine. One-shot queries and subscriptions multiplex
//! freely on one connection — every server frame names its stream.

use progxe_core::ingest::SourceId;
use std::io::{self, Read, Write};

/// Protocol version announced in [`ServerFrame::Hello`] and echoed by v2
/// clients in [`ClientFrame::Hello`].
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame payload; anything larger is a protocol error.
/// Generous (a batch of ~1M five-value tuples fits), but bounds what a
/// malformed or hostile peer can make us allocate.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const TAG_QUERY: u8 = 0x01;
const TAG_CANCEL: u8 = 0x02;
const TAG_CLIENT_HELLO: u8 = 0x03;
const TAG_SUBSCRIBE: u8 = 0x04;
const TAG_UNSUBSCRIBE: u8 = 0x05;
const TAG_PUSH: u8 = 0x06;
const TAG_HELLO: u8 = 0x81;
const TAG_ACCEPTED: u8 = 0x82;
const TAG_BATCH: u8 = 0x83;
const TAG_DONE: u8 = 0x84;
const TAG_ERROR: u8 = 0x85;
const TAG_SUB_ACCEPTED: u8 = 0x86;
const TAG_UPDATE: u8 = 0x87;
const TAG_SUB_DONE: u8 = 0x88;
const TAG_SUB_ERROR: u8 = 0x89;

const PUSH_FLAG_WATERMARK: u8 = 0b0000_0001;
const PUSH_FLAG_CLOSE: u8 = 0b0000_0010;

/// Typed error codes carried by [`ServerFrame::Error`] and
/// [`ServerFrame::SubError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control shed this connection: the server is at its
    /// concurrent-session cap. Retry later; the server never queues.
    Overloaded = 1,
    /// The query failed to parse or plan, or a subscription frame was
    /// invalid (unknown `sub_id`, duplicate `sub_id`, rejected rows,
    /// v2 frame before the Hello echo). The connection stays usable.
    BadQuery = 2,
    /// The engine failed during execution.
    Internal = 3,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Overloaded),
            2 => Some(ErrorCode::BadQuery),
            3 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// One result tuple on the wire: the two source row ids plus the mapped
/// output values.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple {
    /// Row id in the R source (the caller's original table).
    pub r_idx: u32,
    /// Row id in the T source.
    pub t_idx: u32,
    /// Mapped output values, aligned with the `Accepted` column names.
    pub values: Vec<f64>,
}

/// One progressive result batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFrame {
    /// Monotone completion estimate in `[0, 1]`.
    pub progress: f64,
    /// Whether every tuple is guaranteed final (true for ProgXe).
    pub proven_final: bool,
    /// The batch's tuples, in emission order. May be empty: an empty batch
    /// carries a progress advance.
    pub tuples: Vec<WireTuple>,
}

/// Terminal frame of a query: summary statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneFrame {
    /// Whether the run was cancelled before completion.
    pub cancelled: bool,
    /// Results emitted over the query's lifetime.
    pub results: u64,
    /// Server-side wall time of the run, microseconds.
    pub elapsed_us: u64,
}

/// One row pushed into a subscription: pre-filter attribute values plus
/// the join key.
#[derive(Debug, Clone, PartialEq)]
pub struct PushRow {
    /// Attribute values, matching the streaming table's declared arity.
    pub attrs: Vec<f64>,
    /// Join key.
    pub key: u32,
}

/// A [`ClientFrame::Push`]: rows (and/or a watermark, and/or a close) for
/// one source of one subscription.
#[derive(Debug, Clone, PartialEq)]
pub struct PushFrame {
    /// The subscription addressed.
    pub sub_id: u64,
    /// Which streamed source the rows belong to.
    pub source: SourceId,
    /// Rows to ingest, in arrival order (row ids are assigned
    /// server-side as arrival positions). May be empty.
    pub rows: Vec<PushRow>,
    /// Optional watermark declared *after* the rows: every future row of
    /// `source` is ≥ it per dimension.
    pub watermark: Option<Vec<f64>>,
    /// Whether `source` is complete after this frame.
    pub close: bool,
}

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Run a `PREFERRING` query (UTF-8 SQL text).
    Query(String),
    /// Cancel a query. `seq: None` (the v1 empty payload) targets the most
    /// recently sent query; `Some(n)` targets the connection's `n`-th
    /// query (0-based, in send order). Stale or unmatched targets are
    /// no-ops — a Cancel can never kill a *different* query.
    Cancel {
        /// Connection-scoped query sequence number to cancel.
        seq: Option<u64>,
    },
    /// Capability echo: the client speaks `version`. Must precede any
    /// other v2 frame; a server never sends v2 tags without it.
    Hello {
        /// The client's protocol version.
        version: u32,
    },
    /// Open a standing streaming query under a client-chosen, connection-
    /// scoped id.
    Subscribe {
        /// Client-chosen subscription id.
        sub_id: u64,
        /// The `PREFERRING` query over streaming-registered tables.
        sql: String,
    },
    /// Tear a subscription down; the server answers with
    /// [`ServerFrame::SubDone`] (`cancelled: true` unless it had already
    /// completed). Unknown ids are ignored (the subscription may have
    /// just completed on its own).
    Unsubscribe {
        /// The subscription to end.
        sub_id: u64,
    },
    /// Feed rows / a watermark / a close into a subscription's source.
    Push(PushFrame),
}

/// Frames a server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// First frame on every accepted connection.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// The query parsed and planned; batches follow.
    Accepted {
        /// Output column names, aligned with [`WireTuple::values`].
        columns: Vec<String>,
    },
    /// One progressive result batch, final the moment it arrives.
    Batch(BatchFrame),
    /// The query ended (complete or cancelled).
    Done(DoneFrame),
    /// Something went wrong; `code` says whether to retry.
    Error {
        /// Typed error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The subscription planned and its ingest session is open; `Update`s
    /// follow as pushes resolve regions.
    SubAccepted {
        /// The id from the `Subscribe` frame.
        sub_id: u64,
        /// Output column names, aligned with [`WireTuple::values`].
        columns: Vec<String>,
    },
    /// One proven-final batch of a subscription.
    Update {
        /// The subscription that produced the batch.
        sub_id: u64,
        /// The batch (tuple row ids are arrival positions per source).
        batch: BatchFrame,
    },
    /// Terminal frame of a subscription (completed, unsubscribed, or torn
    /// down with the connection).
    SubDone {
        /// The subscription that ended.
        sub_id: u64,
        /// Summary statistics.
        done: DoneFrame,
    },
    /// A subscription-scoped error; other streams on the connection are
    /// unaffected.
    SubError {
        /// The subscription addressed (echoed from the client frame).
        sub_id: u64,
        /// Typed error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// A cursor over a frame payload with bounds-checked big-endian reads.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(bad_frame("payload truncated")),
        }
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self, len: usize) -> io::Result<String> {
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| bad_frame("invalid UTF-8"))
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad_frame("trailing bytes in frame payload"))
        }
    }
}

fn bad_frame(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("protocol error: {what}"),
    )
}

fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(bad_frame("frame exceeds MAX_FRAME_LEN"));
    }
    let mut header = [0u8; 5];
    header[0] = tag;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header[1..5].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(bad_frame("frame exceeds MAX_FRAME_LEN"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((header[0], payload))
}

fn source_to_u8(source: SourceId) -> u8 {
    match source {
        SourceId::R => 0,
        SourceId::T => 1,
    }
}

fn source_from_u8(v: u8) -> io::Result<SourceId> {
    match v {
        0 => Ok(SourceId::R),
        1 => Ok(SourceId::T),
        _ => Err(bad_frame("unknown push source")),
    }
}

fn encode_batch(buf: &mut Vec<u8>, batch: &BatchFrame) -> io::Result<()> {
    let dims = batch.tuples.first().map_or(0, |t| t.values.len());
    if dims > u16::MAX as usize {
        return Err(bad_frame("too many values per tuple"));
    }
    put_f64(buf, batch.progress);
    buf.push(u8::from(batch.proven_final));
    put_u16(buf, dims as u16);
    put_u32(buf, batch.tuples.len() as u32);
    for t in &batch.tuples {
        if t.values.len() != dims {
            return Err(bad_frame("ragged tuple arity in batch"));
        }
        put_u32(buf, t.r_idx);
        put_u32(buf, t.t_idx);
        for &v in &t.values {
            put_f64(buf, v);
        }
    }
    Ok(())
}

fn decode_batch(p: &mut Payload<'_>) -> io::Result<BatchFrame> {
    let progress = p.f64()?;
    let proven_final = p.u8()? != 0;
    let dims = p.u16()? as usize;
    let n = p.u32()? as usize;
    // Cheap sanity bound before allocating: every tuple needs at least its
    // two row ids plus `dims` values in the remaining payload.
    let per_tuple = 8 + 8 * dims;
    if n.saturating_mul(per_tuple) > p.remaining() {
        return Err(bad_frame("batch tuple count exceeds payload"));
    }
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let r_idx = p.u32()?;
        let t_idx = p.u32()?;
        let mut values = Vec::with_capacity(dims);
        for _ in 0..dims {
            values.push(p.f64()?);
        }
        tuples.push(WireTuple {
            r_idx,
            t_idx,
            values,
        });
    }
    Ok(BatchFrame {
        progress,
        proven_final,
        tuples,
    })
}

/// Serializes one client frame.
pub fn write_client_frame(w: &mut impl Write, frame: &ClientFrame) -> io::Result<()> {
    let mut buf = Vec::new();
    match frame {
        ClientFrame::Query(sql) => write_frame(w, TAG_QUERY, sql.as_bytes()),
        ClientFrame::Cancel { seq } => {
            if let Some(seq) = seq {
                put_u64(&mut buf, *seq);
            }
            write_frame(w, TAG_CANCEL, &buf)
        }
        ClientFrame::Hello { version } => {
            put_u32(&mut buf, *version);
            write_frame(w, TAG_CLIENT_HELLO, &buf)
        }
        ClientFrame::Subscribe { sub_id, sql } => {
            put_u64(&mut buf, *sub_id);
            buf.extend_from_slice(sql.as_bytes());
            write_frame(w, TAG_SUBSCRIBE, &buf)
        }
        ClientFrame::Unsubscribe { sub_id } => {
            put_u64(&mut buf, *sub_id);
            write_frame(w, TAG_UNSUBSCRIBE, &buf)
        }
        ClientFrame::Push(push) => {
            let dims = push
                .watermark
                .as_ref()
                .map(Vec::len)
                .or_else(|| push.rows.first().map(|r| r.attrs.len()))
                .unwrap_or(0);
            if dims > u16::MAX as usize {
                return Err(bad_frame("too many attributes per row"));
            }
            put_u64(&mut buf, push.sub_id);
            buf.push(source_to_u8(push.source));
            let mut flags = 0u8;
            if push.watermark.is_some() {
                flags |= PUSH_FLAG_WATERMARK;
            }
            if push.close {
                flags |= PUSH_FLAG_CLOSE;
            }
            buf.push(flags);
            put_u16(&mut buf, dims as u16);
            if let Some(wm) = &push.watermark {
                for &v in wm {
                    put_f64(&mut buf, v);
                }
            }
            put_u32(&mut buf, push.rows.len() as u32);
            for row in &push.rows {
                if row.attrs.len() != dims {
                    return Err(bad_frame("ragged row arity in push"));
                }
                for &v in &row.attrs {
                    put_f64(&mut buf, v);
                }
                put_u32(&mut buf, row.key);
            }
            write_frame(w, TAG_PUSH, &buf)
        }
    }
}

/// Reads one client frame. `UnexpectedEof` at a frame boundary means the
/// peer hung up; any other error is a protocol violation.
pub fn read_client_frame(r: &mut impl Read) -> io::Result<ClientFrame> {
    let (tag, payload) = read_frame(r)?;
    let mut p = Payload::new(&payload);
    match tag {
        TAG_QUERY => {
            let sql = p.string(payload.len())?;
            p.finish()?;
            Ok(ClientFrame::Query(sql))
        }
        TAG_CANCEL => {
            let seq = if payload.is_empty() {
                None
            } else {
                Some(p.u64()?)
            };
            p.finish()?;
            Ok(ClientFrame::Cancel { seq })
        }
        TAG_CLIENT_HELLO => {
            let version = p.u32()?;
            p.finish()?;
            Ok(ClientFrame::Hello { version })
        }
        TAG_SUBSCRIBE => {
            let sub_id = p.u64()?;
            let sql = p.string(payload.len() - 8)?;
            p.finish()?;
            Ok(ClientFrame::Subscribe { sub_id, sql })
        }
        TAG_UNSUBSCRIBE => {
            let sub_id = p.u64()?;
            p.finish()?;
            Ok(ClientFrame::Unsubscribe { sub_id })
        }
        TAG_PUSH => {
            let sub_id = p.u64()?;
            let source = source_from_u8(p.u8()?)?;
            let flags = p.u8()?;
            if flags & !(PUSH_FLAG_WATERMARK | PUSH_FLAG_CLOSE) != 0 {
                return Err(bad_frame("unknown push flags"));
            }
            let dims = p.u16()? as usize;
            let watermark = if flags & PUSH_FLAG_WATERMARK != 0 {
                let mut wm = Vec::with_capacity(dims);
                for _ in 0..dims {
                    wm.push(p.f64()?);
                }
                Some(wm)
            } else {
                None
            };
            let n = p.u32()? as usize;
            // Same pre-allocation sanity bound as batches: each row needs
            // `dims` values plus its key in the remaining payload.
            let per_row = 8 * dims + 4;
            if n.saturating_mul(per_row) > p.remaining() {
                return Err(bad_frame("push row count exceeds payload"));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let mut attrs = Vec::with_capacity(dims);
                for _ in 0..dims {
                    attrs.push(p.f64()?);
                }
                let key = p.u32()?;
                rows.push(PushRow { attrs, key });
            }
            p.finish()?;
            Ok(ClientFrame::Push(PushFrame {
                sub_id,
                source,
                rows,
                watermark,
                close: flags & PUSH_FLAG_CLOSE != 0,
            }))
        }
        _ => Err(bad_frame("unknown client frame tag")),
    }
}

/// Serializes one server frame.
pub fn write_server_frame(w: &mut impl Write, frame: &ServerFrame) -> io::Result<()> {
    let mut buf = Vec::new();
    match frame {
        ServerFrame::Hello { version } => {
            put_u32(&mut buf, *version);
            write_frame(w, TAG_HELLO, &buf)
        }
        ServerFrame::Accepted { columns } => {
            encode_columns(&mut buf, columns)?;
            write_frame(w, TAG_ACCEPTED, &buf)
        }
        ServerFrame::Batch(batch) => {
            encode_batch(&mut buf, batch)?;
            write_frame(w, TAG_BATCH, &buf)
        }
        ServerFrame::Done(done) => {
            encode_done(&mut buf, done);
            write_frame(w, TAG_DONE, &buf)
        }
        ServerFrame::Error { code, message } => {
            buf.push(*code as u8);
            buf.extend_from_slice(message.as_bytes());
            write_frame(w, TAG_ERROR, &buf)
        }
        ServerFrame::SubAccepted { sub_id, columns } => {
            put_u64(&mut buf, *sub_id);
            encode_columns(&mut buf, columns)?;
            write_frame(w, TAG_SUB_ACCEPTED, &buf)
        }
        ServerFrame::Update { sub_id, batch } => {
            put_u64(&mut buf, *sub_id);
            encode_batch(&mut buf, batch)?;
            write_frame(w, TAG_UPDATE, &buf)
        }
        ServerFrame::SubDone { sub_id, done } => {
            put_u64(&mut buf, *sub_id);
            encode_done(&mut buf, done);
            write_frame(w, TAG_SUB_DONE, &buf)
        }
        ServerFrame::SubError {
            sub_id,
            code,
            message,
        } => {
            put_u64(&mut buf, *sub_id);
            buf.push(*code as u8);
            buf.extend_from_slice(message.as_bytes());
            write_frame(w, TAG_SUB_ERROR, &buf)
        }
    }
}

fn encode_columns(buf: &mut Vec<u8>, columns: &[String]) -> io::Result<()> {
    if columns.len() > u16::MAX as usize {
        return Err(bad_frame("too many columns"));
    }
    put_u16(buf, columns.len() as u16);
    for c in columns {
        if c.len() > u16::MAX as usize {
            return Err(bad_frame("column name too long"));
        }
        put_u16(buf, c.len() as u16);
        buf.extend_from_slice(c.as_bytes());
    }
    Ok(())
}

fn decode_columns(p: &mut Payload<'_>) -> io::Result<Vec<String>> {
    let n = p.u16()? as usize;
    let mut columns = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let len = p.u16()? as usize;
        columns.push(p.string(len)?);
    }
    Ok(columns)
}

fn encode_done(buf: &mut Vec<u8>, done: &DoneFrame) {
    buf.push(u8::from(done.cancelled));
    put_u64(buf, done.results);
    put_u64(buf, done.elapsed_us);
}

fn decode_done(p: &mut Payload<'_>) -> io::Result<DoneFrame> {
    let cancelled = p.u8()? != 0;
    let results = p.u64()?;
    let elapsed_us = p.u64()?;
    Ok(DoneFrame {
        cancelled,
        results,
        elapsed_us,
    })
}

/// Reads one server frame. `UnexpectedEof` at a frame boundary means the
/// server closed the connection.
pub fn read_server_frame(r: &mut impl Read) -> io::Result<ServerFrame> {
    let (tag, payload) = read_frame(r)?;
    let mut p = Payload::new(&payload);
    match tag {
        TAG_HELLO => {
            let version = p.u32()?;
            p.finish()?;
            Ok(ServerFrame::Hello { version })
        }
        TAG_ACCEPTED => {
            let columns = decode_columns(&mut p)?;
            p.finish()?;
            Ok(ServerFrame::Accepted { columns })
        }
        TAG_BATCH => {
            let batch = decode_batch(&mut p)?;
            p.finish()?;
            Ok(ServerFrame::Batch(batch))
        }
        TAG_DONE => {
            let done = decode_done(&mut p)?;
            p.finish()?;
            Ok(ServerFrame::Done(done))
        }
        TAG_ERROR => {
            let code =
                ErrorCode::from_u8(p.u8()?).ok_or_else(|| bad_frame("unknown error code"))?;
            let message = p.string(payload.len() - 1)?;
            p.finish()?;
            Ok(ServerFrame::Error { code, message })
        }
        TAG_SUB_ACCEPTED => {
            let sub_id = p.u64()?;
            let columns = decode_columns(&mut p)?;
            p.finish()?;
            Ok(ServerFrame::SubAccepted { sub_id, columns })
        }
        TAG_UPDATE => {
            let sub_id = p.u64()?;
            let batch = decode_batch(&mut p)?;
            p.finish()?;
            Ok(ServerFrame::Update { sub_id, batch })
        }
        TAG_SUB_DONE => {
            let sub_id = p.u64()?;
            let done = decode_done(&mut p)?;
            p.finish()?;
            Ok(ServerFrame::SubDone { sub_id, done })
        }
        TAG_SUB_ERROR => {
            let sub_id = p.u64()?;
            let code =
                ErrorCode::from_u8(p.u8()?).ok_or_else(|| bad_frame("unknown error code"))?;
            let message = p.string(payload.len() - 9)?;
            p.finish()?;
            Ok(ServerFrame::SubError {
                sub_id,
                code,
                message,
            })
        }
        _ => Err(bad_frame("unknown server frame tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn client_roundtrip(frame: ClientFrame) -> ClientFrame {
        let mut buf = Vec::new();
        write_client_frame(&mut buf, &frame).unwrap();
        read_client_frame(&mut Cursor::new(buf)).unwrap()
    }

    fn server_roundtrip(frame: ServerFrame) -> ServerFrame {
        let mut buf = Vec::new();
        write_server_frame(&mut buf, &frame).unwrap();
        read_server_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn client_frames_roundtrip() {
        for frame in [
            ClientFrame::Query("SELECT R.id FROM a R, b T PREFERRING LOWEST(x)".into()),
            ClientFrame::Cancel { seq: None },
            ClientFrame::Cancel { seq: Some(7) },
            ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            ClientFrame::Subscribe {
                sub_id: 17,
                sql: "SELECT … PREFERRING LOWEST(c0)".into(),
            },
            ClientFrame::Unsubscribe { sub_id: u64::MAX },
            ClientFrame::Push(PushFrame {
                sub_id: 3,
                source: SourceId::R,
                rows: vec![
                    PushRow {
                        attrs: vec![1.0, 2.5],
                        key: 9,
                    },
                    PushRow {
                        attrs: vec![f64::MIN_POSITIVE, 99.0],
                        key: u32::MAX,
                    },
                ],
                watermark: Some(vec![1.0, 2.0]),
                close: false,
            }),
            // Watermark-only and close-only pushes are legal.
            ClientFrame::Push(PushFrame {
                sub_id: 3,
                source: SourceId::T,
                rows: vec![],
                watermark: Some(vec![5.0]),
                close: false,
            }),
            ClientFrame::Push(PushFrame {
                sub_id: 4,
                source: SourceId::T,
                rows: vec![],
                watermark: None,
                close: true,
            }),
        ] {
            assert_eq!(client_roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn v1_cancel_wire_image_is_the_empty_payload() {
        // The v1 encoding (tag + zero-length payload) must keep decoding
        // as a seq-less Cancel, and a seq-less Cancel must keep encoding
        // as v1 bytes — v1 peers depend on both directions.
        let mut buf = Vec::new();
        write_client_frame(&mut buf, &ClientFrame::Cancel { seq: None }).unwrap();
        assert_eq!(buf, vec![0x02, 0, 0, 0, 0]);
        assert_eq!(
            read_client_frame(&mut Cursor::new(buf)).unwrap(),
            ClientFrame::Cancel { seq: None }
        );
    }

    #[test]
    fn server_frames_roundtrip() {
        let batch = BatchFrame {
            progress: 0.25,
            proven_final: true,
            tuples: vec![
                WireTuple {
                    r_idx: 3,
                    t_idx: 9,
                    values: vec![1.5, -2.0],
                },
                WireTuple {
                    r_idx: 0,
                    t_idx: u32::MAX,
                    values: vec![f64::MAX, f64::MIN_POSITIVE],
                },
            ],
        };
        for frame in [
            ServerFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            ServerFrame::Accepted {
                columns: vec!["tCost".into(), "delay".into()],
            },
            ServerFrame::Batch(batch.clone()),
            ServerFrame::Batch(BatchFrame {
                progress: 1.0,
                proven_final: false,
                tuples: vec![],
            }),
            ServerFrame::Done(DoneFrame {
                cancelled: true,
                results: 42,
                elapsed_us: 123_456,
            }),
            ServerFrame::Error {
                code: ErrorCode::Overloaded,
                message: "session cap reached".into(),
            },
            ServerFrame::SubAccepted {
                sub_id: 11,
                columns: vec!["c0".into()],
            },
            ServerFrame::Update { sub_id: 11, batch },
            ServerFrame::SubDone {
                sub_id: 11,
                done: DoneFrame {
                    cancelled: false,
                    results: 7,
                    elapsed_us: 99,
                },
            },
            ServerFrame::SubError {
                sub_id: 12,
                code: ErrorCode::BadQuery,
                message: "unknown sub_id".into(),
            },
        ] {
            assert_eq!(server_roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let mut buf = Vec::new();
        write_server_frame(
            &mut buf,
            &ServerFrame::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        write_server_frame(
            &mut buf,
            &ServerFrame::Done(DoneFrame {
                cancelled: false,
                results: 1,
                elapsed_us: 2,
            }),
        )
        .unwrap();
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_server_frame(&mut cur).unwrap(),
            ServerFrame::Hello { .. }
        ));
        assert!(matches!(
            read_server_frame(&mut cur).unwrap(),
            ServerFrame::Done(_)
        ));
        // Clean EOF at a frame boundary.
        let err = read_server_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_and_oversized_frames_are_typed_errors() {
        let mut buf = Vec::new();
        write_server_frame(
            &mut buf,
            &ServerFrame::Accepted {
                columns: vec!["x".into()],
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_server_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // A header advertising an enormous payload is rejected before any
        // allocation.
        let mut huge = vec![TAG_QUERY];
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let err = read_client_frame(&mut Cursor::new(huge)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A push frame whose row count outruns its payload is rejected by
        // the pre-allocation bound.
        let mut buf = Vec::new();
        write_client_frame(
            &mut buf,
            &ClientFrame::Push(PushFrame {
                sub_id: 1,
                source: SourceId::R,
                rows: vec![PushRow {
                    attrs: vec![1.0],
                    key: 0,
                }],
                watermark: None,
                close: false,
            }),
        )
        .unwrap();
        // Row count sits after sub_id(8) + source(1) + flags(1) + dims(2);
        // payload starts at byte 5.
        let count_at = 5 + 8 + 1 + 1 + 2;
        buf[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = read_client_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        for tag in [0x00u8, 0x07, 0x80, 0x8a, 0xff] {
            let mut buf = vec![tag];
            buf.extend_from_slice(&0u32.to_be_bytes());
            assert_eq!(
                read_client_frame(&mut Cursor::new(buf.clone()))
                    .unwrap_err()
                    .kind(),
                io::ErrorKind::InvalidData,
                "client tag {tag:#x}"
            );
            assert_eq!(
                read_server_frame(&mut Cursor::new(buf)).unwrap_err().kind(),
                io::ErrorKind::InvalidData,
                "server tag {tag:#x}"
            );
        }
    }

    #[test]
    fn ragged_batches_are_rejected_at_encode_time() {
        let frame = ServerFrame::Batch(BatchFrame {
            progress: 0.0,
            proven_final: true,
            tuples: vec![
                WireTuple {
                    r_idx: 0,
                    t_idx: 0,
                    values: vec![1.0, 2.0],
                },
                WireTuple {
                    r_idx: 1,
                    t_idx: 1,
                    values: vec![1.0],
                },
            ],
        });
        let mut buf = Vec::new();
        assert!(write_server_frame(&mut buf, &frame).is_err());

        // Same for a push whose rows disagree with the watermark arity.
        let frame = ClientFrame::Push(PushFrame {
            sub_id: 0,
            source: SourceId::R,
            rows: vec![PushRow {
                attrs: vec![1.0],
                key: 0,
            }],
            watermark: Some(vec![1.0, 2.0]),
            close: false,
        });
        let mut buf = Vec::new();
        assert!(write_client_frame(&mut buf, &frame).is_err());
    }
}
