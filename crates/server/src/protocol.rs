//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every frame is `tag (1 byte) · payload length (u32, big-endian) ·
//! payload`. Multi-byte integers and the IEEE-754 bit patterns of floats
//! are big-endian throughout. The protocol is deliberately minimal — text
//! query in, framed progressive result batches out — because the hard part
//! of serving progressive queries is lifecycle (cancellation, admission,
//! no-buffering streaming), not serialization:
//!
//! * client → server: [`ClientFrame::Query`] (UTF-8 `PREFERRING` SQL) and
//!   [`ClientFrame::Cancel`] (stop the in-flight query).
//! * server → client: [`ServerFrame::Hello`] once per connection, then per
//!   query either [`ServerFrame::Error`] or [`ServerFrame::Accepted`]
//!   followed by zero or more [`ServerFrame::Batch`] (each proven final the
//!   moment it is sent — the server never buffers the full result) and one
//!   [`ServerFrame::Done`].
//!
//! Batches are self-describing (they carry their value arity), so a client
//! can decode a stream without tracking the `Accepted` header.

use std::io::{self, Read, Write};

/// Protocol version announced in [`ServerFrame::Hello`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload; anything larger is a protocol error.
/// Generous (a batch of ~1M five-value tuples fits), but bounds what a
/// malformed or hostile peer can make us allocate.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const TAG_QUERY: u8 = 0x01;
const TAG_CANCEL: u8 = 0x02;
const TAG_HELLO: u8 = 0x81;
const TAG_ACCEPTED: u8 = 0x82;
const TAG_BATCH: u8 = 0x83;
const TAG_DONE: u8 = 0x84;
const TAG_ERROR: u8 = 0x85;

/// Typed error codes carried by [`ServerFrame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control shed this connection: the server is at its
    /// concurrent-session cap. Retry later; the server never queues.
    Overloaded = 1,
    /// The query failed to parse or plan. The connection stays usable.
    BadQuery = 2,
    /// The engine failed during execution.
    Internal = 3,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Overloaded),
            2 => Some(ErrorCode::BadQuery),
            3 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// One result tuple on the wire: the two source row ids plus the mapped
/// output values.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple {
    /// Row id in the R source (the caller's original table).
    pub r_idx: u32,
    /// Row id in the T source.
    pub t_idx: u32,
    /// Mapped output values, aligned with the `Accepted` column names.
    pub values: Vec<f64>,
}

/// One progressive result batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFrame {
    /// Monotone completion estimate in `[0, 1]`.
    pub progress: f64,
    /// Whether every tuple is guaranteed final (true for ProgXe).
    pub proven_final: bool,
    /// The batch's tuples, in emission order.
    pub tuples: Vec<WireTuple>,
}

/// Terminal frame of a query: summary statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneFrame {
    /// Whether the run was cancelled before completion.
    pub cancelled: bool,
    /// Results emitted over the query's lifetime.
    pub results: u64,
    /// Server-side wall time of the run, microseconds.
    pub elapsed_us: u64,
}

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Run a `PREFERRING` query (UTF-8 SQL text).
    Query(String),
    /// Cancel the in-flight query; the server answers with `Done`
    /// (`cancelled: true`). No-op when nothing is running.
    Cancel,
}

/// Frames a server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// First frame on every accepted connection.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// The query parsed and planned; batches follow.
    Accepted {
        /// Output column names, aligned with [`WireTuple::values`].
        columns: Vec<String>,
    },
    /// One progressive result batch, final the moment it arrives.
    Batch(BatchFrame),
    /// The query ended (complete or cancelled).
    Done(DoneFrame),
    /// Something went wrong; `code` says whether to retry.
    Error {
        /// Typed error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// A cursor over a frame payload with bounds-checked big-endian reads.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(bad_frame("payload truncated")),
        }
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self, len: usize) -> io::Result<String> {
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| bad_frame("invalid UTF-8"))
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad_frame("trailing bytes in frame payload"))
        }
    }
}

fn bad_frame(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("protocol error: {what}"),
    )
}

fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(bad_frame("frame exceeds MAX_FRAME_LEN"));
    }
    let mut header = [0u8; 5];
    header[0] = tag;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header[1..5].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(bad_frame("frame exceeds MAX_FRAME_LEN"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((header[0], payload))
}

/// Serializes one client frame.
pub fn write_client_frame(w: &mut impl Write, frame: &ClientFrame) -> io::Result<()> {
    match frame {
        ClientFrame::Query(sql) => write_frame(w, TAG_QUERY, sql.as_bytes()),
        ClientFrame::Cancel => write_frame(w, TAG_CANCEL, &[]),
    }
}

/// Reads one client frame. `UnexpectedEof` at a frame boundary means the
/// peer hung up; any other error is a protocol violation.
pub fn read_client_frame(r: &mut impl Read) -> io::Result<ClientFrame> {
    let (tag, payload) = read_frame(r)?;
    match tag {
        TAG_QUERY => {
            let mut p = Payload::new(&payload);
            let sql = p.string(payload.len())?;
            p.finish()?;
            Ok(ClientFrame::Query(sql))
        }
        TAG_CANCEL => {
            Payload::new(&payload).finish()?;
            Ok(ClientFrame::Cancel)
        }
        _ => Err(bad_frame("unknown client frame tag")),
    }
}

/// Serializes one server frame.
pub fn write_server_frame(w: &mut impl Write, frame: &ServerFrame) -> io::Result<()> {
    let mut buf = Vec::new();
    match frame {
        ServerFrame::Hello { version } => {
            put_u32(&mut buf, *version);
            write_frame(w, TAG_HELLO, &buf)
        }
        ServerFrame::Accepted { columns } => {
            if columns.len() > u16::MAX as usize {
                return Err(bad_frame("too many columns"));
            }
            put_u16(&mut buf, columns.len() as u16);
            for c in columns {
                if c.len() > u16::MAX as usize {
                    return Err(bad_frame("column name too long"));
                }
                put_u16(&mut buf, c.len() as u16);
                buf.extend_from_slice(c.as_bytes());
            }
            write_frame(w, TAG_ACCEPTED, &buf)
        }
        ServerFrame::Batch(batch) => {
            let dims = batch.tuples.first().map_or(0, |t| t.values.len());
            if dims > u16::MAX as usize {
                return Err(bad_frame("too many values per tuple"));
            }
            put_f64(&mut buf, batch.progress);
            buf.push(u8::from(batch.proven_final));
            put_u16(&mut buf, dims as u16);
            put_u32(&mut buf, batch.tuples.len() as u32);
            for t in &batch.tuples {
                if t.values.len() != dims {
                    return Err(bad_frame("ragged tuple arity in batch"));
                }
                put_u32(&mut buf, t.r_idx);
                put_u32(&mut buf, t.t_idx);
                for &v in &t.values {
                    put_f64(&mut buf, v);
                }
            }
            write_frame(w, TAG_BATCH, &buf)
        }
        ServerFrame::Done(done) => {
            buf.push(u8::from(done.cancelled));
            put_u64(&mut buf, done.results);
            put_u64(&mut buf, done.elapsed_us);
            write_frame(w, TAG_DONE, &buf)
        }
        ServerFrame::Error { code, message } => {
            buf.push(*code as u8);
            buf.extend_from_slice(message.as_bytes());
            write_frame(w, TAG_ERROR, &buf)
        }
    }
}

/// Reads one server frame. `UnexpectedEof` at a frame boundary means the
/// server closed the connection.
pub fn read_server_frame(r: &mut impl Read) -> io::Result<ServerFrame> {
    let (tag, payload) = read_frame(r)?;
    let mut p = Payload::new(&payload);
    match tag {
        TAG_HELLO => {
            let version = p.u32()?;
            p.finish()?;
            Ok(ServerFrame::Hello { version })
        }
        TAG_ACCEPTED => {
            let n = p.u16()? as usize;
            let mut columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let len = p.u16()? as usize;
                columns.push(p.string(len)?);
            }
            p.finish()?;
            Ok(ServerFrame::Accepted { columns })
        }
        TAG_BATCH => {
            let progress = p.f64()?;
            let proven_final = p.u8()? != 0;
            let dims = p.u16()? as usize;
            let n = p.u32()? as usize;
            // Cheap sanity bound before allocating: every tuple needs at
            // least its two row ids plus `dims` values in the payload.
            let per_tuple = 8 + 8 * dims;
            if n.saturating_mul(per_tuple) > payload.len() {
                return Err(bad_frame("batch tuple count exceeds payload"));
            }
            let mut tuples = Vec::with_capacity(n);
            for _ in 0..n {
                let r_idx = p.u32()?;
                let t_idx = p.u32()?;
                let mut values = Vec::with_capacity(dims);
                for _ in 0..dims {
                    values.push(p.f64()?);
                }
                tuples.push(WireTuple {
                    r_idx,
                    t_idx,
                    values,
                });
            }
            p.finish()?;
            Ok(ServerFrame::Batch(BatchFrame {
                progress,
                proven_final,
                tuples,
            }))
        }
        TAG_DONE => {
            let cancelled = p.u8()? != 0;
            let results = p.u64()?;
            let elapsed_us = p.u64()?;
            p.finish()?;
            Ok(ServerFrame::Done(DoneFrame {
                cancelled,
                results,
                elapsed_us,
            }))
        }
        TAG_ERROR => {
            let code =
                ErrorCode::from_u8(p.u8()?).ok_or_else(|| bad_frame("unknown error code"))?;
            let message = p.string(payload.len() - 1)?;
            p.finish()?;
            Ok(ServerFrame::Error { code, message })
        }
        _ => Err(bad_frame("unknown server frame tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn client_roundtrip(frame: ClientFrame) -> ClientFrame {
        let mut buf = Vec::new();
        write_client_frame(&mut buf, &frame).unwrap();
        read_client_frame(&mut Cursor::new(buf)).unwrap()
    }

    fn server_roundtrip(frame: ServerFrame) -> ServerFrame {
        let mut buf = Vec::new();
        write_server_frame(&mut buf, &frame).unwrap();
        read_server_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn client_frames_roundtrip() {
        let q = ClientFrame::Query("SELECT R.id FROM a R, b T PREFERRING LOWEST(x)".into());
        assert_eq!(client_roundtrip(q.clone()), q);
        assert_eq!(client_roundtrip(ClientFrame::Cancel), ClientFrame::Cancel);
    }

    #[test]
    fn server_frames_roundtrip() {
        for frame in [
            ServerFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            ServerFrame::Accepted {
                columns: vec!["tCost".into(), "delay".into()],
            },
            ServerFrame::Batch(BatchFrame {
                progress: 0.25,
                proven_final: true,
                tuples: vec![
                    WireTuple {
                        r_idx: 3,
                        t_idx: 9,
                        values: vec![1.5, -2.0],
                    },
                    WireTuple {
                        r_idx: 0,
                        t_idx: u32::MAX,
                        values: vec![f64::MAX, f64::MIN_POSITIVE],
                    },
                ],
            }),
            ServerFrame::Batch(BatchFrame {
                progress: 1.0,
                proven_final: false,
                tuples: vec![],
            }),
            ServerFrame::Done(DoneFrame {
                cancelled: true,
                results: 42,
                elapsed_us: 123_456,
            }),
            ServerFrame::Error {
                code: ErrorCode::Overloaded,
                message: "session cap reached".into(),
            },
        ] {
            assert_eq!(server_roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let mut buf = Vec::new();
        write_server_frame(
            &mut buf,
            &ServerFrame::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        write_server_frame(
            &mut buf,
            &ServerFrame::Done(DoneFrame {
                cancelled: false,
                results: 1,
                elapsed_us: 2,
            }),
        )
        .unwrap();
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_server_frame(&mut cur).unwrap(),
            ServerFrame::Hello { .. }
        ));
        assert!(matches!(
            read_server_frame(&mut cur).unwrap(),
            ServerFrame::Done(_)
        ));
        // Clean EOF at a frame boundary.
        let err = read_server_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_and_oversized_frames_are_typed_errors() {
        let mut buf = Vec::new();
        write_server_frame(
            &mut buf,
            &ServerFrame::Accepted {
                columns: vec!["x".into()],
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_server_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // A header advertising an enormous payload is rejected before any
        // allocation.
        let mut huge = vec![TAG_QUERY];
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let err = read_client_frame(&mut Cursor::new(huge)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn ragged_batches_are_rejected_at_encode_time() {
        let frame = ServerFrame::Batch(BatchFrame {
            progress: 0.0,
            proven_final: true,
            tuples: vec![
                WireTuple {
                    r_idx: 0,
                    t_idx: 0,
                    values: vec![1.0, 2.0],
                },
                WireTuple {
                    r_idx: 1,
                    t_idx: 1,
                    values: vec![1.0],
                },
            ],
        });
        let mut buf = Vec::new();
        assert!(write_server_frame(&mut buf, &frame).is_err());
    }
}
