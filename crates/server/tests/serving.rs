//! End-to-end serving tests: correctness over the wire, disconnect- and
//! frame-driven cancellation, admission control, and clean shutdown.
//!
//! Every test binds port 0 and runs its own server; the "slow" catalogs
//! (2000 anti-correlated rows) take seconds in debug mode, which is the
//! runway the cancellation tests need to catch a query mid-flight.

use progxe_query::{Engine, QueryRunner};
use progxe_server::server::wait_for_cancelled;
use progxe_server::{synthetic, Client, ErrorCode, Server, ServerConfig, ServerFrame};
use std::time::{Duration, Instant};

fn start_server(
    rows: usize,
    dims: usize,
    seed: u64,
    max_sessions: usize,
) -> progxe_server::ServerHandle {
    let runner = QueryRunner::new(synthetic::catalog(rows, dims, seed));
    let engine = Engine::progxe_threads(2);
    Server::start(runner, engine, ServerConfig { max_sessions }, "127.0.0.1:0")
        .expect("bind port 0")
}

/// Reads the next frame and asserts the in-flight query was `Accepted` —
/// i.e. the server has opened a session and is about to stream.
fn read_until_accepted(client: &mut Client) {
    match client.next_server_frame().expect("server frame") {
        ServerFrame::Accepted { .. } => {}
        ServerFrame::Error { code, message } => {
            panic!("query rejected ({code:?}): {message}")
        }
        other => panic!("expected Accepted, got {other:?}"),
    }
}

#[test]
fn results_over_the_wire_match_run_collect() {
    let rows = 400;
    let dims = 2;
    let seed = 3;
    let sql = synthetic::query_sql(dims);
    let reference = QueryRunner::new(synthetic::catalog(rows, dims, seed))
        .run_collect(&sql, &Engine::progxe_threads(2))
        .expect("reference run");

    let handle = start_server(rows, dims, seed, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let outcome = client.run_query(&sql).expect("query runs");

    assert!(
        outcome.error.is_none(),
        "unexpected error: {:?}",
        outcome.error
    );
    let done = outcome.done.expect("terminal Done frame");
    assert!(!done.cancelled);
    assert_eq!(done.results, reference.results.len() as u64);
    assert_eq!(outcome.columns, reference.output_names);

    let mut got: Vec<(u32, u32)> = outcome.tuples.iter().map(|t| (t.r_idx, t.t_idx)).collect();
    let mut want: Vec<(u32, u32)> = reference
        .results
        .iter()
        .map(|t| (t.r_idx, t.t_idx))
        .collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "wire results must match the in-process run");
    for tuple in &outcome.tuples {
        assert_eq!(tuple.values.len(), dims, "wire tuples carry mapped values");
    }

    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_ok(), 1);
    assert_eq!(metrics.queries_cancelled(), 0);
}

#[test]
fn killing_the_socket_cancels_in_flight_pooled_work() {
    // ~2s of pooled region work in debug mode; the client vanishes right
    // after admission, so completion without cancellation would mean the
    // server kept burning the shared pool for a dead connection.
    let handle = start_server(2000, 3, 5, 8);
    let metrics = handle.metrics();

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.send_query(&synthetic::query_sql(3)).expect("send");
    read_until_accepted(&mut client);
    drop(client); // kill the socket mid-query

    assert!(
        wait_for_cancelled(&metrics, 1, Duration::from_secs(20)),
        "disconnect must cancel the in-flight session (queries_cancelled={}, ok={})",
        metrics.queries_cancelled(),
        metrics.queries_ok()
    );
    assert_eq!(
        metrics.queries_ok(),
        0,
        "the run must not count as completed"
    );
    handle.shutdown();
}

#[test]
fn explicit_cancel_frame_ends_the_stream_with_done_cancelled() {
    let handle = start_server(2000, 3, 6, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.send_query(&synthetic::query_sql(3)).expect("send");
    read_until_accepted(&mut client);
    client.cancel().expect("send cancel");

    let done = loop {
        match client
            .next_server_frame()
            .expect("stream stays well-formed")
        {
            ServerFrame::Batch(_) => continue,
            ServerFrame::Done(done) => break done,
            other => panic!("expected Batch or Done, got {other:?}"),
        }
    };
    assert!(done.cancelled, "a cancelled run must report itself as such");
    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_cancelled(), 1);
}

#[test]
fn admission_control_sheds_load_with_a_typed_error() {
    let handle = start_server(200, 2, 7, 1);
    let holder = Client::connect(handle.addr()).expect("first connection admitted");

    let err = Client::connect(handle.addr()).expect_err("second connection must be shed");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    assert!(
        err.to_string().contains("session cap"),
        "error should carry the server's message, got: {err}"
    );
    assert_eq!(handle.metrics().rejected(), 1);
    assert_eq!(handle.metrics().accepted(), 1);

    // Freeing the slot re-opens admission.
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.active_sessions(), 0, "slot must free on disconnect");
    let mut client = Client::connect(handle.addr()).expect("admitted after slot frees");
    let outcome = client.run_query(&synthetic::query_sql(2)).expect("runs");
    assert!(outcome.done.is_some());
    handle.shutdown();
}

#[test]
fn bad_query_is_reported_in_band_and_the_connection_survives() {
    let handle = start_server(200, 2, 8, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let outcome = client
        .run_query("SELECT nonsense FROM nowhere")
        .expect("frame exchange");
    let (code, message) = outcome.error.expect("typed error for a bad query");
    assert_eq!(code, ErrorCode::BadQuery);
    assert!(!message.is_empty());
    assert!(outcome.done.is_none());

    // Same connection, valid query: the error must not have poisoned it.
    let outcome = client
        .run_query(&synthetic::query_sql(2))
        .expect("retry runs");
    assert!(outcome.error.is_none());
    assert!(!outcome.tuples.is_empty());
    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_failed(), 1);
    assert_eq!(metrics.queries_ok(), 1);
}

#[test]
fn shutdown_with_a_live_query_terminates_cleanly() {
    let handle = start_server(2000, 3, 9, 8);
    let metrics = handle.metrics();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.send_query(&synthetic::query_sql(3)).expect("send");
    read_until_accepted(&mut client);

    // Shutdown severs the connection; it must join every server thread
    // without waiting for the multi-second query to run to completion.
    let t = Instant::now();
    handle.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "shutdown blocked on a live query for {:?}",
        t.elapsed()
    );
    assert_eq!(
        metrics.queries_cancelled(),
        1,
        "the live query was cancelled"
    );
    assert_eq!(metrics.queries_ok(), 0);
}
