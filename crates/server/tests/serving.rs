//! End-to-end serving tests: correctness over the wire, disconnect- and
//! frame-driven cancellation, admission control, and clean shutdown.
//!
//! Every test binds port 0 and runs its own server; the "slow" catalogs
//! (2000 anti-correlated rows) take seconds in debug mode, which is the
//! runway the cancellation tests need to catch a query mid-flight.

use progxe_core::ingest::IngestPoll;
use progxe_query::exec::StreamingQuery;
use progxe_query::{Engine, QueryRunner};
use progxe_server::server::wait_for_cancelled;
use progxe_server::{synthetic, Client, ErrorCode, PushFrame, Server, ServerConfig, ServerFrame};
use std::time::{Duration, Instant};

fn start_server(
    rows: usize,
    dims: usize,
    seed: u64,
    max_sessions: usize,
) -> progxe_server::ServerHandle {
    let runner = QueryRunner::new(synthetic::catalog(rows, dims, seed));
    let engine = Engine::progxe_threads(2);
    Server::start(runner, engine, ServerConfig { max_sessions }, "127.0.0.1:0")
        .expect("bind port 0")
}

/// A server whose catalog also registers `R`/`T` as streaming tables, so
/// subscriptions and one-shot queries share one connection.
fn start_streaming_server(
    rows: usize,
    dims: usize,
    seed: u64,
    max_sessions: usize,
) -> progxe_server::ServerHandle {
    let runner = QueryRunner::new(synthetic::streaming_catalog(rows, dims, seed));
    let engine = Engine::progxe_threads(2);
    Server::start(runner, engine, ServerConfig { max_sessions }, "127.0.0.1:0")
        .expect("bind port 0")
}

/// One drained result event, flattened for transcript comparison:
/// `(progress_estimate, proven_final, [(r_idx, t_idx, values)])`.
type TranscriptEvent = (f64, bool, Vec<(u32, u32, Vec<f64>)>);

/// Applies one wire push frame to an in-process [`StreamingQuery`] and
/// drains it, exactly mirroring the server's ingest loop. Returns the
/// drained events and whether the session completed.
fn apply_in_process(
    query: &mut StreamingQuery,
    frame: &PushFrame,
    transcript: &mut Vec<TranscriptEvent>,
) -> bool {
    let rows: Vec<(&[f64], u32)> = frame
        .rows
        .iter()
        .map(|r| (r.attrs.as_slice(), r.key))
        .collect();
    if !rows.is_empty() {
        query.push(frame.source, &rows).expect("push");
    }
    if let Some(wm) = &frame.watermark {
        query.set_watermark(frame.source, wm).expect("watermark");
    }
    if frame.close {
        query.close(frame.source);
    }
    loop {
        match query.poll() {
            IngestPoll::Batch(event) => transcript.push((
                event.progress_estimate,
                event.proven_final,
                event
                    .tuples
                    .iter()
                    .map(|t| (t.r_idx, t.t_idx, t.values.clone()))
                    .collect(),
            )),
            IngestPoll::NeedInput => return false,
            IngestPoll::Complete => return true,
        }
    }
}

/// Reads the next frame and asserts the in-flight query was `Accepted` —
/// i.e. the server has opened a session and is about to stream.
fn read_until_accepted(client: &mut Client) {
    match client.next_server_frame().expect("server frame") {
        ServerFrame::Accepted { .. } => {}
        ServerFrame::Error { code, message } => {
            panic!("query rejected ({code:?}): {message}")
        }
        other => panic!("expected Accepted, got {other:?}"),
    }
}

#[test]
fn results_over_the_wire_match_run_collect() {
    let rows = 400;
    let dims = 2;
    let seed = 3;
    let sql = synthetic::query_sql(dims);
    let reference = QueryRunner::new(synthetic::catalog(rows, dims, seed))
        .run_collect(&sql, &Engine::progxe_threads(2))
        .expect("reference run");

    let handle = start_server(rows, dims, seed, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let outcome = client.run_query(&sql).expect("query runs");

    assert!(
        outcome.error.is_none(),
        "unexpected error: {:?}",
        outcome.error
    );
    let done = outcome.done.expect("terminal Done frame");
    assert!(!done.cancelled);
    assert_eq!(done.results, reference.results.len() as u64);
    assert_eq!(outcome.columns, reference.output_names);

    let mut got: Vec<(u32, u32)> = outcome.tuples.iter().map(|t| (t.r_idx, t.t_idx)).collect();
    let mut want: Vec<(u32, u32)> = reference
        .results
        .iter()
        .map(|t| (t.r_idx, t.t_idx))
        .collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "wire results must match the in-process run");
    for tuple in &outcome.tuples {
        assert_eq!(tuple.values.len(), dims, "wire tuples carry mapped values");
    }

    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_ok(), 1);
    assert_eq!(metrics.queries_cancelled(), 0);
}

#[test]
fn killing_the_socket_cancels_in_flight_pooled_work() {
    // ~2s of pooled region work in debug mode; the client vanishes right
    // after admission, so completion without cancellation would mean the
    // server kept burning the shared pool for a dead connection.
    let handle = start_server(2000, 3, 5, 8);
    let metrics = handle.metrics();

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.send_query(&synthetic::query_sql(3)).expect("send");
    read_until_accepted(&mut client);
    drop(client); // kill the socket mid-query

    assert!(
        wait_for_cancelled(&metrics, 1, Duration::from_secs(20)),
        "disconnect must cancel the in-flight session (queries_cancelled={}, ok={})",
        metrics.queries_cancelled(),
        metrics.queries_ok()
    );
    assert_eq!(
        metrics.queries_ok(),
        0,
        "the run must not count as completed"
    );
    handle.shutdown();
}

#[test]
fn explicit_cancel_frame_ends_the_stream_with_done_cancelled() {
    let handle = start_server(2000, 3, 6, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.send_query(&synthetic::query_sql(3)).expect("send");
    read_until_accepted(&mut client);
    client.cancel().expect("send cancel");

    let done = loop {
        match client
            .next_server_frame()
            .expect("stream stays well-formed")
        {
            ServerFrame::Batch(_) => continue,
            ServerFrame::Done(done) => break done,
            other => panic!("expected Batch or Done, got {other:?}"),
        }
    };
    assert!(done.cancelled, "a cancelled run must report itself as such");
    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_cancelled(), 1);
}

#[test]
fn admission_control_sheds_load_with_a_typed_error() {
    let handle = start_server(200, 2, 7, 1);
    let holder = Client::connect(handle.addr()).expect("first connection admitted");

    let err = Client::connect(handle.addr()).expect_err("second connection must be shed");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    assert!(
        err.to_string().contains("session cap"),
        "error should carry the server's message, got: {err}"
    );
    assert_eq!(handle.metrics().rejected(), 1);
    assert_eq!(handle.metrics().accepted(), 1);

    // Freeing the slot re-opens admission.
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.active_sessions(), 0, "slot must free on disconnect");
    let mut client = Client::connect(handle.addr()).expect("admitted after slot frees");
    let outcome = client.run_query(&synthetic::query_sql(2)).expect("runs");
    assert!(outcome.done.is_some());
    handle.shutdown();
}

#[test]
fn bad_query_is_reported_in_band_and_the_connection_survives() {
    let handle = start_server(200, 2, 8, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let outcome = client
        .run_query("SELECT nonsense FROM nowhere")
        .expect("frame exchange");
    let (code, message) = outcome.error.expect("typed error for a bad query");
    assert_eq!(code, ErrorCode::BadQuery);
    assert!(!message.is_empty());
    assert!(outcome.done.is_none());

    // Same connection, valid query: the error must not have poisoned it.
    let outcome = client
        .run_query(&synthetic::query_sql(2))
        .expect("retry runs");
    assert!(outcome.error.is_none());
    assert!(!outcome.tuples.is_empty());
    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_failed(), 1);
    assert_eq!(metrics.queries_ok(), 1);
}

#[test]
fn subscription_updates_are_bit_identical_to_an_in_process_transcript() {
    let rows = 240;
    let dims = 2;
    let handle = start_streaming_server(50, dims, 3, 8);
    let sql = synthetic::query_sql(dims);
    let sub_id = 42;
    let feed = synthetic::arrival_feed(sub_id, rows, dims, 11, 24);

    // Wire run: subscribe, replay the feed, collect every Update verbatim.
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.subscribe(sub_id, &sql).expect("subscribe");
    let columns = match client.next_server_frame().expect("frame") {
        ServerFrame::SubAccepted {
            sub_id: id,
            columns,
        } => {
            assert_eq!(id, sub_id);
            columns
        }
        other => panic!("expected SubAccepted, got {other:?}"),
    };
    for frame in &feed {
        client.push(frame).expect("push");
    }
    let mut wire: Vec<TranscriptEvent> = Vec::new();
    let done = loop {
        match client.next_server_frame().expect("frame") {
            ServerFrame::Update { sub_id: id, batch } => {
                assert_eq!(id, sub_id);
                wire.push((
                    batch.progress,
                    batch.proven_final,
                    batch
                        .tuples
                        .iter()
                        .map(|t| (t.r_idx, t.t_idx, t.values.clone()))
                        .collect(),
                ));
            }
            ServerFrame::SubDone { sub_id: id, done } => {
                assert_eq!(id, sub_id);
                break done;
            }
            other => panic!("expected Update or SubDone, got {other:?}"),
        }
    };
    assert!(!done.cancelled, "a fully fed subscription completes");

    // In-process run: same engine config, same arrival schedule.
    let runner = QueryRunner::new(synthetic::streaming_catalog(50, dims, 3));
    let mut query = runner
        .ingest_session(&sql, &Engine::progxe_threads(2))
        .expect("in-process session");
    assert_eq!(query.output_names(), columns.as_slice());
    let mut reference: Vec<TranscriptEvent> = Vec::new();
    let mut completed = false;
    for frame in &feed {
        completed = apply_in_process(&mut query, frame, &mut reference);
    }
    assert!(completed, "the feed closes both sources");
    let stats = query.finish();
    assert!(!stats.cancelled);

    assert_eq!(
        wire, reference,
        "wire Update stream must be bit-identical to the in-process transcript"
    );
    assert_eq!(done.results, stats.results_emitted);
    assert!(done.results > 0, "anti-correlated feed must emit results");
    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_ok(), 1);
    assert_eq!(metrics.queries_cancelled(), 0);
}

#[test]
fn unsubscribe_cancels_the_standing_session() {
    let dims = 2;
    let handle = start_streaming_server(50, dims, 4, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let sub_id = 7;
    client
        .subscribe(sub_id, &synthetic::query_sql(dims))
        .expect("subscribe");
    assert!(matches!(
        client.next_server_frame().expect("frame"),
        ServerFrame::SubAccepted { .. }
    ));
    // Feed part of the stream — never closing — then unsubscribe.
    let feed = synthetic::arrival_feed(sub_id, 200, dims, 5, 32);
    for frame in feed.iter().filter(|f| !f.close).take(4) {
        client.push(frame).expect("push");
    }
    client.unsubscribe(sub_id).expect("unsubscribe");
    let done = loop {
        match client.next_server_frame().expect("frame") {
            ServerFrame::Update { .. } => continue,
            ServerFrame::SubDone { sub_id: id, done } => {
                assert_eq!(id, sub_id);
                break done;
            }
            other => panic!("expected Update or SubDone, got {other:?}"),
        }
    };
    assert!(done.cancelled, "unsubscribe ends the session as cancelled");
    let metrics = handle.metrics();
    assert_eq!(metrics.queries_cancelled(), 1);
    // The connection survives: a fresh subscription under the same id.
    client
        .subscribe(sub_id, &synthetic::query_sql(dims))
        .expect("resubscribe");
    assert!(matches!(
        client.next_server_frame().expect("frame"),
        ServerFrame::SubAccepted { .. }
    ));
    handle.shutdown();
}

#[test]
fn disconnect_cancels_standing_subscriptions() {
    let dims = 2;
    let handle = start_streaming_server(50, dims, 6, 8);
    let metrics = handle.metrics();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .subscribe(1, &synthetic::query_sql(dims))
        .expect("subscribe");
    assert!(matches!(
        client.next_server_frame().expect("frame"),
        ServerFrame::SubAccepted { .. }
    ));
    let feed = synthetic::arrival_feed(1, 200, dims, 8, 32);
    for frame in feed.iter().filter(|f| !f.close).take(3) {
        client.push(frame).expect("push");
    }
    drop(client); // vanish with the subscription standing
    assert!(
        wait_for_cancelled(&metrics, 1, Duration::from_secs(20)),
        "disconnect must cancel the standing subscription (cancelled={})",
        metrics.queries_cancelled()
    );
    handle.shutdown();
}

#[test]
fn v1_client_completes_a_one_shot_query_unchanged() {
    let rows = 300;
    let dims = 2;
    let seed = 12;
    let sql = synthetic::query_sql(dims);
    let reference = QueryRunner::new(synthetic::catalog(rows, dims, seed))
        .run_collect(&sql, &Engine::progxe_threads(2))
        .expect("reference run");

    let handle = start_streaming_server(rows, dims, seed, 8);
    // No v2 Hello echo: the server must confine itself to v1 frames.
    let mut client = Client::connect_v1(handle.addr()).expect("connect");
    let outcome = client.run_query(&sql).expect("query runs");
    assert!(outcome.error.is_none());
    let done = outcome.done.expect("Done frame");
    assert!(!done.cancelled);
    assert_eq!(done.results, reference.results.len() as u64);
    let mut got: Vec<(u32, u32)> = outcome.tuples.iter().map(|t| (t.r_idx, t.t_idx)).collect();
    let mut want: Vec<(u32, u32)> = reference
        .results
        .iter()
        .map(|t| (t.r_idx, t.t_idx))
        .collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);

    // A v2-only request on the v1 connection gets a v1-safe typed error,
    // never an unknown tag.
    client.subscribe(9, &sql).expect("send subscribe");
    match client.next_server_frame().expect("frame") {
        ServerFrame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadQuery);
            assert!(
                message.contains("v2"),
                "explains the version gate: {message}"
            );
        }
        other => panic!("expected v1-safe Error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn cancel_in_the_same_write_as_the_query_is_not_lost() {
    use progxe_server::protocol::{read_server_frame, write_client_frame, ClientFrame};
    use std::io::Write;

    // The lost-cancel race: Cancel lands after Query but before the
    // handler installs the session token. Sending both frames in ONE
    // write maximizes the window; the pending-cancel set must catch it.
    let handle = start_server(2000, 3, 5, 8);
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    match read_server_frame(&mut reader).expect("hello") {
        ServerFrame::Hello { .. } => {}
        other => panic!("expected Hello, got {other:?}"),
    }
    let mut buf = Vec::new();
    write_client_frame(&mut buf, &ClientFrame::Query(synthetic::query_sql(3))).unwrap();
    write_client_frame(&mut buf, &ClientFrame::Cancel { seq: None }).unwrap();
    (&stream).write_all(&buf).expect("one write");
    (&stream).flush().expect("flush");

    let done = loop {
        match read_server_frame(&mut reader).expect("stream well-formed") {
            ServerFrame::Accepted { .. } | ServerFrame::Batch(_) => continue,
            ServerFrame::Done(done) => break done,
            other => panic!("expected Accepted/Batch/Done, got {other:?}"),
        }
    };
    assert!(
        done.cancelled,
        "a Cancel racing the token install must still cancel the query"
    );
    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_cancelled(), 1);
    assert_eq!(metrics.queries_ok(), 0);
}

#[test]
fn stale_cancel_never_kills_the_next_pipelined_query() {
    let handle = start_server(2000, 3, 13, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let sql = synthetic::query_sql(3);
    let seq0 = client.send_query(&sql).expect("send q0");
    let _seq1 = client.send_query(&sql).expect("send q1");
    assert_eq!(seq0, 0);

    // Drain query 0 to its Done...
    let done0 = loop {
        match client.next_server_frame().expect("frame") {
            ServerFrame::Accepted { .. } | ServerFrame::Batch(_) => continue,
            ServerFrame::Done(done) => break done,
            other => panic!("q0: unexpected {other:?}"),
        }
    };
    assert!(!done0.cancelled);
    // ...then cancel it — stale: query 1 is (or is about to be) running,
    // and before cancels were sequenced this killed it.
    client.cancel_seq(seq0).expect("stale cancel");
    let done1 = loop {
        match client.next_server_frame().expect("frame") {
            ServerFrame::Accepted { .. } | ServerFrame::Batch(_) => continue,
            ServerFrame::Done(done) => break done,
            other => panic!("q1: unexpected {other:?}"),
        }
    };
    assert!(
        !done1.cancelled,
        "a stale Cancel for a finished query must not touch its successor"
    );
    let metrics = handle.metrics();
    handle.shutdown();
    assert_eq!(metrics.queries_ok(), 2);
    assert_eq!(metrics.queries_cancelled(), 0);
}

#[test]
fn wire_progress_is_monotone_and_reaches_the_final_estimate() {
    let rows = 400;
    let dims = 2;
    let seed = 3;
    let sql = synthetic::query_sql(dims);

    // In-process reference: the highest progress estimate any event
    // (including empty, progress-only ones) carries.
    let runner = QueryRunner::new(synthetic::catalog(rows, dims, seed));
    let planned = runner.prepare(&sql).expect("prepare");
    let mut session = runner
        .session(&planned, &Engine::progxe_threads(2))
        .expect("session");
    let mut final_estimate = 0.0f64;
    while let Some(event) = session.next_batch() {
        final_estimate = final_estimate.max(event.progress_estimate);
    }
    drop(session);
    assert!(final_estimate > 0.0);

    let handle = start_server(rows, dims, seed, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let outcome = client.run_query(&sql).expect("query runs");
    assert!(outcome.error.is_none());
    assert!(!outcome.progress.is_empty());
    for pair in outcome.progress.windows(2) {
        assert!(
            pair[1] >= pair[0],
            "wire progress regressed: {:?}",
            outcome.progress
        );
    }
    let observed = outcome.progress.last().copied().unwrap();
    assert!(
        observed >= final_estimate,
        "wire progress went stale: observed {observed}, final estimate {final_estimate}"
    );
    handle.shutdown();
}

#[test]
fn shutdown_with_a_live_query_terminates_cleanly() {
    let handle = start_server(2000, 3, 9, 8);
    let metrics = handle.metrics();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.send_query(&synthetic::query_sql(3)).expect("send");
    read_until_accepted(&mut client);

    // Shutdown severs the connection; it must join every server thread
    // without waiting for the multi-second query to run to completion.
    let t = Instant::now();
    handle.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "shutdown blocked on a live query for {:?}",
        t.elapsed()
    );
    assert_eq!(
        metrics.queries_cancelled(),
        1,
        "the live query was cancelled"
    );
    assert_eq!(metrics.queries_ok(), 0);
}
