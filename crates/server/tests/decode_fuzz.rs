//! Seeded-random fuzzing of the wire-protocol decoders.
//!
//! The serving layer's security boundary is `read_client_frame` /
//! `read_server_frame`: whatever bytes a peer sends, the decoders must
//! return a typed `io::Error` — never panic, never attempt an unbounded
//! allocation. Three adversarial byte sources, all driven by the
//! workspace's deterministic `StdRng` so every failure reproduces:
//!
//! 1. arbitrary byte strings (decoders see pure noise),
//! 2. truncations of every valid frame at every prefix length,
//! 3. single-byte mutations of valid frames.

use progxe_core::ingest::SourceId;
use progxe_datagen::{Rng, StdRng};
use progxe_server::protocol::{
    read_client_frame, read_server_frame, write_client_frame, write_server_frame, BatchFrame,
    ClientFrame, DoneFrame, ErrorCode, PushFrame, PushRow, ServerFrame, WireTuple, MAX_FRAME_LEN,
};
use std::io::{Cursor, ErrorKind};

/// One representative of every client frame variant (plus the edge
/// encodings the protocol allows: empty-payload cancel, watermark-only
/// and close-only pushes).
fn client_corpus() -> Vec<ClientFrame> {
    vec![
        ClientFrame::Query(
            "SELECT R.id FROM R R, T T WHERE R.k = T.k PREFERRING LOWEST(c0)".into(),
        ),
        ClientFrame::Cancel { seq: None },
        ClientFrame::Cancel { seq: Some(7) },
        ClientFrame::Hello { version: 2 },
        ClientFrame::Subscribe {
            sub_id: 42,
            sql: "SELECT R.id, T.id, (R.a0 + T.a0) AS c0 FROM R R, T T \
                  WHERE R.k = T.k PREFERRING LOWEST(c0)"
                .into(),
        },
        ClientFrame::Unsubscribe { sub_id: 42 },
        ClientFrame::Push(PushFrame {
            sub_id: 1,
            source: SourceId::R,
            rows: vec![
                PushRow {
                    attrs: vec![1.0, 2.0],
                    key: 9,
                },
                PushRow {
                    attrs: vec![3.5, -0.25],
                    key: 10,
                },
            ],
            watermark: Some(vec![1.0, -0.25]),
            close: false,
        }),
        ClientFrame::Push(PushFrame {
            sub_id: 2,
            source: SourceId::T,
            rows: Vec::new(),
            watermark: Some(vec![5.0]),
            close: false,
        }),
        ClientFrame::Push(PushFrame {
            sub_id: 3,
            source: SourceId::T,
            rows: Vec::new(),
            watermark: None,
            close: true,
        }),
    ]
}

/// One representative of every server frame variant.
fn server_corpus() -> Vec<ServerFrame> {
    let batch = BatchFrame {
        progress: 0.75,
        proven_final: true,
        tuples: vec![WireTuple {
            r_idx: 3,
            t_idx: 8,
            values: vec![1.5, 2.5],
        }],
    };
    vec![
        ServerFrame::Hello { version: 2 },
        ServerFrame::Accepted {
            columns: vec!["c0".into(), "c1".into()],
        },
        ServerFrame::Batch(batch.clone()),
        ServerFrame::Done(DoneFrame {
            cancelled: false,
            results: 12,
            elapsed_us: 3456,
        }),
        ServerFrame::Error {
            code: ErrorCode::BadQuery,
            message: "no".into(),
        },
        ServerFrame::SubAccepted {
            sub_id: 42,
            columns: vec!["c0".into()],
        },
        ServerFrame::Update { sub_id: 42, batch },
        ServerFrame::SubDone {
            sub_id: 42,
            done: DoneFrame {
                cancelled: true,
                results: 0,
                elapsed_us: 17,
            },
        },
        ServerFrame::SubError {
            sub_id: 42,
            code: ErrorCode::Internal,
            message: "engine failure".into(),
        },
    ]
}

fn encode_client(frame: &ClientFrame) -> Vec<u8> {
    let mut buf = Vec::new();
    write_client_frame(&mut buf, frame).expect("corpus frames encode");
    buf
}

fn encode_server(frame: &ServerFrame) -> Vec<u8> {
    let mut buf = Vec::new();
    write_server_frame(&mut buf, frame).expect("corpus frames encode");
    buf
}

/// Both decoders over one byte string: whatever happens must be a value
/// or a typed error — a panic fails the test by unwinding, and a runaway
/// allocation would be caught by the frame-length cap.
fn decode_both(bytes: &[u8]) {
    let kinds = [
        read_client_frame(&mut Cursor::new(bytes))
            .err()
            .map(|e| e.kind()),
        read_server_frame(&mut Cursor::new(bytes))
            .err()
            .map(|e| e.kind()),
    ];
    for kind in kinds.into_iter().flatten() {
        assert!(
            matches!(kind, ErrorKind::UnexpectedEof | ErrorKind::InvalidData),
            "decoder returned an untyped error kind {kind:?}"
        );
    }
}

#[test]
fn arbitrary_bytes_never_panic_and_fail_typed() {
    let mut rng = StdRng::seed_from_u64(0xF0DD);
    for _ in 0..2_000 {
        let len = rng.gen_range(0usize..96);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        decode_both(&bytes);
    }
}

#[test]
fn every_truncation_of_every_valid_frame_fails_typed() {
    for frame in client_corpus() {
        let bytes = encode_client(&frame);
        for cut in 0..bytes.len() {
            let err = read_client_frame(&mut Cursor::new(&bytes[..cut]))
                .expect_err("a truncated frame must not decode");
            assert!(
                matches!(
                    err.kind(),
                    ErrorKind::UnexpectedEof | ErrorKind::InvalidData
                ),
                "truncation at {cut}/{} of {frame:?}: {err}",
                bytes.len()
            );
        }
        let roundtrip = read_client_frame(&mut Cursor::new(&bytes)).expect("full frame decodes");
        assert_eq!(roundtrip, frame);
    }
    for frame in server_corpus() {
        let bytes = encode_server(&frame);
        for cut in 0..bytes.len() {
            let err = read_server_frame(&mut Cursor::new(&bytes[..cut]))
                .expect_err("a truncated frame must not decode");
            assert!(
                matches!(
                    err.kind(),
                    ErrorKind::UnexpectedEof | ErrorKind::InvalidData
                ),
                "truncation at {cut}/{} of {frame:?}: {err}",
                bytes.len()
            );
        }
        let roundtrip = read_server_frame(&mut Cursor::new(&bytes)).expect("full frame decodes");
        assert_eq!(roundtrip, frame);
    }
}

#[test]
fn single_byte_mutations_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let client: Vec<Vec<u8>> = client_corpus().iter().map(encode_client).collect();
    let server: Vec<Vec<u8>> = server_corpus().iter().map(encode_server).collect();
    for bytes in client.iter().chain(&server) {
        for _ in 0..400 {
            let mut mutated = bytes.clone();
            let pos = rng.gen_range(0usize..mutated.len());
            mutated[pos] ^= (rng.next_u64() as u8) | 1; // guaranteed change
            decode_both(&mutated);
        }
    }
}

#[test]
fn oversized_length_headers_are_rejected_before_allocation() {
    // tag + a length field past the cap, no payload at all: the decoder
    // must refuse with InvalidData instead of trying to allocate or
    // blocking for a body that will never come.
    for over in [MAX_FRAME_LEN as u64 + 1, u32::MAX as u64] {
        let mut bytes = vec![0x01u8];
        bytes.extend_from_slice(&(over as u32).to_be_bytes());
        let err = read_client_frame(&mut Cursor::new(&bytes)).expect_err("must reject");
        assert_eq!(err.kind(), ErrorKind::InvalidData, "len {over}: {err}");
        let err = read_server_frame(&mut Cursor::new(&bytes)).expect_err("must reject");
        assert_eq!(err.kind(), ErrorKind::InvalidData, "len {over}: {err}");
    }
}

#[test]
fn advertised_row_counts_beyond_the_payload_are_rejected_cheaply() {
    // A push frame whose count field claims 2^31 rows but whose payload
    // holds two: the decoder's pre-allocation bound must reject it
    // (typed) rather than reserve gigabytes.
    let frame = ClientFrame::Push(PushFrame {
        sub_id: 5,
        source: SourceId::R,
        rows: vec![
            PushRow {
                attrs: vec![1.0],
                key: 1,
            },
            PushRow {
                attrs: vec![2.0],
                key: 2,
            },
        ],
        watermark: None,
        close: false,
    });
    let mut bytes = encode_client(&frame);
    // Payload layout: sub_id u64 · source u8 · flags u8 · dims u16 · count
    // u32 — the count lives at payload offset 12, i.e. 5 + 12 in the frame.
    let count_at = 5 + 8 + 1 + 1 + 2;
    bytes[count_at..count_at + 4].copy_from_slice(&(1u32 << 31).to_be_bytes());
    let err = read_client_frame(&mut Cursor::new(&bytes)).expect_err("must reject");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("row count"),
        "typed message: {err}"
    );
}
