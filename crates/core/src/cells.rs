//! Tracked output cells and tuple-level dominance maintenance
//! (Section III-B).
//!
//! Every output-grid cell covered by a live region is *tracked*. Tuples are
//! inserted one at a time; the store maintains the invariant that **the live
//! tuple set is exactly the skyline of all tuples inserted so far**:
//!
//! * a new tuple is rejected if its cell is dead, or if a tuple in a
//!   *comparable* cell dominates it (comparable = the `d` coordinate slabs —
//!   the `k^d − (k−1)^d` bound of Section III-B);
//! * an admitted tuple evicts existing tuples it dominates (slab scan in the
//!   other direction) and kills *fully dominated* populated cells wholesale;
//! * cell-level full dominance is tracked through the *populated-cell
//!   skyline*: the set of populated cells not fully dominated by another
//!   populated cell. A cell that is fully dominated is dead — every tuple it
//!   could ever hold is dominated by any tuple of the dominator.
//!
//! Slab indices over *populated* cells keep each insertion's candidate set
//! close to the theoretical bound instead of scanning the whole grid.

use crate::fdom::DominanceModel;
use crate::fxhash::FxHashMap;
use crate::output_grid::{full_dominates, pack, weak_leq, Coord, OutputGrid};
use progxe_skyline::{kernel, PointStore};

/// Work counters for tuple-level processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Pairwise dominance tests between tuples.
    pub dominance_tests: u64,
    /// Tuples admitted into cells.
    pub tuples_inserted: u64,
    /// Tuples rejected because a live tuple dominates them.
    pub tuples_rejected_dominated: u64,
    /// Tuples rejected because their cell is dead (no comparison needed —
    /// the paper's "discarded without performing any dominance comparisons").
    pub tuples_rejected_dead_cell: u64,
    /// Previously admitted tuples evicted by newer dominating tuples.
    pub tuples_evicted: u64,
    /// Cells killed wholesale by full dominance.
    pub cells_killed: u64,
    /// Populated comparable cells actually examined across all insertions
    /// (the measured counterpart of the `k^d − (k−1)^d` bound).
    pub comparable_cells_visited: u64,
    /// Largest comparable-cell set examined by a single insertion.
    pub comparable_cells_max: u64,
    /// Pareto-optimal tuples removed from emission by the flexible-model
    /// filter (0 under the Pareto model) — the measured result-set
    /// shrinkage of a flexible skyline.
    pub tuples_fdom_filtered: u64,
    /// Pairwise tests evaluated through the batched kernels (a subset of
    /// `dominance_tests`); advances at chunk granularity on early-exit
    /// scans.
    pub dominance_pairs: u64,
    /// Vertex dot products evaluated for flexible-model projections
    /// (emission filter; 0 under Pareto).
    pub fdom_vertex_evals: u64,
    /// Cells whose members the flexible emission filter actually compared
    /// against (i.e. that survived the projection-bound prefix + guard).
    /// Bounded above by populated cells × filter calls; the slab index
    /// keeps it far below that.
    pub fdom_filter_cells_visited: u64,
}

/// One tracked output cell (`O_h` in the paper).
#[derive(Debug)]
pub struct Cell {
    coord: Coord,
    /// `(r_idx, t_idx)` of surviving tuples, parallel to `points`.
    ids: Vec<(u32, u32)>,
    /// Oriented output values of surviving tuples.
    points: PointStore,
    populated: bool,
    dead: bool,
    emitted: bool,
    /// Visit stamp for O(1) slab-union deduplication during insertion.
    last_visit: u64,
}

impl Cell {
    fn new(coord: Coord, dims: usize) -> Self {
        Self {
            coord,
            ids: Vec::new(),
            points: PointStore::new(dims),
            populated: false,
            dead: false,
            emitted: false,
            last_visit: 0,
        }
    }

    /// Grid coordinate of this cell.
    #[inline]
    pub fn coord(&self) -> &Coord {
        &self.coord
    }

    /// Surviving tuple ids.
    #[inline]
    pub fn ids(&self) -> &[(u32, u32)] {
        &self.ids
    }

    /// Surviving tuple values (oriented), parallel to [`Cell::ids`].
    #[inline]
    pub fn points(&self) -> &PointStore {
        &self.points
    }

    /// Number of surviving tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no tuples survive in the cell.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether any tuple was ever admitted.
    #[inline]
    pub fn is_populated(&self) -> bool {
        self.populated
    }

    /// Whether the cell is dominated and can never contribute results.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether the cell's results were already emitted.
    #[inline]
    pub fn is_emitted(&self) -> bool {
        self.emitted
    }
}

/// The tracked-cell store.
#[derive(Debug)]
pub struct CellStore {
    grid: OutputGrid,
    /// The query's dominance model. The live-set invariant is maintained
    /// under **Pareto** regardless (a sound superset for any flexible
    /// model, since Pareto dominance implies F-dominance); a flexible
    /// model additionally filters tuples at emission time
    /// ([`CellStore::filter_emitted`]).
    model: DominanceModel,
    cells: Vec<Cell>,
    by_key: FxHashMap<u128, u32>,
    /// Per-dimension slab index: coordinate value → populated cell indices.
    slabs: Vec<FxHashMap<u16, Vec<u32>>>,
    /// Populated cells not fully dominated by another populated cell.
    cell_skyline: Vec<u32>,
    /// Cells that entered `cell_skyline` since the last drain — consumed by
    /// the executor's eager dead-region sweep (Algorithm 1, line 9).
    fresh_skyline: Vec<u32>,
    stats: CellStats,
    /// Reused candidate buffer for slab-union enumeration.
    scratch_candidates: Vec<u32>,
    /// Monotone visit counter paired with `Cell::last_visit`.
    visit_epoch: u64,
    /// Cached per-cell lower-corner vertex projections for the flexible
    /// emission filter (`cells × vertex_count`, rebuilt when stale).
    fdom_cell_proj: Vec<f64>,
    /// Cell indices sorted by first projected corner coordinate — the
    /// emission filter's prefix bound (rebuilt with `fdom_cell_proj`).
    fdom_filter_order: Vec<u32>,
    /// First projected corner coordinate per `fdom_filter_order` entry,
    /// ascending, for binary-searching the reachable prefix.
    fdom_filter_keys: Vec<f64>,
    /// Reused eviction mask for the batched dominated-row scans.
    scratch_mask: Vec<bool>,
    /// Reused keep flags for the emission filter.
    scratch_keep: Vec<bool>,
    /// Reused candidate-tuple projections for the emission filter.
    fdom_tuple_proj: Vec<f64>,
    /// Reused per-cell member projections for the emission filter.
    fdom_member_proj: Vec<f64>,
    /// Reused single-point projection buffer.
    proj_tmp: Vec<f64>,
}

impl CellStore {
    /// Creates a store over the given oriented grid, under classical
    /// Pareto dominance.
    pub fn new(grid: OutputGrid) -> Self {
        Self::with_model(grid, DominanceModel::Pareto)
    }

    /// Creates a store over the given oriented grid under an explicit
    /// dominance model. Internal skyline maintenance always runs under
    /// Pareto (the sound superset); the model drives the emission-time
    /// filter for flexible skylines.
    pub fn with_model(grid: OutputGrid, model: DominanceModel) -> Self {
        let dims = grid.dims();
        Self {
            grid,
            model,
            cells: Vec::new(),
            by_key: FxHashMap::default(),
            slabs: vec![FxHashMap::default(); dims],
            cell_skyline: Vec::new(),
            fresh_skyline: Vec::new(),
            stats: CellStats::default(),
            scratch_candidates: Vec::new(),
            visit_epoch: 0,
            fdom_cell_proj: Vec::new(),
            fdom_filter_order: Vec::new(),
            fdom_filter_keys: Vec::new(),
            scratch_mask: Vec::new(),
            scratch_keep: Vec::new(),
            fdom_tuple_proj: Vec::new(),
            fdom_member_proj: Vec::new(),
            proj_tmp: Vec::new(),
        }
    }

    /// The dominance model the store emits under.
    #[inline]
    pub fn model(&self) -> &DominanceModel {
        &self.model
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &OutputGrid {
        &self.grid
    }

    /// Registers a cell as tracked (idempotent); returns its index.
    pub fn track(&mut self, coord: Coord) -> u32 {
        let key = pack(&coord);
        if let Some(&idx) = self.by_key.get(&key) {
            return idx;
        }
        let idx = self.cells.len() as u32;
        self.cells.push(Cell::new(coord, self.grid.dims()));
        self.by_key.insert(key, idx);
        idx
    }

    /// Number of tracked cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing is tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell by index.
    #[inline]
    pub fn cell(&self, idx: u32) -> &Cell {
        &self.cells[idx as usize]
    }

    /// Index of the cell at `coord`, if tracked.
    pub fn find(&self, coord: &Coord) -> Option<u32> {
        self.by_key.get(&pack(coord)).copied()
    }

    /// Work counters.
    #[inline]
    pub fn stats(&self) -> CellStats {
        self.stats
    }

    /// Credits batched dominance work done on the store's behalf by other
    /// phases (e.g. look-ahead cell pre-marking) so it shows up in the
    /// same counters as the store's own kernel passes.
    pub(crate) fn note_dominance_pairs(&mut self, pairs: u64) {
        self.stats.dominance_tests += pairs;
        self.stats.dominance_pairs += pairs;
    }

    /// Current populated-cell skyline size (diagnostics).
    pub fn skyline_len(&self) -> usize {
        self.cell_skyline.len()
    }

    /// Marks a cell dead without inserting anything (used by look-ahead
    /// pre-marking against the pessimistic skyline).
    pub fn mark_dead(&mut self, idx: u32) {
        let cell = &mut self.cells[idx as usize];
        debug_assert!(
            !cell.emitted,
            "an emitted cell can never become dominated (emission proved finality)"
        );
        if !cell.dead {
            cell.dead = true;
            self.stats.cells_killed += 1;
            self.stats.tuples_evicted += cell.ids.len() as u64;
            cell.ids.clear();
            cell.points.clear();
        }
    }

    /// Marks a cell emitted and returns a copy of its surviving tuples.
    ///
    /// The tuples deliberately *stay* in the store: they are final skyline
    /// members, and future insertions into comparable cells must still be
    /// tested against them. (Nothing can ever evict them — emission proved
    /// no future tuple dominates them.)
    pub fn take_emitted(&mut self, idx: u32) -> (Vec<(u32, u32)>, PointStore) {
        let cell = &mut self.cells[idx as usize];
        debug_assert!(!cell.emitted, "cell emitted twice");
        cell.emitted = true;
        (cell.ids.clone(), cell.points.clone())
    }

    /// Flexible-model emission filter: drops tuples of an about-to-emit
    /// cell that are **F-dominated** by some live tuple of the store. A
    /// no-op under the Pareto model (where live already means
    /// non-dominated).
    ///
    /// Correctness rests on the composition property (see [`crate::fdom`]):
    /// every produced tuple that F-dominates an emission candidate is
    /// either live itself or Pareto-dominated by a live tuple that also
    /// F-dominates the candidate — so testing against the live set is
    /// complete. The strengthened blocker counts of
    /// [`crate::progdetermine::ProgDetermine`] guarantee no *future* tuple
    /// can F-dominate anything emitted here, preserving no-retraction.
    ///
    /// Unlike Pareto maintenance, F-dominance is not confined to the
    /// coordinate slabs (a dominator may sit in a Pareto-incomparable
    /// cell), so candidate dominators are found through a *vertex-projection
    /// slab index*: cells sorted by their lower corner's first projected
    /// coordinate. Weights are non-negative, so every member of a cell
    /// projects component-wise ≥ the cell's projected corner; a cell whose
    /// first corner projection exceeds every candidate's first tuple
    /// projection can hold no weak F-dominator and the sorted order cuts
    /// the scan to a binary-searched prefix. Cells inside the prefix are
    /// still pre-screened per tuple on the remaining projected coordinates,
    /// and only cells that pass for some tuple have their members projected
    /// and compared (batched, counted in
    /// [`CellStats::fdom_filter_cells_visited`]).
    pub fn filter_emitted(&mut self, ids: &mut Vec<(u32, u32)>, points: &mut PointStore) {
        let fdom = match &self.model {
            DominanceModel::Pareto => return,
            DominanceModel::Flexible(f) => std::sync::Arc::clone(f),
        };
        let k = fdom.vertex_count();
        // (Re)build the per-cell lower-corner projections and the sorted
        // first-coordinate index when cells were tracked since the last
        // filter call (all tracking happens during setup, so in practice
        // this runs once per query). Cell geometry is immutable, so the
        // index never goes stale otherwise.
        if self.fdom_cell_proj.len() != self.cells.len() * k {
            let mut proj = Vec::with_capacity(self.cells.len() * k);
            let mut buf = Vec::with_capacity(k);
            let mut corner = Vec::new();
            for cell in &self.cells {
                self.grid.lower_corner_into(&cell.coord, &mut corner);
                fdom.project_into(&corner, &mut buf);
                proj.extend_from_slice(&buf);
            }
            self.fdom_cell_proj = proj;
            let mut order: Vec<u32> = (0..self.cells.len() as u32).collect();
            order.sort_by(|&a, &b| {
                self.fdom_cell_proj[a as usize * k].total_cmp(&self.fdom_cell_proj[b as usize * k])
            });
            self.fdom_filter_keys = order
                .iter()
                .map(|&ci| self.fdom_cell_proj[ci as usize * k])
                .collect();
            self.fdom_filter_order = order;
        }

        let n = ids.len();
        // Project every candidate once.
        let mut tuple_proj = std::mem::take(&mut self.fdom_tuple_proj);
        let mut tmp = std::mem::take(&mut self.proj_tmp);
        tuple_proj.clear();
        tuple_proj.reserve(n * k);
        for t in points.iter() {
            fdom.project_into(t, &mut tmp);
            tuple_proj.extend_from_slice(&tmp);
        }
        let mut vertex_evals = (n * k) as u64;

        // Reachable prefix: a cell can weakly F-dominate some candidate
        // only if its first corner projection is ≤ the max first tuple
        // projection. NaN projections (NaN-valued tuples) disable the
        // bound rather than mis-pruning.
        let mut max0 = f64::NEG_INFINITY;
        let mut has_nan = false;
        for i in 0..n {
            let v = tuple_proj[i * k];
            if v.is_nan() {
                has_nan = true;
            } else {
                max0 = max0.max(v);
            }
        }
        let prefix = if has_nan {
            self.fdom_filter_order.len()
        } else {
            self.fdom_filter_keys.partition_point(|&key| key <= max0)
        };

        let mut keep = std::mem::take(&mut self.scratch_keep);
        keep.clear();
        keep.resize(n, true);
        let mut member_proj = std::mem::take(&mut self.fdom_member_proj);
        let mut dropped = 0usize;
        let mut pairs = 0u64;
        let mut cells_visited = 0u64;
        for &ci in &self.fdom_filter_order[..prefix] {
            if dropped == n {
                break;
            }
            let cell = &self.cells[ci as usize];
            if cell.points.is_empty() {
                continue;
            }
            let cproj = &self.fdom_cell_proj[ci as usize * k..(ci as usize + 1) * k];
            let mut projected = false;
            for i in 0..n {
                if !keep[i] {
                    continue;
                }
                let pt = &tuple_proj[i * k..(i + 1) * k];
                if cproj.iter().zip(pt).any(|(c, p)| c > p) {
                    // No member of this cell can weakly F-dominate t.
                    continue;
                }
                if !projected {
                    projected = true;
                    cells_visited += 1;
                    member_proj.clear();
                    member_proj.reserve(cell.points.len() * k);
                    for u in cell.points.iter() {
                        fdom.project_into(u, &mut tmp);
                        member_proj.extend_from_slice(&tmp);
                    }
                    vertex_evals += (cell.points.len() * k) as u64;
                }
                if kernel::any_dominates(k, &member_proj, pt, &mut pairs) {
                    keep[i] = false;
                    dropped += 1;
                }
            }
        }
        self.stats.dominance_tests += pairs;
        self.stats.dominance_pairs += pairs;
        self.stats.fdom_vertex_evals += vertex_evals;
        self.stats.fdom_filter_cells_visited += cells_visited;
        self.fdom_tuple_proj = tuple_proj;
        self.fdom_member_proj = member_proj;
        self.proj_tmp = tmp;

        if dropped > 0 {
            self.stats.tuples_fdom_filtered += dropped as u64;
            let mut next = 0usize;
            ids.retain(|_| {
                let keep_it = keep[next];
                next += 1;
                keep_it
            });
            points.compact(&keep);
        }
        self.scratch_keep = keep;
    }

    /// Whether an (unprocessed) region with the given box lower corner is
    /// entirely dominated by a populated cell — Algorithm 1's line 9 test.
    /// A populated cell `s` kills the whole box iff it fully dominates the
    /// box's best cell, `cell_lo`.
    pub fn region_is_dead(&self, cell_lo: &Coord) -> bool {
        let dims = self.grid.dims();
        self.cell_skyline
            .iter()
            .any(|&s| full_dominates(&self.cells[s as usize].coord, cell_lo, dims))
    }

    /// Drains the cells that entered the populated-cell skyline since the
    /// previous drain (for incremental dead-region sweeps).
    pub fn drain_fresh_skyline(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.fresh_skyline)
    }

    /// Coordinate of a (possibly dead) cell index — valid for entries
    /// returned by [`CellStore::drain_fresh_skyline`].
    pub fn coord_of(&self, idx: u32) -> &Coord {
        &self.cells[idx as usize].coord
    }

    /// Inserts one mapped join result (oriented values). Returns `true`
    /// when the tuple was admitted.
    ///
    /// # Panics
    /// Panics if the tuple falls into an untracked cell — the look-ahead
    /// phase must have tracked every cell of every live region's box.
    #[allow(clippy::needless_range_loop)] // `d` indexes two parallel arrays
    pub fn insert(&mut self, r_idx: u32, t_idx: u32, oriented: &[f64]) -> bool {
        let coord = self.grid.cell_of(oriented);
        let idx = self
            .find(&coord)
            .expect("tuple mapped into an untracked cell: look-ahead box invariant violated");
        let dims = self.grid.dims();

        // 1. Dead cell: discard without any dominance comparison.
        if self.cells[idx as usize].dead {
            self.stats.tuples_rejected_dead_cell += 1;
            return false;
        }
        // 2. First tuple of a cell: lazily check full dominance against the
        //    populated-cell skyline.
        if !self.cells[idx as usize].populated {
            let dominated = self
                .cell_skyline
                .iter()
                .any(|&s| full_dominates(&self.cells[s as usize].coord, &coord, dims));
            if dominated {
                self.cells[idx as usize].dead = true;
                self.stats.cells_killed += 1;
                self.stats.tuples_rejected_dead_cell += 1;
                return false;
            }
        }

        // 3. Check the new tuple against tuples in comparable cells
        //    (slab union, weak-≤ filtered — includes this cell itself).
        //    Deduplication across slabs uses per-cell visit stamps, which
        //    profiled far cheaper than hashing on this hot path.
        self.visit_epoch += 1;
        let epoch = self.visit_epoch;
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        for d in 0..dims {
            if let Some(slab) = self.slabs[d].get(&coord[d]) {
                for &cand in slab {
                    let cell = &mut self.cells[cand as usize];
                    if cell.last_visit != epoch {
                        cell.last_visit = epoch;
                        candidates.push(cand);
                    }
                }
            }
        }
        let mut rejected = false;
        let mut cells_examined = 0u64;
        let mut pairs = 0u64;
        for &cand in &candidates {
            let cell = &self.cells[cand as usize];
            if cell.dead || !weak_leq(&cell.coord, &coord, dims) {
                continue;
            }
            cells_examined += 1;
            // Cell tuples are stored oriented (all-lowest), so the batched
            // many-vs-one kernel scans the cell's flat buffer directly.
            if kernel::any_dominates(dims, cell.points.raw(), oriented, &mut pairs) {
                rejected = true;
                break;
            }
        }
        self.stats.comparable_cells_visited += cells_examined;
        self.stats.comparable_cells_max = self.stats.comparable_cells_max.max(cells_examined);
        if rejected {
            self.scratch_candidates = candidates;
            self.stats.dominance_tests += pairs;
            self.stats.dominance_pairs += pairs;
            self.stats.tuples_rejected_dominated += 1;
            return false;
        }

        // 4. Evict live tuples the new one dominates (reverse slab scan).
        //    Emitted cells are skipped: their tuples are proven final, so
        //    nothing can dominate them (and their ids are already shipped).
        //    One batched dominated-mask per cell; the mask is replayed as
        //    left-to-right `swap_remove`s, reproducing the historical
        //    scan-with-retest order of the cell's survivors exactly.
        let mut mask = std::mem::take(&mut self.scratch_mask);
        for &cand in &candidates {
            let cell = &mut self.cells[cand as usize];
            if cell.dead || cell.emitted || !weak_leq(&coord, &cell.coord, dims) {
                continue;
            }
            mask.clear();
            mask.resize(cell.points.len(), false);
            let hits =
                kernel::dominated_mask(dims, cell.points.raw(), oriented, &mut mask, &mut pairs);
            if hits > 0 {
                let mut i = 0;
                while i < mask.len() {
                    if mask[i] {
                        mask.swap_remove(i);
                        cell.points.swap_remove(i);
                        cell.ids.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                self.stats.tuples_evicted += hits as u64;
            }
        }
        self.scratch_mask = mask;
        self.scratch_candidates = candidates;
        self.stats.dominance_tests += pairs;
        self.stats.dominance_pairs += pairs;

        // 5. Admit the tuple; on first population update slab indices and
        //    the populated-cell skyline (killing fully dominated cells).
        let newly_populated = !self.cells[idx as usize].populated;
        {
            let cell = &mut self.cells[idx as usize];
            cell.ids.push((r_idx, t_idx));
            cell.points.push(oriented);
            cell.populated = true;
        }
        self.stats.tuples_inserted += 1;
        if newly_populated {
            for d in 0..dims {
                self.slabs[d].entry(coord[d]).or_default().push(idx);
            }
            // Evict skyline cells this one fully dominates; they die.
            let mut s = 0;
            while s < self.cell_skyline.len() {
                let victim = self.cell_skyline[s];
                if full_dominates(&coord, &self.cells[victim as usize].coord, dims) {
                    self.cell_skyline.swap_remove(s);
                    self.mark_dead(victim);
                } else {
                    s += 1;
                }
            }
            self.cell_skyline.push(idx);
            self.fresh_skyline.push(idx);
        }
        true
    }

    /// Iterates over tracked cells with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (i as u32, c))
    }

    /// Total surviving tuples across all cells (diagnostics).
    pub fn live_tuples(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.emitted)
            .map(|c| c.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_grid::MAX_DIMS;

    fn store_10x10() -> CellStore {
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut s = CellStore::new(grid);
        // Track everything for these unit tests.
        for x in 0..10u16 {
            for y in 0..10u16 {
                let mut c: Coord = [0; MAX_DIMS];
                c[0] = x;
                c[1] = y;
                s.track(c);
            }
        }
        s
    }

    #[test]
    fn track_is_idempotent() {
        let grid = OutputGrid::new(vec![0.0], vec![1.0], 4);
        let mut s = CellStore::new(grid);
        let mut c: Coord = [0; MAX_DIMS];
        c[0] = 2;
        let a = s.track(c);
        let b = s.track(c);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_and_survive() {
        let mut s = store_10x10();
        assert!(s.insert(1, 2, &[5.5, 5.5]));
        assert_eq!(s.stats().tuples_inserted, 1);
        let idx = s.find(&s.grid().cell_of(&[5.5, 5.5])).unwrap();
        assert_eq!(s.cell(idx).ids(), &[(1, 2)]);
    }

    #[test]
    fn dominated_insert_rejected_same_cell() {
        let mut s = store_10x10();
        assert!(s.insert(0, 0, &[5.1, 5.1]));
        assert!(!s.insert(1, 1, &[5.4, 5.4]), "same cell, dominated");
        assert_eq!(s.stats().tuples_rejected_dominated, 1);
    }

    #[test]
    fn dominated_insert_rejected_by_slab_neighbor() {
        let mut s = store_10x10();
        // (2.5, 5.5) is in cell (2,5); (7.5, 5.5) in cell (7,5): same row —
        // a partial dominator, so the comparison must happen.
        assert!(s.insert(0, 0, &[2.5, 5.5]));
        assert!(!s.insert(1, 1, &[7.5, 5.5]));
    }

    #[test]
    fn full_dominance_kills_cell_on_population() {
        let mut s = store_10x10();
        assert!(s.insert(0, 0, &[9.5, 9.5])); // cell (9,9)
        assert!(s.insert(1, 1, &[1.5, 1.5])); // cell (1,1) fully dominates (9,9)
        let victim = s.find(&s.grid().cell_of(&[9.5, 9.5])).unwrap();
        assert!(s.cell(victim).is_dead());
        assert!(s.cell(victim).is_empty(), "tuples purged");
        assert_eq!(s.stats().cells_killed, 1);
        // Future arrivals into the dead cell are rejected without tests.
        let tests_before = s.stats().dominance_tests;
        assert!(!s.insert(2, 2, &[9.4, 9.4]));
        assert_eq!(s.stats().dominance_tests, tests_before);
        assert_eq!(s.stats().tuples_rejected_dead_cell, 1);
    }

    #[test]
    fn lazy_death_on_first_insert() {
        let mut s = store_10x10();
        assert!(s.insert(0, 0, &[1.5, 1.5]));
        // Cell (8,8) was never populated; first insert discovers it's dead.
        assert!(!s.insert(1, 1, &[8.5, 8.5]));
        let idx = s.find(&s.grid().cell_of(&[8.5, 8.5])).unwrap();
        assert!(s.cell(idx).is_dead());
    }

    #[test]
    fn eviction_removes_dominated_neighbors() {
        let mut s = store_10x10();
        assert!(s.insert(0, 0, &[7.5, 5.5])); // cell (7,5)
        assert!(s.insert(1, 1, &[2.5, 5.5])); // same row, dominates the first
        let victim = s.find(&s.grid().cell_of(&[7.5, 5.5])).unwrap();
        assert!(s.cell(victim).is_empty());
        assert_eq!(s.stats().tuples_evicted, 1);
        assert!(
            !s.cell(victim).is_dead(),
            "partial dominance evicts tuples, not cells"
        );
    }

    #[test]
    fn incomparable_tuples_coexist() {
        let mut s = store_10x10();
        assert!(s.insert(0, 0, &[2.5, 7.5]));
        assert!(s.insert(1, 1, &[7.5, 2.5]));
        assert_eq!(s.live_tuples(), 2);
    }

    #[test]
    fn equal_tuples_coexist() {
        let mut s = store_10x10();
        assert!(s.insert(0, 0, &[5.5, 5.5]));
        assert!(s.insert(1, 1, &[5.5, 5.5]));
        assert_eq!(s.live_tuples(), 2);
    }

    #[test]
    fn live_set_is_always_skyline_of_inserted() {
        // Deterministic pseudo-random stress: after each insert, the live
        // tuples must equal the skyline of everything inserted so far.
        let mut s = store_10x10();
        let pref = progxe_skyline::Preference::all_lowest(2);
        let mut inserted: Vec<[f64; 2]> = Vec::new();
        let mut x: u64 = 42;
        for i in 0..300u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 33) % 100) as f64 / 10.0;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((x >> 33) % 100) as f64 / 10.0;
            s.insert(i, i, &[a, b]);
            inserted.push([a, b]);

            let mut live: Vec<[f64; 2]> = Vec::new();
            for (_, cell) in s.iter() {
                for p in cell.points().iter() {
                    live.push([p[0], p[1]]);
                }
            }
            let expected: Vec<[f64; 2]> = inserted
                .iter()
                .filter(|p| !inserted.iter().any(|q| pref.dominates(&q[..], &p[..])))
                .copied()
                .collect();
            let mut live_s = live.clone();
            let mut exp_s = expected.clone();
            live_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            exp_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(live_s, exp_s, "diverged after {} inserts", i + 1);
        }
    }

    #[test]
    fn region_is_dead_via_skyline() {
        let mut s = store_10x10();
        let mut lo: Coord = [0; MAX_DIMS];
        lo[0] = 5;
        lo[1] = 5;
        assert!(!s.region_is_dead(&lo));
        s.insert(0, 0, &[1.5, 1.5]); // populates (1,1), fully dominates (5,5)
        assert!(s.region_is_dead(&lo));
        let mut edge: Coord = [0; MAX_DIMS];
        edge[0] = 1;
        edge[1] = 5;
        assert!(
            !s.region_is_dead(&edge),
            "shares a slab — not fully dominated"
        );
    }

    #[test]
    fn fresh_skyline_drains_incrementally() {
        let mut s = store_10x10();
        s.insert(0, 0, &[5.5, 5.5]);
        assert_eq!(s.drain_fresh_skyline().len(), 1);
        assert!(s.drain_fresh_skyline().is_empty());
        s.insert(1, 1, &[5.6, 5.6]); // same cell: no new skyline entry
        assert!(s.drain_fresh_skyline().is_empty());
        s.insert(2, 2, &[2.5, 7.5]); // new cell
        assert_eq!(s.drain_fresh_skyline().len(), 1);
    }

    #[test]
    fn flexible_filter_drops_fdominated_emissions() {
        use crate::fdom::{DominanceModel, FDominance, WeightConstraint};
        // Weights confined near (0.5, 0.5): (2, 2.5) F-dominates (8, 0.5)
        // (scores ~2.25 vs ~4.25) although the two are Pareto-incomparable
        // and live in slab-incomparable cells.
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.45),
                WeightConstraint::at_most(2, 0, 0.55),
            ],
        )
        .unwrap();
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut s = CellStore::with_model(grid.clone(), DominanceModel::flexible(fdom));
        for x in 0..10u16 {
            for y in 0..10u16 {
                let mut c: Coord = [0; MAX_DIMS];
                c[0] = x;
                c[1] = y;
                s.track(c);
            }
        }
        assert!(s.insert(0, 0, &[2.0, 2.5]));
        assert!(s.insert(1, 1, &[8.0, 0.5]), "Pareto keeps the trade-off");

        let idx = s.find(&s.grid().cell_of(&[8.0, 0.5])).unwrap();
        let (mut ids, mut points) = s.take_emitted(idx);
        s.filter_emitted(&mut ids, &mut points);
        assert!(ids.is_empty(), "F-dominated tuple must not be emitted");
        assert_eq!(s.stats().tuples_fdom_filtered, 1);

        let idx = s.find(&s.grid().cell_of(&[2.0, 2.5])).unwrap();
        let (mut ids, mut points) = s.take_emitted(idx);
        s.filter_emitted(&mut ids, &mut points);
        assert_eq!(ids, vec![(0, 0)], "the dominator itself survives");
    }

    #[test]
    fn flexible_filter_prunes_unreachable_cells() {
        use crate::fdom::{DominanceModel, FDominance, WeightConstraint};
        // Populate a diagonal band of mutually Pareto-incomparable cells,
        // then filter a candidate from the *best* corner of the band. Cells
        // whose projected corner already exceeds the candidate's projection
        // sit beyond the prefix bound and must never be visited — the
        // retired PR 5 implementation scanned every populated cell instead.
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.45),
                WeightConstraint::at_most(2, 0, 0.55),
            ],
        )
        .unwrap();
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![32.0, 32.0], 32);
        let mut s = CellStore::with_model(grid.clone(), DominanceModel::flexible(fdom));
        for x in 0..32u16 {
            for y in 0..32u16 {
                let mut c: Coord = [0; MAX_DIMS];
                c[0] = x;
                c[1] = y;
                s.track(c);
            }
        }
        let mut populated = 0u64;
        for i in 0..32u32 {
            let v = i as f64 + 0.5;
            if s.insert(i, i, &[v, 32.0 - v]) {
                populated += 1;
            }
        }
        assert!(populated >= 16, "anti-diagonal must co-exist under Pareto");
        // Candidate near the low corner: only similarly-projected cells can
        // hold an F-dominator for it.
        let idx = s.find(&s.grid().cell_of(&[0.5, 31.5])).unwrap();
        let (mut ids, mut points) = s.take_emitted(idx);
        let visited_before = s.stats().fdom_filter_cells_visited;
        s.filter_emitted(&mut ids, &mut points);
        let visited = s.stats().fdom_filter_cells_visited - visited_before;
        assert!(
            visited < populated,
            "prefix bound degenerated to a full scan: {visited} of {populated} cells"
        );
    }

    #[test]
    fn pareto_filter_is_a_no_op() {
        let mut s = store_10x10();
        assert!(s.insert(0, 0, &[2.5, 7.5]));
        let idx = s.find(&s.grid().cell_of(&[2.5, 7.5])).unwrap();
        let (mut ids, mut points) = s.take_emitted(idx);
        let tests_before = s.stats().dominance_tests;
        s.filter_emitted(&mut ids, &mut points);
        assert_eq!(ids, vec![(0, 0)]);
        assert_eq!(s.stats().dominance_tests, tests_before);
        assert_eq!(s.stats().tuples_fdom_filtered, 0);
    }

    #[test]
    fn take_emitted_moves_tuples_out() {
        let mut s = store_10x10();
        s.insert(3, 4, &[5.5, 5.5]);
        let idx = s.find(&s.grid().cell_of(&[5.5, 5.5])).unwrap();
        let (ids, points) = s.take_emitted(idx);
        assert_eq!(ids, vec![(3, 4)]);
        assert_eq!(points.len(), 1);
        assert!(s.cell(idx).is_emitted());
        assert_eq!(s.live_tuples(), 0);
    }
}
