//! The benefit model of Section IV-B (Equations 1–2).
//!
//! The *progressiveness capacity* of a region combines (a) how many skyline
//! results it can be expected to produce — the classic average-maxima bound
//! of Bentley et al. / Buchta, `ln(σ·n_R·n_T)^{d−1} / (d−1)!` — with (b) the
//! fraction of its cells that depend on nobody else to be released
//! (`ProgCount / PartitionCount`).

use crate::cells::CellStore;
use crate::lookahead::Region;
use crate::progdetermine::ProgDetermine;

/// Equation 1: expected number of skyline results an output region can
/// produce, given the join selectivity and its input-partition sizes.
pub fn estimate_cardinality(sigma: f64, n_r: u32, n_t: u32, d: usize) -> f64 {
    debug_assert!(d >= 1);
    let n = (sigma * n_r as f64 * n_t as f64).max(1.0);
    // ln(n)^(d-1) / (d-1)!  — at n=1 this is 0 for d>1; floor at a small
    // positive value so empty-ish regions still have a defined rank.
    let ln = n.ln().max(0.05);
    let mut acc = 1.0f64;
    for i in 1..d {
        acc *= ln / i as f64;
    }
    acc
}

/// Definition 2: the number of cells in the region's box whose release
/// depends only on the region itself — i.e. their sole remaining blocker is
/// this region. Dead and already-emitted cells are excluded.
///
/// `visit_cap` bounds the scan for very large boxes; when the cap is hit
/// the count is linearly extrapolated (the box cells are statistically
/// exchangeable for this estimate).
pub fn prog_count(region: &Region, store: &CellStore, det: &ProgDetermine, visit_cap: u64) -> u64 {
    let volume = region.partition_count(store.grid());
    let mut count = 0u64;
    for (visited, coord) in store
        .grid()
        .iter_box(region.cell_lo, region.cell_hi)
        .enumerate()
    {
        let visited = visited as u64;
        if visited >= visit_cap {
            // Extrapolate from the visited prefix.
            return count * volume / visited.max(1);
        }
        if let Some(idx) = store.find(&coord) {
            let cell = store.cell(idx);
            if !cell.is_dead() && !cell.is_emitted() && det.blockers_of(idx) == 1 {
                count += 1;
            }
        }
    }
    count
}

/// Equation 2: `Benefit = (ProgCount / PartitionCount) · Cardinality`.
pub fn benefit(
    region: &Region,
    store: &CellStore,
    det: &ProgDetermine,
    sigma: f64,
    visit_cap: u64,
) -> f64 {
    let d = store.grid().dims();
    let partitions = region.partition_count(store.grid()) as f64;
    let pc = prog_count(region, store, det, visit_cap) as f64;
    let card = estimate_cardinality(sigma, region.n_r, region.n_t, d);
    (pc / partitions) * card
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_grid::{Coord, OutputGrid, MAX_DIMS};

    #[test]
    fn cardinality_matches_formula() {
        // d=3, n=e^2 → ln=2 → 2^2/2! = 2.
        let sigma = 1.0;
        let n = (std::f64::consts::E * std::f64::consts::E).ceil() as u32;
        let est = estimate_cardinality(sigma, n, 1, 3);
        let ln = (n as f64).ln();
        assert!((est - ln * ln / 2.0).abs() < 1e-9);
    }

    #[test]
    fn cardinality_grows_with_dimensions_and_size() {
        let a = estimate_cardinality(0.01, 1000, 1000, 2);
        let b = estimate_cardinality(0.01, 1000, 1000, 4);
        assert!(b > a, "higher d ⇒ larger expected skyline");
        let c = estimate_cardinality(0.01, 10_000, 10_000, 4);
        assert!(c > b, "more tuples ⇒ larger expected skyline");
    }

    #[test]
    fn cardinality_degenerate_inputs() {
        // d=1: always 1 (a single minimum).
        assert_eq!(estimate_cardinality(0.5, 10, 10, 1), 1.0);
        // Tiny selectivity: floor keeps the estimate positive.
        assert!(estimate_cardinality(1e-9, 10, 10, 4) > 0.0);
    }

    fn coord(x: u16, y: u16) -> Coord {
        let mut c: Coord = [0; MAX_DIMS];
        c[0] = x;
        c[1] = y;
        c
    }

    fn region(id: u32, lo: (u16, u16), hi: (u16, u16)) -> Region {
        Region {
            id,
            r_part: 0,
            t_part: 0,
            lo: vec![lo.0 as f64, lo.1 as f64],
            hi: vec![hi.0 as f64, hi.1 as f64],
            cell_lo: coord(lo.0, lo.1),
            cell_hi: coord(hi.0, hi.1),
            n_r: 10,
            n_t: 10,
            guaranteed: true,
        }
    }

    #[test]
    fn prog_count_counts_solely_blocked_cells() {
        // A at (0,0)-(1,1); B at (1,1)-(2,2) overlapping at (1,1) and
        // shadowing everything ≥ (1,1).
        let a = region(0, (0, 0), (1, 1));
        let b = region(1, (1, 1), (2, 2));
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut store = CellStore::new(grid.clone());
        for r in [&a, &b] {
            for c in grid.iter_box(r.cell_lo, r.cell_hi) {
                store.track(c);
            }
        }
        let det = ProgDetermine::new(&store, &[a.clone(), b.clone()]);
        // A's cells: (0,0),(0,1),(1,0) blocked only by A; (1,1) also by B.
        assert_eq!(prog_count(&a, &store, &det, u64::MAX), 3);
        // B's cells are all shadowed by A (A.lo = (0,0) ⪯ everything).
        assert_eq!(prog_count(&b, &store, &det, u64::MAX), 0);
        // Benefit ordering follows.
        let ba = benefit(&a, &store, &det, 0.1, u64::MAX);
        let bb = benefit(&b, &store, &det, 0.1, u64::MAX);
        assert!(ba > bb);
        assert_eq!(bb, 0.0);
    }

    #[test]
    fn prog_count_extrapolates_past_cap() {
        let a = region(0, (0, 0), (9, 9));
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut store = CellStore::new(grid.clone());
        for c in grid.iter_box(a.cell_lo, a.cell_hi) {
            store.track(c);
        }
        let det = ProgDetermine::new(&store, std::slice::from_ref(&a));
        let exact = prog_count(&a, &store, &det, u64::MAX);
        let capped = prog_count(&a, &store, &det, 10);
        assert_eq!(exact, 100);
        assert_eq!(capped, 100, "uniform box extrapolates exactly");
    }
}
