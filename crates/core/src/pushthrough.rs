//! Skyline partial push-through (Hafenrichter & Kießling; used by JF-SL+
//! and the "+" variants of ProgXe, Section VI-B).
//!
//! A source tuple can be pruned when another tuple with the **same join
//! key** is at least as good on every *mapped component* and strictly
//! better on one: for separable monotone maps (`f_j(r,t)` non-decreasing in
//! a per-source score `g_j`), every join partner then yields a dominated
//! output, so the pruned tuple can never contribute a skyline result.
//!
//! Two classic refinements are deliberately **not** applied, because the
//! paper shows they are unsound for SkyMapJoin queries (Section VII):
//!
//! * source-level pruning that ignores the join key (a "dominating" tuple
//!   with a different key may have no join partners at all);
//! * treating source-level skyline members as guaranteed results (mapping
//!   functions create cross-source trade-offs).

use crate::fxhash::FxHashMap;
use crate::mapping::MapSet;
use crate::source::SourceView;
use progxe_skyline::Preference;

/// Which side of the join to prune.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left (R) source: uses each map's `r_component`.
    R,
    /// The right (T) source: uses each map's `t_component`.
    T,
}

/// Computes the rows of `source` that survive group-level push-through
/// pruning, or `None` when any mapping function is not separable (pruning
/// would be unsound and is skipped).
///
/// Surviving rows are returned in their original order.
pub fn push_through(source: &SourceView<'_>, maps: &MapSet, side: Side) -> Option<Vec<u32>> {
    let n = source.len();
    let k = maps.out_dims();
    // The local preference inherits the output orders: f_j non-decreasing in
    // g_j means "better g_j ⇒ better f_j" in the same direction.
    let pref = Preference::new(maps.preference().orders().to_vec());

    // Compute local score vectors; bail out on non-separable maps.
    let mut scores: Vec<f64> = Vec::with_capacity(n * k);
    let mut buf = Vec::with_capacity(k);
    for row in 0..n {
        let ok = match side {
            Side::R => maps.r_components(source.attrs_of(row), &mut buf),
            Side::T => maps.t_components(source.attrs_of(row), &mut buf),
        };
        if !ok {
            return None;
        }
        scores.extend_from_slice(&buf);
    }
    let score_of = |row: usize| &scores[row * k..(row + 1) * k];

    // Group rows by join key, then keep each group's local skyline.
    let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for row in 0..n {
        groups
            .entry(source.join_key_of(row))
            .or_default()
            .push(row as u32);
    }

    let mut keep = vec![true; n];
    for rows in groups.values() {
        // Window-based group skyline over local scores.
        let mut window: Vec<u32> = Vec::new();
        for &row in rows {
            let p = score_of(row as usize);
            let mut dominated = false;
            let mut w = 0;
            while w < window.len() {
                let q = score_of(window[w] as usize);
                if pref.dominates(q, p) {
                    dominated = true;
                    break;
                }
                if pref.dominates(p, q) {
                    keep[window[w] as usize] = false;
                    window.swap_remove(w);
                } else {
                    w += 1;
                }
            }
            if dominated {
                keep[row as usize] = false;
            } else {
                window.push(row);
            }
        }
    }
    Some((0..n as u32).filter(|&row| keep[row as usize]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{GeneralMap, MappingFunction, WeightedSum};
    use crate::source::SourceData;
    use progxe_skyline::Order;

    fn sum_maps(dims: usize) -> MapSet {
        MapSet::pairwise_sum(dims, Preference::all_lowest(dims))
    }

    #[test]
    fn dominated_within_group_is_pruned() {
        let s = SourceData::from_rows(
            2,
            &[
                (&[1.0, 1.0], 0), // dominates row 1 (same key)
                (&[2.0, 2.0], 0),
                (&[3.0, 3.0], 1), // different key: safe from row 0
            ],
        );
        let kept = push_through(&s.view(), &sum_maps(2), Side::R).unwrap();
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn cross_group_dominance_never_prunes() {
        let s = SourceData::from_rows(2, &[(&[1.0, 1.0], 0), (&[9.0, 9.0], 1)]);
        let kept = push_through(&s.view(), &sum_maps(2), Side::R).unwrap();
        assert_eq!(kept, vec![0, 1], "different join keys must both survive");
    }

    #[test]
    fn incomparable_tuples_survive() {
        let s = SourceData::from_rows(2, &[(&[1.0, 9.0], 0), (&[9.0, 1.0], 0)]);
        let kept = push_through(&s.view(), &sum_maps(2), Side::R).unwrap();
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn equal_tuples_both_survive() {
        let s = SourceData::from_rows(2, &[(&[5.0, 5.0], 0), (&[5.0, 5.0], 0)]);
        let kept = push_through(&s.view(), &sum_maps(2), Side::R).unwrap();
        assert_eq!(kept.len(), 2, "equal tuples never dominate each other");
    }

    #[test]
    fn respects_highest_orders() {
        let maps = MapSet::pairwise_sum(1, Preference::new(vec![Order::Highest]));
        let s = SourceData::from_rows(1, &[(&[1.0], 0), (&[9.0], 0)]);
        let kept = push_through(&s.view(), &maps, Side::R).unwrap();
        assert_eq!(kept, vec![1], "HIGHEST keeps the larger value");
    }

    #[test]
    fn weights_affect_local_scores() {
        // delay-style map: 2·r[0]; r=(3) scores 6, r=(2) scores 4.
        let maps = MapSet::new(
            vec![Box::new(WeightedSum::new(vec![2.0], vec![1.0])) as Box<dyn MappingFunction>],
            Preference::all_lowest(1),
        )
        .unwrap();
        let s = SourceData::from_rows(1, &[(&[3.0], 0), (&[2.0], 0)]);
        let kept = push_through(&s.view(), &maps, Side::R).unwrap();
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn non_separable_map_disables_pruning() {
        let maps = MapSet::new(
            vec![Box::new(GeneralMap::max_of(0, 0)) as Box<dyn MappingFunction>],
            Preference::all_lowest(1),
        )
        .unwrap();
        let s = SourceData::from_rows(1, &[(&[1.0], 0), (&[2.0], 0)]);
        assert!(push_through(&s.view(), &maps, Side::R).is_none());
    }

    #[test]
    fn t_side_uses_t_components() {
        // Map = r[0] + 3·t[0]: T-side scores are 3·t[0].
        let maps = MapSet::new(
            vec![Box::new(WeightedSum::new(vec![1.0], vec![3.0])) as Box<dyn MappingFunction>],
            Preference::all_lowest(1),
        )
        .unwrap();
        let s = SourceData::from_rows(1, &[(&[2.0], 0), (&[1.0], 0)]);
        let kept = push_through(&s.view(), &maps, Side::T).unwrap();
        assert_eq!(kept, vec![1]);
    }
}
