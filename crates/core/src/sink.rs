//! Result sinks: where progressively emitted tuples go.
//!
//! The executor pushes *batches* of proven-final results the moment
//! ProgDetermine releases them. Sinks decide what to do: collect, timestamp
//! for progressiveness plots, stream to a consumer, etc.

use crate::stats::{ProgressRecord, ResultTuple};
use std::time::Instant;

/// Consumer of progressively emitted results.
pub trait ResultSink {
    /// Called with each batch of results the moment they are proven final.
    /// Batches are non-empty; tuples within a batch share an emission point.
    fn emit_batch(&mut self, batch: &[ResultTuple]);
}

/// Collects all results in arrival order (emission order).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Results in emission order.
    pub results: Vec<ResultTuple>,
}

impl ResultSink for CollectSink {
    fn emit_batch(&mut self, batch: &[ResultTuple]) {
        self.results.extend_from_slice(batch);
    }
}

/// Collects results *and* timestamps every batch relative to a start
/// instant — produces the progressiveness series of Figures 10–12.
#[derive(Debug)]
pub struct ProgressSink {
    start: Instant,
    cumulative: u64,
    /// `(elapsed, cumulative)` per batch.
    pub records: Vec<ProgressRecord>,
    /// All results in emission order.
    pub results: Vec<ResultTuple>,
}

impl ProgressSink {
    /// Starts the clock now.
    pub fn new() -> Self {
        Self::with_start(Instant::now())
    }

    /// Starts the clock at a caller-chosen instant (e.g. before data
    /// generation, to include setup in the timeline).
    pub fn with_start(start: Instant) -> Self {
        Self {
            start,
            cumulative: 0,
            records: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Time of the first emitted result, if any.
    pub fn first_result_at(&self) -> Option<std::time::Duration> {
        self.records.first().map(|r| r.elapsed)
    }

    /// Total results received.
    pub fn total(&self) -> u64 {
        self.cumulative
    }
}

impl Default for ProgressSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultSink for ProgressSink {
    fn emit_batch(&mut self, batch: &[ResultTuple]) {
        self.cumulative += batch.len() as u64;
        self.records.push(ProgressRecord {
            elapsed: self.start.elapsed(),
            cumulative: self.cumulative,
        });
        self.results.extend_from_slice(batch);
    }
}

/// Adapter invoking a closure per batch.
pub struct FnSink<F: FnMut(&[ResultTuple])>(pub F);

impl<F: FnMut(&[ResultTuple])> ResultSink for FnSink<F> {
    fn emit_batch(&mut self, batch: &[ResultTuple]) {
        (self.0)(batch);
    }
}

/// Counts results without storing them (cheap for huge outputs).
#[derive(Debug, Default)]
pub struct CountSink {
    /// Number of results received.
    pub count: u64,
    /// Number of batches received.
    pub batches: u64,
}

impl ResultSink for CountSink {
    fn emit_batch(&mut self, batch: &[ResultTuple]) {
        self.count += batch.len() as u64;
        self.batches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(r: u32) -> ResultTuple {
        ResultTuple {
            r_idx: r,
            t_idx: 0,
            values: vec![1.0],
        }
    }

    #[test]
    fn collect_sink_accumulates_in_order() {
        let mut s = CollectSink::default();
        s.emit_batch(&[tuple(1), tuple(2)]);
        s.emit_batch(&[tuple(3)]);
        let ids: Vec<u32> = s.results.iter().map(|t| t.r_idx).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn progress_sink_records_monotone_series() {
        let mut s = ProgressSink::new();
        s.emit_batch(&[tuple(1)]);
        s.emit_batch(&[tuple(2), tuple(3)]);
        assert_eq!(s.total(), 3);
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[0].cumulative, 1);
        assert_eq!(s.records[1].cumulative, 3);
        assert!(s.records[0].elapsed <= s.records[1].elapsed);
        assert!(s.first_result_at().is_some());
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut seen = 0usize;
        {
            let mut s = FnSink(|b: &[ResultTuple]| seen += b.len());
            s.emit_batch(&[tuple(1), tuple(2)]);
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        s.emit_batch(&[tuple(1)]);
        s.emit_batch(&[tuple(2)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.batches, 2);
    }
}
