//! The cost model of Section IV-C (Equations 3–7).
//!
//! The penalty of tuple-level processing for a region is the sum of
//!
//! * `C_join = n_R · n_T` — evaluating the join condition over the
//!   partition pair (Equation 4),
//! * `C_map = σ · n_R · n_T` — mapping each join result (Equation 5),
//! * `C_sky` — dominance comparisons: each of the `σ·n_R·n_T` results is
//!   compared against the tuples of its comparable cells, at Kung-style
//!   amortized cost `(CP_avg·s_avg) · log^α(CP_avg·s_avg)` with `α = 1` for
//!   `d ≤ 3` and `α = d − 2` otherwise (Equation 6).
//!
//! `CP_avg` uses the Section III-B bound of `k·d` comparable partitions and
//! `s_avg` the expected occupancy `σ·n_R·n_T / PartitionCount`.

use crate::lookahead::Region;
use crate::output_grid::OutputGrid;

/// Cost-model parameters shared across regions.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Join selectivity estimate σ.
    pub sigma: f64,
    /// Output cells per dimension (`k`).
    pub cells_per_dim: u16,
    /// Output dimensionality (`d`).
    pub dims: usize,
}

impl CostModel {
    /// The Kung exponent: `α = 1` for `d ∈ {2, 3}`, else `d − 2`.
    pub fn alpha(&self) -> f64 {
        if self.dims <= 3 {
            1.0
        } else {
            (self.dims - 2) as f64
        }
    }

    /// Equation 7: amortized tuple-level processing cost of a region.
    pub fn region_cost(&self, region: &Region, grid: &OutputGrid) -> f64 {
        let n_r = region.n_r as f64;
        let n_t = region.n_t as f64;
        let c_join = n_r * n_t;
        let join_out = self.sigma * n_r * n_t;
        let c_map = join_out;
        let cp_avg = self.cells_per_dim as f64 * self.dims as f64;
        let partitions = region.partition_count(grid) as f64;
        let s_avg = (join_out / partitions).max(1.0);
        let s = cp_avg * s_avg;
        let c_sky = join_out * s * s.ln().max(1.0).powf(self.alpha());
        c_join + c_map + c_sky
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_grid::{Coord, MAX_DIMS};

    fn region(n_r: u32, n_t: u32, span: u16) -> Region {
        let lo: Coord = [0; MAX_DIMS];
        let mut hi: Coord = [0; MAX_DIMS];
        hi[0] = span;
        hi[1] = span;
        Region {
            id: 0,
            r_part: 0,
            t_part: 0,
            lo: vec![0.0, 0.0],
            hi: vec![span as f64, span as f64],
            cell_lo: lo,
            cell_hi: hi,
            n_r,
            n_t,
            guaranteed: true,
        }
    }

    fn grid() -> OutputGrid {
        OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10)
    }

    #[test]
    fn alpha_follows_kung() {
        let m = |d| CostModel {
            sigma: 0.1,
            cells_per_dim: 10,
            dims: d,
        };
        assert_eq!(m(2).alpha(), 1.0);
        assert_eq!(m(3).alpha(), 1.0);
        assert_eq!(m(4).alpha(), 2.0);
        assert_eq!(m(5).alpha(), 3.0);
    }

    #[test]
    fn bigger_partitions_cost_more() {
        let m = CostModel {
            sigma: 0.01,
            cells_per_dim: 10,
            dims: 2,
        };
        let g = grid();
        let small = m.region_cost(&region(10, 10, 2), &g);
        let large = m.region_cost(&region(1000, 1000, 2), &g);
        assert!(large > small * 100.0);
    }

    #[test]
    fn higher_selectivity_costs_more() {
        let g = grid();
        let lo = CostModel {
            sigma: 0.001,
            cells_per_dim: 10,
            dims: 2,
        }
        .region_cost(&region(100, 100, 2), &g);
        let hi = CostModel {
            sigma: 0.1,
            cells_per_dim: 10,
            dims: 2,
        }
        .region_cost(&region(100, 100, 2), &g);
        assert!(hi > lo);
    }

    #[test]
    fn cost_is_at_least_the_join_cost() {
        let m = CostModel {
            sigma: 1e-6,
            cells_per_dim: 10,
            dims: 4,
        };
        let g = grid();
        let c = m.region_cost(&region(50, 60, 3), &g);
        assert!(c >= 50.0 * 60.0);
    }
}
