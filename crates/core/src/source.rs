//! Input-source abstraction: attribute matrix + join keys.

use crate::error::{Error, Result};
use progxe_skyline::PointStore;

/// Borrowed view over one input source of a SkyMapJoin query.
///
/// The executor never owns input data; callers keep their relations and hand
/// in views. `attrs` holds the mapping-relevant attributes (one row per
/// tuple) and `join_keys` the equi-join key of each tuple, both indexed by
/// row position.
#[derive(Debug, Clone, Copy)]
pub struct SourceView<'a> {
    attrs: &'a PointStore,
    join_keys: &'a [u32],
}

impl<'a> SourceView<'a> {
    /// Creates a view, validating that the two arrays are parallel.
    pub fn new(attrs: &'a PointStore, join_keys: &'a [u32]) -> Result<Self> {
        if attrs.len() != join_keys.len() {
            return Err(Error::SourceShape {
                attr_rows: attrs.len(),
                key_rows: join_keys.len(),
            });
        }
        Ok(Self { attrs, join_keys })
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.join_keys.len()
    }

    /// True when the source has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.join_keys.is_empty()
    }

    /// Attribute dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.attrs.dims()
    }

    /// Attributes of tuple `i`.
    #[inline]
    pub fn attrs_of(&self, i: usize) -> &'a [f64] {
        self.attrs.point(i)
    }

    /// Join key of tuple `i`.
    #[inline]
    pub fn join_key_of(&self, i: usize) -> u32 {
        self.join_keys[i]
    }

    /// The underlying attribute store.
    #[inline]
    pub fn attrs(&self) -> &'a PointStore {
        self.attrs
    }

    /// The underlying join-key column.
    #[inline]
    pub fn join_keys(&self) -> &'a [u32] {
        self.join_keys
    }

    /// Largest join key present, or `None` for an empty source.
    pub fn max_join_key(&self) -> Option<u32> {
        self.join_keys.iter().copied().max()
    }
}

/// Owned source data — a convenience for examples and tests.
///
/// Library consumers with their own storage should construct [`SourceView`]s
/// directly; `SourceData` simply bundles a [`PointStore`] with its join-key
/// column.
#[derive(Debug, Clone, Default)]
pub struct SourceData {
    /// Attribute matrix.
    pub attrs: PointStore,
    /// Join key per tuple.
    pub join_keys: Vec<u32>,
}

impl SourceData {
    /// Creates an empty source with `dims` attributes per tuple.
    pub fn new(dims: usize) -> Self {
        Self {
            attrs: PointStore::new(dims),
            join_keys: Vec::new(),
        }
    }

    /// Builds a source from `(attributes, join_key)` rows.
    pub fn from_rows(dims: usize, rows: &[(&[f64], u32)]) -> Self {
        let mut s = Self {
            attrs: PointStore::with_capacity(dims, rows.len()),
            join_keys: Vec::with_capacity(rows.len()),
        };
        for (attrs, key) in rows {
            s.push(attrs, *key);
        }
        s
    }

    /// Appends one tuple; returns its row index.
    ///
    /// # Panics
    /// Panics with a descriptive message when `attrs.len()` disagrees with
    /// the source's declared dimensionality — previously this surfaced as
    /// an opaque point-store assertion deep in the insert path.
    pub fn push(&mut self, attrs: &[f64], join_key: u32) -> usize {
        assert_eq!(
            attrs.len(),
            self.attrs.dims(),
            "SourceData::push arity mismatch: source declares {} attribute \
             dimension(s) but the pushed row has {} (join_key {join_key}, \
             row index {})",
            self.attrs.dims(),
            attrs.len(),
            self.join_keys.len(),
        );
        let idx = self.attrs.push(attrs);
        self.join_keys.push(join_key);
        idx
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.join_keys.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.join_keys.is_empty()
    }

    /// A borrowed view suitable for the executor.
    ///
    /// # Panics
    /// Never panics: the arrays are parallel by construction.
    pub fn view(&self) -> SourceView<'_> {
        SourceView::new(&self.attrs, &self.join_keys).expect("SourceData arrays are parallel")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_validates_shape() {
        let attrs = PointStore::from_rows(2, [[1.0, 2.0], [3.0, 4.0]]);
        let keys = vec![1u32];
        assert!(matches!(
            SourceView::new(&attrs, &keys),
            Err(Error::SourceShape { .. })
        ));
    }

    #[test]
    fn source_data_round_trip() {
        let s = SourceData::from_rows(2, &[(&[1.0, 2.0], 7), (&[3.0, 4.0], 9)]);
        let v = s.view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.dims(), 2);
        assert_eq!(v.attrs_of(1), &[3.0, 4.0]);
        assert_eq!(v.join_key_of(0), 7);
        assert_eq!(v.max_join_key(), Some(9));
    }

    #[test]
    #[should_panic(expected = "SourceData::push arity mismatch: source declares 2")]
    fn push_rejects_wrong_arity_with_context() {
        let mut s = SourceData::new(2);
        s.push(&[1.0, 2.0], 0);
        s.push(&[1.0, 2.0, 3.0], 7); // 3 attrs into a 2-d source
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn from_rows_rejects_wrong_arity() {
        // from_rows goes through push, so the diagnostic applies there too.
        SourceData::from_rows(1, &[(&[1.0, 2.0], 0)]);
    }

    #[test]
    fn empty_source() {
        let s = SourceData::new(3);
        assert!(s.is_empty());
        assert_eq!(s.view().max_join_key(), None);
    }
}
