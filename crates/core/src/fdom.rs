//! Flexible skylines: F-dominance over a constrained family of scoring
//! weights.
//!
//! The paper's framework proves results final under classical Pareto
//! dominance (Definition 1). The flexible-skyline line of work (Ciaccia &
//! Martinenghi's non-dominated operator; surveyed in arXiv:2202.09857 and
//! arXiv:2201.04899) replaces "better in every dimension" with "better
//! under every scoring function the user would accept": given a family of
//! linear scoring weights
//!
//! ```text
//! W = { w ∈ ℝ^d : A·w ≤ b,  w ≥ 0,  Σ wᵢ = 1 }
//! ```
//!
//! tuple `t` **F-dominates** `s` (over *oriented*, lower-is-better values)
//! iff `w·t ≤ w·s` for every `w ∈ W` and `w·t < w·s` for at least one.
//! The F-skyline (the set of tuples no other tuple F-dominates) shrinks as
//! `W` shrinks, interpolating between the full skyline (`W` = the whole
//! simplex, where F-dominance coincides with Pareto dominance) and a
//! top-1-style answer (`W` a single weight vector).
//!
//! ## Exactness via vertex enumeration
//!
//! Because `w ↦ w·(t − s)` is linear and `W` is a bounded polytope, the
//! universally quantified test reduces to the polytope's **vertices**:
//! `∀w ∈ W: w·t ≤ w·s` iff the inequality holds at every vertex, and the
//! strict witness exists in `W` iff it exists at some vertex (a convex
//! combination that is strictly negative must have a strictly negative
//! term). [`FDominance::new`] therefore enumerates the vertices once at
//! build time — each vertex is the solution of `d−1` tight inequality
//! constraints together with `Σ wᵢ = 1`, solved exactly by Gaussian
//! elimination and kept only if it satisfies every constraint — and the
//! per-pair test is a handful of dot products: no LP solver in the hot
//! path, no external dependencies, deterministic results.
//!
//! ## Why the rest of the engine keeps working
//!
//! Two facts carry the whole integration, both proved by
//! [`DominanceModel`]'s tests and relied on throughout the stack:
//!
//! 1. **Pareto dominance implies F-dominance** (weights are non-negative),
//!    so every Pareto-based pruning step — dead regions, killed cells,
//!    push-through, the local skyline pre-filter, eviction inside the cell
//!    store — discards only tuples that are also F-dominated. Region-level
//!    reasoning stays sound unchanged.
//! 2. **F-dominance composes through Pareto**: if `s` F-dominates `t` and
//!    `u` Pareto-dominates `s`, then `u` F-dominates `t`. Hence the
//!    F-skyline can be computed by filtering the *Pareto-maintained* live
//!    set — every F-dominator that was evicted is represented by a live
//!    Pareto dominator that also F-dominates.
//!
//! What Pareto machinery *cannot* provide is emission finality: `u` can
//! F-dominate `t` from a cell that is Pareto-incomparable to `t`'s. The
//! blocker bookkeeping of [`crate::progdetermine`] is therefore
//! strengthened under a flexible model (a region blocks a cell iff its
//! best corner could weakly F-dominate the cell's worst corner — checked
//! at the vertices), and emitted cells pass a final F-filter against the
//! live set. See `ProgDetermine` for the argument.

use crate::error::{Error, Result};
use crate::output_grid::MAX_DIMS;
use progxe_skyline::{kernel, Dominance, Order};
use std::fmt;
use std::sync::Arc;

/// Hard cap on user-supplied weight constraints. Vertex enumeration scans
/// `C(dims + constraints, dims − 1)` candidate bases; this bound keeps the
/// one-off build comfortably sub-second at every supported dimensionality.
pub const MAX_WEIGHT_CONSTRAINTS: usize = 16;

/// Feasibility tolerance for vertex candidates (absolute, on `a·w − b`).
const FEAS_EPS: f64 = 1e-9;
/// Pivot threshold below which a candidate basis is considered singular.
const PIVOT_EPS: f64 = 1e-12;
/// L∞ tolerance for deduplicating enumerated vertices.
const DEDUP_EPS: f64 = 1e-7;

/// Typed failures while building an [`FDominance`] model. Surfaced at
/// plan/build time so a degenerate weight family can never panic (or
/// silently misbehave) mid-region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdomError {
    /// The weight space needs at least one dimension.
    NoDimensions,
    /// More output dimensions than the cell encoding supports.
    TooManyDimensions {
        /// Requested weight dimensions.
        dims: usize,
        /// Supported maximum ([`MAX_DIMS`]).
        max: usize,
    },
    /// A constraint's coefficient vector length differs from `dims`.
    ConstraintArity {
        /// Index of the offending constraint.
        constraint: usize,
        /// Expected coefficient count (= weight dimensions).
        expected: usize,
        /// Coefficients supplied.
        got: usize,
    },
    /// A constraint contains a NaN or infinite coefficient or bound.
    NonFinite {
        /// Index of the offending constraint.
        constraint: usize,
    },
    /// Too many constraints (see [`MAX_WEIGHT_CONSTRAINTS`]).
    TooManyConstraints {
        /// Constraints supplied.
        got: usize,
        /// Supported maximum.
        max: usize,
    },
    /// The constraints admit no weight vector at all: `W` is empty, so
    /// F-dominance would be vacuously universal and every tuple would
    /// "dominate" every other — rejected instead of executed.
    EmptyPolytope,
    /// The model's weight dimensionality differs from the query's output
    /// dimensionality.
    DimensionMismatch {
        /// Weight dimensions of the model.
        model: usize,
        /// Output dimensions of the query.
        query: usize,
    },
}

impl fmt::Display for FdomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdomError::NoDimensions => write!(f, "weight family needs at least 1 dimension"),
            FdomError::TooManyDimensions { dims, max } => {
                write!(
                    f,
                    "{dims} weight dimensions exceed the supported maximum {max}"
                )
            }
            FdomError::ConstraintArity {
                constraint,
                expected,
                got,
            } => write!(
                f,
                "weight constraint {constraint} has {got} coefficients, expected {expected}"
            ),
            FdomError::NonFinite { constraint } => write!(
                f,
                "weight constraint {constraint} contains a NaN or infinite value"
            ),
            FdomError::TooManyConstraints { got, max } => {
                write!(
                    f,
                    "{got} weight constraints exceed the supported maximum {max}"
                )
            }
            FdomError::EmptyPolytope => write!(
                f,
                "weight constraints admit no weight vector (empty polytope over the simplex)"
            ),
            FdomError::DimensionMismatch { model, query } => write!(
                f,
                "weight family has {model} dimensions but the query defines {query} outputs"
            ),
        }
    }
}

impl std::error::Error for FdomError {}

/// One linear constraint `coeffs · w ≤ bound` on the weight vector.
///
/// Non-negativity (`w ≥ 0`) and normalization (`Σ wᵢ = 1`) are implicit —
/// every weight family lives inside the probability simplex. `≥` and `=`
/// constraints are expressed by negation / a pair of inequalities (the
/// query planner does this for `CONSTRAIN` clauses).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightConstraint {
    /// Per-dimension coefficients (length = weight dimensions).
    pub coeffs: Vec<f64>,
    /// Inclusive upper bound.
    pub bound: f64,
}

impl WeightConstraint {
    /// `coeffs · w ≤ bound`.
    pub fn le(coeffs: Vec<f64>, bound: f64) -> Self {
        Self { coeffs, bound }
    }

    /// `w[dim] ≤ ub` over `dims` weight dimensions.
    pub fn at_most(dims: usize, dim: usize, ub: f64) -> Self {
        let mut coeffs = vec![0.0; dims];
        coeffs[dim] = 1.0;
        Self { coeffs, bound: ub }
    }

    /// `w[dim] ≥ lb` over `dims` weight dimensions.
    pub fn at_least(dims: usize, dim: usize, lb: f64) -> Self {
        let mut coeffs = vec![0.0; dims];
        coeffs[dim] = -1.0;
        Self { coeffs, bound: -lb }
    }
}

/// F-dominance over a linear weight-constraint family, realized as the
/// enumerated vertex set of the weight polytope (see the module docs).
///
/// Values compared through this type are **oriented** (every dimension
/// lower-is-better); raw-orientation entry points take the query's
/// [`Order`]s and orient inline.
#[derive(Debug, Clone)]
pub struct FDominance {
    dims: usize,
    constraints: Vec<WeightConstraint>,
    /// Flattened `vertex_count × dims` vertex matrix, rows sorted
    /// lexicographically (canonical, deterministic order).
    vertices: Vec<f64>,
    /// `Σ_k v_k` — a single weight vector whose dot product is strictly
    /// monotone w.r.t. F-dominance (used as the SFS presort score).
    score_weights: Vec<f64>,
}

impl FDominance {
    /// Builds the model for `dims` criteria under `constraints`
    /// (`A·w ≤ b`; non-negativity and `Σw = 1` implicit). Enumerates the
    /// weight polytope's vertices once; degenerate families — empty
    /// polytope, NaN coefficients, negative-infeasible bounds — are typed
    /// errors here, never runtime panics.
    pub fn new(
        dims: usize,
        constraints: Vec<WeightConstraint>,
    ) -> std::result::Result<Self, FdomError> {
        if dims == 0 {
            return Err(FdomError::NoDimensions);
        }
        if dims > MAX_DIMS {
            return Err(FdomError::TooManyDimensions {
                dims,
                max: MAX_DIMS,
            });
        }
        if constraints.len() > MAX_WEIGHT_CONSTRAINTS {
            return Err(FdomError::TooManyConstraints {
                got: constraints.len(),
                max: MAX_WEIGHT_CONSTRAINTS,
            });
        }
        for (i, c) in constraints.iter().enumerate() {
            if c.coeffs.len() != dims {
                return Err(FdomError::ConstraintArity {
                    constraint: i,
                    expected: dims,
                    got: c.coeffs.len(),
                });
            }
            if !c.bound.is_finite() || c.coeffs.iter().any(|v| !v.is_finite()) {
                return Err(FdomError::NonFinite { constraint: i });
            }
        }

        let vertices = if constraints.is_empty() {
            // Unconstrained simplex: the vertices are exactly the unit
            // weight vectors, making F-dominance *identical* (bit-for-bit)
            // to Pareto dominance on oriented values.
            let mut v = vec![0.0; dims * dims];
            for i in 0..dims {
                v[i * dims + i] = 1.0;
            }
            v
        } else {
            enumerate_vertices(dims, &constraints)?
        };

        let mut score_weights = vec![0.0; dims];
        for row in vertices.chunks_exact(dims) {
            for (s, &v) in score_weights.iter_mut().zip(row) {
                *s += v;
            }
        }
        Ok(Self {
            dims,
            constraints,
            vertices,
            score_weights,
        })
    }

    /// The unconstrained weight family (the whole simplex) — F-dominance
    /// equal to Pareto dominance, useful as an equivalence baseline.
    pub fn simplex(dims: usize) -> std::result::Result<Self, FdomError> {
        Self::new(dims, Vec::new())
    }

    /// Criteria (weight) dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The user constraints the family was built from.
    pub fn constraints(&self) -> &[WeightConstraint] {
        &self.constraints
    }

    /// Number of polytope vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len() / self.dims
    }

    /// Iterates the vertices (each a `dims`-length weight vector).
    pub fn vertices(&self) -> impl Iterator<Item = &[f64]> {
        self.vertices.chunks_exact(self.dims)
    }

    /// True iff `a` F-dominates `b`, both **oriented** (lower-is-better):
    /// `v·a ≤ v·b` at every vertex, strictly at one.
    ///
    /// The per-vertex dot products accumulate in the same order as
    /// [`project_into`](Self::project_into), so deciding F-dominance on
    /// pre-computed projections is bit-identical to this fused test.
    #[inline]
    pub fn dominates_oriented(&self, a: &[f64], b: &[f64]) -> bool {
        debug_assert_eq!(a.len(), self.dims);
        debug_assert_eq!(b.len(), self.dims);
        kernel::fold_dominates(self.vertices.chunks_exact(self.dims).map(|v| {
            let mut da = 0.0;
            let mut db = 0.0;
            for j in 0..self.dims {
                da += v[j] * a[j];
                db += v[j] * b[j];
            }
            (da, db)
        }))
    }

    /// True iff `a` F-dominates `b` in **raw** orientation, using the
    /// query's per-dimension [`Order`]s.
    #[inline]
    pub fn dominates_raw(&self, orders: &[Order], a: &[f64], b: &[f64]) -> bool {
        debug_assert_eq!(orders.len(), self.dims);
        kernel::fold_dominates(self.vertices.chunks_exact(self.dims).map(|v| {
            let mut da = 0.0;
            let mut db = 0.0;
            for j in 0..self.dims {
                da += v[j] * orders[j].orient(a[j]);
                db += v[j] * orders[j].orient(b[j]);
            }
            (da, db)
        }))
    }

    /// Writes the vertex projections `v_k · p` of an oriented point into
    /// `out` (cleared first). Weak F-dominance between points is exactly
    /// component-wise `≤` between their projections — the reduction the
    /// blocker bookkeeping uses.
    pub fn project_into(&self, p: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for v in self.vertices.chunks_exact(self.dims) {
            out.push(v.iter().zip(p).map(|(x, y)| x * y).sum());
        }
    }

    /// Like [`project_into`](Self::project_into) but for a **raw** point,
    /// folding the query's orientation into the dot products with the same
    /// accumulation order as [`dominates_raw`](Self::dominates_raw), so
    /// projection-space Pareto tests reproduce it bit-for-bit.
    pub fn project_raw_into(&self, orders: &[Order], p: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(orders.len(), self.dims);
        out.clear();
        for v in self.vertices.chunks_exact(self.dims) {
            let mut s = 0.0;
            for j in 0..self.dims {
                s += v[j] * orders[j].orient(p[j]);
            }
            out.push(s);
        }
    }
}

/// Enumerates the vertices of `{w : A·w ≤ b, w ≥ 0, Σw = 1}`.
fn enumerate_vertices(
    dims: usize,
    constraints: &[WeightConstraint],
) -> std::result::Result<Vec<f64>, FdomError> {
    // Every inequality as (coeffs, bound): first the d non-negativity rows
    // −wᵢ ≤ 0, then the user rows.
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dims + constraints.len());
    for i in 0..dims {
        let mut c = vec![0.0; dims];
        c[i] = -1.0;
        rows.push((c, 0.0));
    }
    for c in constraints {
        rows.push((c.coeffs.clone(), c.bound));
    }

    let feasible = |w: &[f64]| -> bool {
        rows.iter().all(|(c, b)| {
            let lhs: f64 = c.iter().zip(w).map(|(x, y)| x * y).sum();
            lhs <= b + FEAS_EPS
        })
    };

    let mut vertices: Vec<f64> = Vec::new();
    let push_vertex = |w: &[f64], vertices: &mut Vec<f64>| {
        // Clamp feasibility-epsilon negatives and renormalize so later
        // monotonicity arguments (w ≥ 0) hold exactly.
        let mut v: Vec<f64> = w.iter().map(|&x| x.max(0.0)).collect();
        let sum: f64 = v.iter().sum();
        if sum > 0.0 {
            for x in v.iter_mut() {
                *x /= sum;
            }
        }
        let dup = vertices.chunks_exact(dims).any(|existing| {
            existing
                .iter()
                .zip(&v)
                .all(|(a, b)| (a - b).abs() <= DEDUP_EPS)
        });
        if !dup {
            vertices.extend_from_slice(&v);
        }
    };

    if dims == 1 {
        let w = [1.0];
        if feasible(&w) {
            push_vertex(&w, &mut vertices);
        }
    } else {
        // Each vertex is Σw = 1 plus d−1 tight inequalities: iterate all
        // (d−1)-subsets of the rows in lexicographic order (deterministic;
        // m = dims + user rows ≥ dims > k, so at least one subset exists).
        let m = rows.len();
        let k = dims - 1;
        let mut idx: Vec<usize> = (0..k).collect();
        'combos: loop {
            // Assemble and solve the d×d system.
            let mut a = vec![0.0; dims * dims];
            let mut b = vec![0.0; dims];
            a[..dims].fill(1.0); // first row: Σw = 1
            b[0] = 1.0;
            for (r, &ci) in idx.iter().enumerate() {
                let (coeffs, bound) = &rows[ci];
                a[(r + 1) * dims..(r + 2) * dims].copy_from_slice(coeffs);
                b[r + 1] = *bound;
            }
            if let Some(w) = solve_dense(&mut a, &mut b, dims) {
                if feasible(&w) {
                    push_vertex(&w, &mut vertices);
                }
            }

            // Next lexicographic combination; break once exhausted.
            let mut i = k;
            while i > 0 {
                i -= 1;
                if idx[i] < i + m - k {
                    idx[i] += 1;
                    for j in i + 1..k {
                        idx[j] = idx[j - 1] + 1;
                    }
                    continue 'combos;
                }
            }
            break;
        }
    }

    if vertices.is_empty() {
        return Err(FdomError::EmptyPolytope);
    }

    // Canonical order: sort vertex rows lexicographically.
    let mut order: Vec<usize> = (0..vertices.len() / dims).collect();
    order.sort_by(|&x, &y| {
        let a = &vertices[x * dims..(x + 1) * dims];
        let b = &vertices[y * dims..(y + 1) * dims];
        a.iter()
            .zip(b)
            .map(|(p, q)| p.total_cmp(q))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut sorted = Vec::with_capacity(vertices.len());
    for &i in &order {
        sorted.extend_from_slice(&vertices[i * dims..(i + 1) * dims]);
    }
    Ok(sorted)
}

/// Solves `A·x = b` (row-major `n×n`) by Gaussian elimination with partial
/// pivoting. Returns `None` for (near-)singular systems.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot: largest |a[row][col]| among remaining rows.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in col + 1..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < PIVOT_EPS {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for j in col + 1..n {
            acc -= a[col * n + j] * x[j];
        }
        x[col] = acc / a[col * n + col];
        if !x[col].is_finite() {
            return None;
        }
    }
    Some(x)
}

/// The dominance relation a query runs under: classical Pareto (the paper's
/// Definition 1, the default) or a flexible F-dominance family.
///
/// Carried by [`MapSet`](crate::mapping::MapSet) so the model travels with
/// the query through every layer — executor, ingest, baselines, query
/// planner — without new plumbing. Cloning is cheap (`Arc`).
#[derive(Debug, Clone, Default)]
pub enum DominanceModel {
    /// Classical Pareto dominance under the query's preference.
    #[default]
    Pareto,
    /// F-dominance over a weight polytope.
    Flexible(Arc<FDominance>),
}

impl DominanceModel {
    /// Wraps a built F-dominance family.
    pub fn flexible(fdom: FDominance) -> Self {
        DominanceModel::Flexible(Arc::new(fdom))
    }

    /// True for the classical Pareto model.
    #[inline]
    pub fn is_pareto(&self) -> bool {
        matches!(self, DominanceModel::Pareto)
    }

    /// The flexible family, when one is configured.
    pub fn as_flexible(&self) -> Option<&FDominance> {
        match self {
            DominanceModel::Pareto => None,
            DominanceModel::Flexible(f) => Some(f),
        }
    }

    /// True iff `a` dominates `b`, both **oriented** (lower-is-better in
    /// every dimension). For `Pareto` this is exactly the all-lowest
    /// Definition 1 test the engine has always used.
    #[inline]
    pub fn dominates_oriented(&self, a: &[f64], b: &[f64]) -> bool {
        match self {
            DominanceModel::Pareto => pareto_lowest_dominates(a, b),
            DominanceModel::Flexible(f) => f.dominates_oriented(a, b),
        }
    }

    /// Validates the model against a query's output dimensionality.
    pub fn check_dims(&self, out_dims: usize) -> std::result::Result<(), FdomError> {
        match self {
            DominanceModel::Pareto => Ok(()),
            DominanceModel::Flexible(f) if f.dims() == out_dims => Ok(()),
            DominanceModel::Flexible(f) => Err(FdomError::DimensionMismatch {
                model: f.dims(),
                query: out_dims,
            }),
        }
    }
}

/// All-lowest Pareto dominance on oriented values (`a ≤ b` everywhere,
/// strictly somewhere) — the relation every oriented-space component of the
/// engine used before the model became pluggable.
#[inline]
pub(crate) fn pareto_lowest_dominates(a: &[f64], b: &[f64]) -> bool {
    kernel::dominates_scalar(a, b)
}

/// Raw-orientation [`Dominance`] view of a query's model, for the skyline
/// crate's model-generic algorithms (the baselines' final passes). Borrows
/// the query's per-dimension orders and its [`DominanceModel`].
#[derive(Debug, Clone, Copy)]
pub struct QueryDominance<'a> {
    orders: &'a [Order],
    model: &'a DominanceModel,
}

impl<'a> QueryDominance<'a> {
    /// Bundles the query's orders with its dominance model.
    pub fn new(orders: &'a [Order], model: &'a DominanceModel) -> Self {
        Self { orders, model }
    }
}

impl Dominance for QueryDominance<'_> {
    #[inline]
    fn dims(&self) -> usize {
        self.orders.len()
    }

    #[inline]
    fn dominates(&self, a: &[f64], b: &[f64]) -> bool {
        match self.model {
            // Definition 1 under the query's orders — the shared scalar
            // kernel, identical to `Preference::dominates`.
            DominanceModel::Pareto => kernel::dominates_ordered(self.orders, a, b),
            DominanceModel::Flexible(f) => f.dominates_raw(self.orders, a, b),
        }
    }

    #[inline]
    fn monotone_score(&self, a: &[f64]) -> f64 {
        match self.model {
            DominanceModel::Pareto => self.orders.iter().zip(a).map(|(o, &v)| o.orient(v)).sum(),
            DominanceModel::Flexible(f) => {
                // Σ_k v_k·oriented(a): strictly monotone because a strict
                // witness in W implies a strict witness at some vertex.
                self.orders
                    .iter()
                    .zip(a)
                    .zip(&f.score_weights)
                    .map(|((o, &v), &w)| w * o.orient(v))
                    .sum()
            }
        }
    }

    #[inline]
    fn kernel_dims(&self) -> usize {
        match self.model {
            DominanceModel::Pareto => self.orders.len(),
            DominanceModel::Flexible(f) => f.vertex_count(),
        }
    }

    #[inline]
    fn project_kernel(&self, a: &[f64], out: &mut Vec<f64>) {
        match self.model {
            DominanceModel::Pareto => kernel::orient_into(self.orders, a, out),
            DominanceModel::Flexible(f) => f.project_raw_into(self.orders, a, out),
        }
    }

    #[inline]
    fn kernel_is_identity(&self) -> bool {
        self.model.is_pareto() && self.orders.iter().all(|o| *o == Order::Lowest)
    }
}

impl From<FdomError> for Error {
    fn from(e: FdomError) -> Self {
        Error::Dominance(e)
    }
}

/// Convenience: builds a `DominanceModel::Flexible` from raw
/// `(coeffs, bound)` pairs, validating against `dims`.
pub fn flexible_model(dims: usize, constraints: Vec<(Vec<f64>, f64)>) -> Result<DominanceModel> {
    let constraints = constraints
        .into_iter()
        .map(|(coeffs, bound)| WeightConstraint::le(coeffs, bound))
        .collect();
    let fdom = FDominance::new(dims, constraints).map_err(Error::Dominance)?;
    Ok(DominanceModel::flexible(fdom))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band(dims: usize, lo: f64, hi: f64) -> Vec<WeightConstraint> {
        let mut cs = Vec::new();
        for d in 0..dims {
            cs.push(WeightConstraint::at_least(dims, d, lo));
            cs.push(WeightConstraint::at_most(dims, d, hi));
        }
        cs
    }

    #[test]
    fn simplex_vertices_are_unit_vectors() {
        let f = FDominance::simplex(3).unwrap();
        assert_eq!(f.vertex_count(), 3);
        for v in f.vertices() {
            assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);
            assert_eq!(v.iter().filter(|&&x| x == 0.0).count(), 2);
        }
    }

    #[test]
    fn simplex_fdominance_equals_pareto() {
        let f = FDominance::simplex(2).unwrap();
        assert!(f.dominates_oriented(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(f.dominates_oriented(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(
            !f.dominates_oriented(&[2.0, 2.0], &[2.0, 2.0]),
            "irreflexive"
        );
        assert!(!f.dominates_oriented(&[1.0, 3.0], &[2.0, 2.0]), "trade-off");
    }

    #[test]
    fn enumerated_trivial_constraints_recover_the_simplex() {
        // w_i ≤ 1 binds nowhere: the enumerated vertices must be the unit
        // vectors (up to tolerance), i.e. still Pareto.
        let f = FDominance::new(3, band(3, 0.0, 1.0)).unwrap();
        assert_eq!(f.vertex_count(), 3);
        for v in f.vertices() {
            assert!(v.iter().any(|&x| (x - 1.0).abs() < 1e-9));
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tight_band_allows_tradeoff_dominance() {
        // Weights confined near (0.5, 0.5): (0, 10) scores ~5, (8, 0)
        // scores ~4 — so (8, 0) F-dominates (0, 10) although they are
        // Pareto-incomparable.
        let f = FDominance::new(2, band(2, 0.45, 0.55)).unwrap();
        assert!(f.vertex_count() >= 2);
        assert!(f.dominates_oriented(&[8.0, 0.0], &[0.0, 10.0]));
        assert!(!f.dominates_oriented(&[0.0, 10.0], &[8.0, 0.0]));
        // Pareto dominance still implies F-dominance.
        assert!(f.dominates_oriented(&[1.0, 1.0], &[2.0, 2.0]));
    }

    #[test]
    fn pareto_implies_fdominance_on_random_points() {
        // The soundness assertion behind reusing every Pareto pruning step
        // under a flexible model.
        let f = FDominance::new(3, band(3, 0.1, 0.8)).unwrap();
        let mut x: u64 = 9;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % 100) as f64 / 10.0
        };
        for _ in 0..500 {
            let a = [next(), next(), next()];
            let b = [next(), next(), next()];
            if pareto_lowest_dominates(&a, &b) {
                assert!(
                    f.dominates_oriented(&a, &b),
                    "Pareto {a:?} ≺ {b:?} must imply F-dominance"
                );
            }
        }
    }

    #[test]
    fn empty_polytope_is_a_typed_error() {
        // w_0 ≥ 0.9 and w_0 ≤ 0.1 cannot both hold.
        let cs = vec![
            WeightConstraint::at_least(2, 0, 0.9),
            WeightConstraint::at_most(2, 0, 0.1),
        ];
        assert_eq!(
            FDominance::new(2, cs).unwrap_err(),
            FdomError::EmptyPolytope
        );
        // A negative upper bound conflicts with w ≥ 0.
        let cs = vec![WeightConstraint::at_most(2, 0, -0.5)];
        assert_eq!(
            FDominance::new(2, cs).unwrap_err(),
            FdomError::EmptyPolytope
        );
    }

    #[test]
    fn nan_and_arity_are_typed_errors() {
        let cs = vec![WeightConstraint::le(vec![f64::NAN, 0.0], 1.0)];
        assert_eq!(
            FDominance::new(2, cs).unwrap_err(),
            FdomError::NonFinite { constraint: 0 }
        );
        let cs = vec![WeightConstraint::le(vec![1.0], f64::INFINITY)];
        assert_eq!(
            FDominance::new(1, cs).unwrap_err(),
            FdomError::NonFinite { constraint: 0 }
        );
        let cs = vec![WeightConstraint::le(vec![1.0, 0.0, 0.0], 1.0)];
        assert_eq!(
            FDominance::new(2, cs).unwrap_err(),
            FdomError::ConstraintArity {
                constraint: 0,
                expected: 2,
                got: 3
            }
        );
        assert_eq!(
            FDominance::new(0, vec![]).unwrap_err(),
            FdomError::NoDimensions
        );
        assert!(matches!(
            FDominance::new(99, vec![]).unwrap_err(),
            FdomError::TooManyDimensions { .. }
        ));
        let too_many = (0..MAX_WEIGHT_CONSTRAINTS + 1)
            .map(|_| WeightConstraint::at_most(2, 0, 1.0))
            .collect();
        assert!(matches!(
            FDominance::new(2, too_many).unwrap_err(),
            FdomError::TooManyConstraints { .. }
        ));
    }

    #[test]
    fn one_dimensional_family_is_total_order() {
        let f = FDominance::simplex(1).unwrap();
        assert_eq!(f.vertex_count(), 1);
        assert!(f.dominates_oriented(&[1.0], &[2.0]));
        assert!(!f.dominates_oriented(&[2.0], &[1.0]));
        assert!(!f.dominates_oriented(&[2.0], &[2.0]));
        // Infeasible 1-d constraints are caught too.
        let cs = vec![WeightConstraint::at_most(1, 0, 0.5)];
        assert_eq!(
            FDominance::new(1, cs).unwrap_err(),
            FdomError::EmptyPolytope
        );
    }

    #[test]
    fn projections_reduce_weak_fdominance_to_componentwise_leq() {
        let f = FDominance::new(2, band(2, 0.3, 0.7)).unwrap();
        let a = [1.0, 4.0];
        let b = [2.0, 3.5];
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        f.project_into(&a, &mut pa);
        f.project_into(&b, &mut pb);
        let weak = pa.iter().zip(&pb).all(|(x, y)| x <= y);
        // Cross-check against the definition at every vertex.
        let by_def = f.vertices().all(|v| {
            let da: f64 = v.iter().zip(&a).map(|(x, y)| x * y).sum();
            let db: f64 = v.iter().zip(&b).map(|(x, y)| x * y).sum();
            da <= db
        });
        assert_eq!(weak, by_def);
    }

    #[test]
    fn model_defaults_to_pareto_and_validates_dims() {
        let m = DominanceModel::default();
        assert!(m.is_pareto());
        assert!(m.check_dims(5).is_ok());
        let f = DominanceModel::flexible(FDominance::simplex(2).unwrap());
        assert!(f.check_dims(2).is_ok());
        assert_eq!(
            f.check_dims(3).unwrap_err(),
            FdomError::DimensionMismatch { model: 2, query: 3 }
        );
    }

    #[test]
    fn query_dominance_matches_preference_for_pareto() {
        use progxe_skyline::Preference;
        let orders = vec![Order::Lowest, Order::Highest];
        let pref = Preference::new(orders.clone());
        let model = DominanceModel::Pareto;
        let qd = QueryDominance::new(&orders, &model);
        let cases = [
            ([1.0, 9.0], [2.0, 5.0]),
            ([1.0, 5.0], [2.0, 9.0]),
            ([3.0, 3.0], [3.0, 3.0]),
            ([2.0, 7.0], [2.0, 5.0]),
        ];
        for (a, b) in cases {
            assert_eq!(qd.dominates(&a, &b), pref.dominates(&a, &b));
            assert_eq!(qd.dominates(&b, &a), pref.dominates(&b, &a));
            assert_eq!(qd.monotone_score(&a), pref.monotone_score(&a));
        }
    }

    #[test]
    fn query_dominance_monotone_score_is_strict_under_fdominance() {
        let orders = vec![Order::Lowest, Order::Lowest];
        let fdom = FDominance::new(2, band(2, 0.4, 0.6)).unwrap();
        let model = DominanceModel::flexible(fdom);
        let qd = QueryDominance::new(&orders, &model);
        let mut x: u64 = 77;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % 100) as f64 / 10.0
        };
        let mut hits = 0;
        for _ in 0..1000 {
            let a = [next(), next()];
            let b = [next(), next()];
            if qd.dominates(&a, &b) {
                hits += 1;
                assert!(qd.monotone_score(&a) < qd.monotone_score(&b));
            }
        }
        assert!(hits > 10, "generator produced only {hits} dominated pairs");
    }
}
