//! Executor configuration: grid granularity, ordering policy, signatures,
//! and the tuple-level parallelism knob.

use crate::error::{Error, Result};
use std::num::NonZeroUsize;

/// How regions are ordered for tuple-level processing (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// The paper's ProgOrder: rank = Benefit / Cost over EL-Graph roots
    /// (Algorithm 1). This is "ProgXe" in the experiments.
    ProgOrder,
    /// Regions are processed in a seeded random order — the paper's
    /// "ProgXe (No-Order)" variation. Progressive result determination
    /// stays enabled, so output is still early and correct; only the
    /// *rate* optimization is disabled.
    Random {
        /// Shuffle seed (deterministic given the seed).
        seed: u64,
    },
    /// Regions in creation order — a deterministic ablation point between
    /// ProgOrder and Random.
    Fifo,
}

/// Join-signature realization per input partition (Section III-A: "either
/// Bloom Filter or a bit vector").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureConfig {
    /// Exact bitset over the join-key domain. Overlap ⇒ the partition pair
    /// is *guaranteed* to produce a join result, enabling region-level
    /// dominance pruning.
    Exact,
    /// Bloom filter with the given number of bits. Overlap may be a false
    /// positive, so the executor automatically downgrades region-level
    /// pruning to populated-cell marking only (see DESIGN.md §5.3).
    Bloom {
        /// Filter size in bits (rounded up to a multiple of 64).
        bits: usize,
    },
}

/// Configuration of the ProgXe executor.
///
/// The defaults target the scaled-down experiment sizes of this
/// reproduction (N ≈ 10K–100K); `input_partitions_per_dim` is the paper's
/// input grid granularity and `output_cells_per_dim` its output partition
/// size δ (expressed as a cell count, since the output extent is data-
/// dependent).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgXeConfig {
    /// Grid partitions per attribute dimension on each input source.
    pub input_partitions_per_dim: usize,
    /// Output-grid cells per output dimension (the paper's δ).
    pub output_cells_per_dim: usize,
    /// Region-ordering policy for tuple-level processing.
    pub ordering: OrderingPolicy,
    /// Join-signature realization.
    pub signature: SignatureConfig,
    /// Apply skyline partial push-through to each source before grid
    /// construction (the "+" in ProgXe+; Section VI-B).
    pub push_through: bool,
    /// Join selectivity hint used by the benefit model (Equation 1). When
    /// `None`, estimated as `1 / distinct-join-keys`.
    pub selectivity_hint: Option<f64>,
    /// Emit per-region batches even when empty (useful for tracing).
    pub emit_empty_batches: bool,
    /// Worker threads for the tuple-level phase. `1` (the default) runs the
    /// classic sequential region loop inside [`crate::executor::ProgXe`];
    /// larger values are honored by the `progxe-runtime` crate's parallel
    /// driver (and by the query layer's engine dispatch), which fans
    /// region work units across a thread pool while a single ordered
    /// committer preserves the progressive-emission guarantees.
    pub threads: NonZeroUsize,
}

impl Default for ProgXeConfig {
    fn default() -> Self {
        Self {
            input_partitions_per_dim: 3,
            output_cells_per_dim: 24,
            ordering: OrderingPolicy::ProgOrder,
            signature: SignatureConfig::Exact,
            push_through: false,
            selectivity_hint: None,
            emit_empty_batches: false,
            threads: NonZeroUsize::MIN,
        }
    }
}

impl ProgXeConfig {
    /// The paper's four experimental variations (Section VI-B).
    ///
    /// * `ordered = true,  push = false` → ProgXe
    /// * `ordered = true,  push = true ` → ProgXe+
    /// * `ordered = false, push = false` → ProgXe (No-Order)
    /// * `ordered = false, push = true ` → ProgXe+ (No-Order)
    pub fn variation(ordered: bool, push: bool) -> Self {
        Self {
            ordering: if ordered {
                OrderingPolicy::ProgOrder
            } else {
                OrderingPolicy::Random { seed: 0x5EED }
            },
            push_through: push,
            ..Self::default()
        }
    }

    /// Builder: set input grid granularity.
    pub fn with_input_partitions(mut self, per_dim: usize) -> Self {
        self.input_partitions_per_dim = per_dim;
        self
    }

    /// Builder: set output grid granularity (δ).
    pub fn with_output_cells(mut self, per_dim: usize) -> Self {
        self.output_cells_per_dim = per_dim;
        self
    }

    /// Builder: set ordering policy.
    pub fn with_ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Builder: set signature kind.
    pub fn with_signature(mut self, signature: SignatureConfig) -> Self {
        self.signature = signature;
        self
    }

    /// Builder: toggle push-through.
    pub fn with_push_through(mut self, enabled: bool) -> Self {
        self.push_through = enabled;
        self
    }

    /// Builder: provide the benefit model's selectivity hint.
    pub fn with_selectivity_hint(mut self, sigma: f64) -> Self {
        self.selectivity_hint = Some(sigma);
        self
    }

    /// Builder: set the tuple-level worker thread count. Values below 1
    /// are clamped to 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero");
        self
    }

    /// The default configuration with environment overrides applied.
    ///
    /// Recognized variables:
    /// * `PROGXE_THREADS` — tuple-level worker thread count (≥ 1).
    ///
    /// Unset, empty, or unparsable variables leave the default untouched,
    /// so `from_env()` is always safe to call.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(v) = std::env::var("PROGXE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    config = config.with_threads(n);
                }
            }
        }
        config
    }

    /// Validates field ranges.
    pub fn validate(&self) -> Result<()> {
        if self.input_partitions_per_dim == 0 {
            return Err(Error::InvalidConfig("input_partitions_per_dim must be > 0"));
        }
        if self.output_cells_per_dim == 0 {
            return Err(Error::InvalidConfig("output_cells_per_dim must be > 0"));
        }
        if self.output_cells_per_dim > u16::MAX as usize {
            return Err(Error::InvalidConfig(
                "output_cells_per_dim must fit in 16 bits",
            ));
        }
        if let SignatureConfig::Bloom { bits } = self.signature {
            if bits == 0 {
                return Err(Error::InvalidConfig("bloom signature needs > 0 bits"));
            }
        }
        if let Some(s) = self.selectivity_hint {
            if !(s > 0.0 && s <= 1.0) {
                return Err(Error::InvalidConfig("selectivity_hint must be in (0, 1]"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ProgXeConfig::default().validate().is_ok());
    }

    #[test]
    fn variations_toggle_the_right_knobs() {
        let v = ProgXeConfig::variation(true, true);
        assert_eq!(v.ordering, OrderingPolicy::ProgOrder);
        assert!(v.push_through);
        let v = ProgXeConfig::variation(false, false);
        assert!(matches!(v.ordering, OrderingPolicy::Random { .. }));
        assert!(!v.push_through);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ProgXeConfig::default()
            .with_input_partitions(0)
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_output_cells(0)
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_signature(SignatureConfig::Bloom { bits: 0 })
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_selectivity_hint(0.0)
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_selectivity_hint(1.5)
            .validate()
            .is_err());
    }

    #[test]
    fn builders_chain() {
        let c = ProgXeConfig::default()
            .with_input_partitions(4)
            .with_output_cells(32)
            .with_push_through(true)
            .with_selectivity_hint(0.01)
            .with_threads(4);
        assert_eq!(c.input_partitions_per_dim, 4);
        assert_eq!(c.output_cells_per_dim, 32);
        assert!(c.push_through);
        assert_eq!(c.selectivity_hint, Some(0.01));
        assert_eq!(c.threads.get(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn threads_clamp_to_one() {
        assert_eq!(ProgXeConfig::default().threads.get(), 1);
        assert_eq!(ProgXeConfig::default().with_threads(0).threads.get(), 1);
    }

    #[test]
    fn from_env_honors_thread_override() {
        // Serialize against any other env-reading test via a named var.
        std::env::set_var("PROGXE_THREADS", "3");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 3);
        std::env::set_var("PROGXE_THREADS", "not-a-number");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 1);
        std::env::set_var("PROGXE_THREADS", "0");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 1);
        std::env::remove_var("PROGXE_THREADS");
        assert_eq!(ProgXeConfig::from_env(), ProgXeConfig::default());
    }
}
