//! Executor configuration: grid granularity, ordering policy, signatures,
//! and the tuple-level parallelism knob.

use crate::error::{Error, Result};
use std::num::NonZeroUsize;

/// How regions are ordered for tuple-level processing (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// The paper's ProgOrder: rank = Benefit / Cost over EL-Graph roots
    /// (Algorithm 1). This is "ProgXe" in the experiments.
    ProgOrder,
    /// Regions are processed in a seeded random order — the paper's
    /// "ProgXe (No-Order)" variation. Progressive result determination
    /// stays enabled, so output is still early and correct; only the
    /// *rate* optimization is disabled.
    Random {
        /// Shuffle seed (deterministic given the seed).
        seed: u64,
    },
    /// Regions in creation order — a deterministic ablation point between
    /// ProgOrder and Random.
    Fifo,
}

/// Join-signature realization per input partition (Section III-A: "either
/// Bloom Filter or a bit vector").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureConfig {
    /// Exact bitset over the join-key domain. Overlap ⇒ the partition pair
    /// is *guaranteed* to produce a join result, enabling region-level
    /// dominance pruning.
    Exact,
    /// Bloom filter with the given number of bits. Overlap may be a false
    /// positive, so the executor automatically downgrades region-level
    /// pruning to populated-cell marking only (see DESIGN.md §5.3).
    Bloom {
        /// Filter size in bits (rounded up to a multiple of 64).
        bits: usize,
    },
}

/// Configuration of the ProgXe executor.
///
/// The defaults target the scaled-down experiment sizes of this
/// reproduction (N ≈ 10K–100K); `input_partitions_per_dim` is the paper's
/// input grid granularity and `output_cells_per_dim` its output partition
/// size δ (expressed as a cell count, since the output extent is data-
/// dependent).
///
/// Deliberately **not** here: the dominance relation. A flexible-skyline
/// weight family ([`crate::fdom::DominanceModel`]) has the query's output
/// dimensionality baked in, so it travels with the query on
/// [`MapSet::with_dominance`](crate::mapping::MapSet::with_dominance)
/// (set by the planner's `WITH WEIGHTS` clause) rather than on this
/// engine-lifetime configuration — one engine serves Pareto and flexible
/// queries interchangeably.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgXeConfig {
    /// Grid partitions per attribute dimension on each input source.
    pub input_partitions_per_dim: usize,
    /// Output-grid cells per output dimension (the paper's δ).
    pub output_cells_per_dim: usize,
    /// Region-ordering policy for tuple-level processing.
    pub ordering: OrderingPolicy,
    /// Join-signature realization.
    pub signature: SignatureConfig,
    /// Apply skyline partial push-through to each source before grid
    /// construction (the "+" in ProgXe+; Section VI-B).
    pub push_through: bool,
    /// Join selectivity hint used by the benefit model (Equation 1). When
    /// `None`, estimated as `1 / distinct-join-keys`.
    pub selectivity_hint: Option<f64>,
    /// Emit per-region batches even when empty (useful for tracing).
    pub emit_empty_batches: bool,
    /// Worker threads for the tuple-level phase. `1` (the default) runs the
    /// unified region driver on its `Inline` backend inside
    /// [`crate::executor::ProgXe`]; larger values are honored by the
    /// `progxe-runtime` crate's pooled driver (and by the query layer's
    /// engine dispatch), which fans region work units across a shared
    /// thread pool while a single ordered committer preserves the
    /// progressive-emission guarantees.
    pub threads: NonZeroUsize,
    /// Join-pair bound (`n_R · n_T` of a region's partition pair) at which
    /// the `Inline` backend materializes the region batch and runs the
    /// bounded local skyline pre-filter before cell-store insertion —
    /// the arrangement that measured ~1.8× on the 10k anti-correlated
    /// d=3 σ=0.1 workload. Regions below the bound stream their matches
    /// straight into the store, avoiding the batch allocation. `0` forces
    /// the batch path everywhere; `usize::MAX` disables it (the pre-PR
    /// streaming behavior). Pool workers always pre-filter.
    pub prefilter_min_pairs: usize,
}

/// Default [`ProgXeConfig::prefilter_min_pairs`]: regions at or above this
/// join-pair bound take the batch + local-skyline pre-filter path on the
/// `Inline` backend. Measured on the `figures -- threads` workload (10k
/// anti-correlated, d=3, σ=0.1, see `BENCH_threads.json`): the pre-filter
/// arrangement beats the streaming insert ~1.8× end to end, and gate
/// values from 0 to 4096 are indistinguishable there (the workload is
/// dominated by large regions). 4096 is chosen so that *small* regions —
/// the latency-sensitive case the big workload cannot see — keep the
/// allocation-free streaming path.
pub const DEFAULT_PREFILTER_MIN_PAIRS: usize = 4_096;

impl Default for ProgXeConfig {
    fn default() -> Self {
        Self {
            input_partitions_per_dim: 3,
            output_cells_per_dim: 24,
            ordering: OrderingPolicy::ProgOrder,
            signature: SignatureConfig::Exact,
            push_through: false,
            selectivity_hint: None,
            emit_empty_batches: false,
            threads: NonZeroUsize::MIN,
            prefilter_min_pairs: DEFAULT_PREFILTER_MIN_PAIRS,
        }
    }
}

impl ProgXeConfig {
    /// The paper's four experimental variations (Section VI-B).
    ///
    /// * `ordered = true,  push = false` → ProgXe
    /// * `ordered = true,  push = true ` → ProgXe+
    /// * `ordered = false, push = false` → ProgXe (No-Order)
    /// * `ordered = false, push = true ` → ProgXe+ (No-Order)
    pub fn variation(ordered: bool, push: bool) -> Self {
        Self {
            ordering: if ordered {
                OrderingPolicy::ProgOrder
            } else {
                OrderingPolicy::Random { seed: 0x5EED }
            },
            push_through: push,
            ..Self::default()
        }
    }

    /// Builder: set input grid granularity.
    pub fn with_input_partitions(mut self, per_dim: usize) -> Self {
        self.input_partitions_per_dim = per_dim;
        self
    }

    /// Builder: set output grid granularity (δ).
    pub fn with_output_cells(mut self, per_dim: usize) -> Self {
        self.output_cells_per_dim = per_dim;
        self
    }

    /// Builder: set ordering policy.
    pub fn with_ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Builder: set signature kind.
    pub fn with_signature(mut self, signature: SignatureConfig) -> Self {
        self.signature = signature;
        self
    }

    /// Builder: toggle push-through.
    pub fn with_push_through(mut self, enabled: bool) -> Self {
        self.push_through = enabled;
        self
    }

    /// Builder: provide the benefit model's selectivity hint.
    pub fn with_selectivity_hint(mut self, sigma: f64) -> Self {
        self.selectivity_hint = Some(sigma);
        self
    }

    /// Builder: set the tuple-level worker thread count. Values below 1
    /// are clamped to 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero");
        self
    }

    /// Builder: set the `Inline` backend's local-skyline pre-filter gate
    /// (see [`ProgXeConfig::prefilter_min_pairs`]).
    pub fn with_prefilter_min_pairs(mut self, min_pairs: usize) -> Self {
        self.prefilter_min_pairs = min_pairs;
        self
    }

    /// The default configuration with environment overrides applied.
    ///
    /// Recognized variables:
    /// * `PROGXE_THREADS` — tuple-level worker thread count (≥ 1).
    ///
    /// `from_env()` never errors or panics: per the `progxe_obs::env`
    /// contract, an unset or empty variable is silently ignored, and a
    /// malformed or zero value falls back to the default thread count with
    /// a `progxe_obs::log` warning echoing the value (filterable via
    /// `PROGXE_LOG`) — a bad deployment environment must degrade to
    /// sequential execution, not take the query layer down.
    pub fn from_env() -> Self {
        let config = Self::default();
        let threads =
            progxe_obs::env::parse_usize_at_least("PROGXE_THREADS", config.threads.get(), 1);
        config.with_threads(threads)
    }

    /// Validates field ranges.
    pub fn validate(&self) -> Result<()> {
        if self.input_partitions_per_dim == 0 {
            return Err(Error::InvalidConfig("input_partitions_per_dim must be > 0"));
        }
        if self.output_cells_per_dim == 0 {
            return Err(Error::InvalidConfig("output_cells_per_dim must be > 0"));
        }
        if self.output_cells_per_dim > u16::MAX as usize {
            return Err(Error::InvalidConfig(
                "output_cells_per_dim must fit in 16 bits",
            ));
        }
        if let SignatureConfig::Bloom { bits } = self.signature {
            if bits == 0 {
                return Err(Error::InvalidConfig("bloom signature needs > 0 bits"));
            }
        }
        if let Some(s) = self.selectivity_hint {
            if !(s > 0.0 && s <= 1.0) {
                return Err(Error::InvalidConfig("selectivity_hint must be in (0, 1]"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ProgXeConfig::default().validate().is_ok());
    }

    #[test]
    fn variations_toggle_the_right_knobs() {
        let v = ProgXeConfig::variation(true, true);
        assert_eq!(v.ordering, OrderingPolicy::ProgOrder);
        assert!(v.push_through);
        let v = ProgXeConfig::variation(false, false);
        assert!(matches!(v.ordering, OrderingPolicy::Random { .. }));
        assert!(!v.push_through);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ProgXeConfig::default()
            .with_input_partitions(0)
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_output_cells(0)
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_signature(SignatureConfig::Bloom { bits: 0 })
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_selectivity_hint(0.0)
            .validate()
            .is_err());
        assert!(ProgXeConfig::default()
            .with_selectivity_hint(1.5)
            .validate()
            .is_err());
    }

    #[test]
    fn builders_chain() {
        let c = ProgXeConfig::default()
            .with_input_partitions(4)
            .with_output_cells(32)
            .with_push_through(true)
            .with_selectivity_hint(0.01)
            .with_threads(4);
        assert_eq!(c.input_partitions_per_dim, 4);
        assert_eq!(c.output_cells_per_dim, 32);
        assert!(c.push_through);
        assert_eq!(c.selectivity_hint, Some(0.01));
        assert_eq!(c.threads.get(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn threads_clamp_to_one() {
        assert_eq!(ProgXeConfig::default().threads.get(), 1);
        assert_eq!(ProgXeConfig::default().with_threads(0).threads.get(), 1);
    }

    #[test]
    fn from_env_honors_thread_override_and_survives_bad_values() {
        // One test fn for every PROGXE_THREADS case: env mutation is
        // process-global, so the cases must not run in parallel.
        std::env::set_var("PROGXE_THREADS", "3");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 3);
        // Malformed value: falls back to the default (with a stderr note),
        // never errors or panics.
        std::env::set_var("PROGXE_THREADS", "not-a-number");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 1);
        std::env::set_var("PROGXE_THREADS", "-2");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 1);
        std::env::set_var("PROGXE_THREADS", "4.5");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 1);
        // Zero: NonZeroUsize cannot hold it; falls back to the default.
        std::env::set_var("PROGXE_THREADS", "0");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 1);
        // Whitespace-padded valid value still parses.
        std::env::set_var("PROGXE_THREADS", " 2 ");
        assert_eq!(ProgXeConfig::from_env().threads.get(), 2);
        // Empty and unset are silently the default.
        std::env::set_var("PROGXE_THREADS", "");
        assert_eq!(ProgXeConfig::from_env(), ProgXeConfig::default());
        std::env::remove_var("PROGXE_THREADS");
        assert_eq!(ProgXeConfig::from_env(), ProgXeConfig::default());
    }

    #[test]
    fn prefilter_gate_builder() {
        let c = ProgXeConfig::default();
        assert_eq!(c.prefilter_min_pairs, DEFAULT_PREFILTER_MIN_PAIRS);
        assert_eq!(
            c.with_prefilter_min_pairs(usize::MAX).prefilter_min_pairs,
            usize::MAX
        );
        assert!(ProgXeConfig::default()
            .with_prefilter_min_pairs(0)
            .validate()
            .is_ok());
    }
}
