//! The ProgXe executor: Figure 2's pipeline end to end.
//!
//! ```text
//! sources ─▶ (push-through?) ─▶ input grids ─▶ output-space look-ahead
//!        ─▶ progressive-driven ordering ─▶ tuple-level processing
//!        ─▶ progressive result determination ─▶ sink (early, safe output)
//! ```
//!
//! The executor is deterministic given its configuration: grid construction,
//! region ids, EL-graph tie-breaks, and the `Random` ordering's shuffle are
//! all seeded or ordinal.

use crate::benefit;
use crate::cells::CellStore;
use crate::config::{OrderingPolicy, ProgXeConfig};
use crate::cost::CostModel;
use crate::elgraph::ElGraph;
use crate::error::{Error, Result};
use crate::fxhash::FxHashMap;
use crate::grid::InputGrid;
use crate::lookahead::{run_lookahead, track_cells};
use crate::mapping::MapSet;
use crate::output_grid::MAX_DIMS;
use crate::progdetermine::{EmittedCell, ProgDetermine};
use crate::progorder::ProgOrderQueue;
use crate::pushthrough::{push_through, Side};
use crate::sink::{CollectSink, ResultSink};
use crate::source::SourceView;
use crate::stats::{ExecStats, ResultTuple};
use crate::tuple_level::process_region;
use progxe_skyline::PointStore;
use std::time::Instant;

/// Cell-visit cap for ProgCount scans on oversized region boxes.
const PROG_COUNT_VISIT_CAP: u64 = 4_096;

/// The progressive SkyMapJoin executor.
#[derive(Debug, Clone, Default)]
pub struct ProgXe {
    config: ProgXeConfig,
}

/// Collected output of [`ProgXe::run_collect`].
#[derive(Debug)]
pub struct RunOutput {
    /// All results in emission order.
    pub results: Vec<ResultTuple>,
    /// Run statistics.
    pub stats: ExecStats,
}

impl ProgXe {
    /// Creates an executor with the given configuration.
    pub fn new(config: ProgXeConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProgXeConfig {
        &self.config
    }

    /// Runs the query, pushing result batches into `sink` as soon as they
    /// are proven final. Returns run statistics.
    pub fn run<S: ResultSink + ?Sized>(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
        sink: &mut S,
    ) -> Result<ExecStats> {
        self.config.validate()?;
        if maps.out_dims() > MAX_DIMS {
            return Err(Error::TooManyDimensions {
                dims: maps.out_dims(),
                max: MAX_DIMS,
            });
        }
        let start = Instant::now();
        let mut stats = ExecStats::default();
        if r.is_empty() || t.is_empty() {
            stats.total_time = start.elapsed();
            return Ok(stats);
        }

        // ── Push-through (ProgXe+) ────────────────────────────────────────
        // `kept_*` map filtered row ids back to the caller's original rows.
        let (kept_r, kept_t) = if self.config.push_through {
            match (
                push_through(r, maps, Side::R),
                push_through(t, maps, Side::T),
            ) {
                (Some(kr), Some(kt)) => {
                    stats.push_through_pruned_r = r.len() - kr.len();
                    stats.push_through_pruned_t = t.len() - kt.len();
                    (kr, kt)
                }
                _ => {
                    stats.push_through_skipped = true;
                    ((0..r.len() as u32).collect(), (0..t.len() as u32).collect())
                }
            }
        } else {
            ((0..r.len() as u32).collect(), (0..t.len() as u32).collect())
        };

        // ── Dense join-key remapping ─────────────────────────────────────
        // Exact signatures are bitsets over the join domain; remapping to
        // dense ids bounds them by the number of *distinct* keys.
        let mut key_ids: FxHashMap<u32, u32> = FxHashMap::default();
        let mut dense = |k: u32| -> u32 {
            let next = key_ids.len() as u32;
            *key_ids.entry(k).or_insert(next)
        };
        let (r_attrs, r_keys) = filter_source(r, &kept_r, &mut dense);
        let (t_attrs, t_keys) = filter_source(t, &kept_t, &mut dense);
        let join_domain = key_ids.len();
        let r_view = SourceView::new(&r_attrs, &r_keys)?;
        let t_view = SourceView::new(&t_attrs, &t_keys)?;
        if r_view.is_empty() || t_view.is_empty() {
            stats.total_time = start.elapsed();
            return Ok(stats);
        }

        // Selectivity estimate for the benefit/cost models.
        let sigma = self
            .config
            .selectivity_hint
            .unwrap_or(1.0 / join_domain.max(1) as f64);

        // ── Grids + output-space look-ahead ──────────────────────────────
        let per_dim = self.config.input_partitions_per_dim;
        let r_grid = InputGrid::build(&r_view, per_dim, self.config.signature, join_domain);
        let t_grid = InputGrid::build(&t_view, per_dim, self.config.signature, join_domain);
        stats.partitions_r = r_grid.len();
        stats.partitions_t = t_grid.len();

        let la = run_lookahead(
            &r_grid,
            &t_grid,
            maps,
            self.config.output_cells_per_dim as u16,
        );
        stats.pairs_rejected_by_signature = la.pairs_rejected_by_signature;
        stats.regions_pruned_lookahead = la.regions_pruned;
        stats.regions_created = la.regions.len();

        let mut store = CellStore::new(la.grid.clone());
        stats.cells_premarked_dead = track_cells(&la, &mut store);
        stats.cells_tracked = store.len();
        let mut det = ProgDetermine::new(&store, &la.regions);
        stats.lookahead_time = start.elapsed();

        // ── Region processing loop ───────────────────────────────────────
        let orders = maps.preference().orders().to_vec();
        let mut emitted: Vec<EmittedCell> = Vec::new();
        let mut batch: Vec<ResultTuple> = Vec::new();
        let cost_model = CostModel {
            sigma,
            cells_per_dim: self.config.output_cells_per_dim as u16,
            dims: maps.out_dims(),
        };

        let emit_round = |emitted: &mut Vec<EmittedCell>,
                              batch: &mut Vec<ResultTuple>,
                              stats: &mut ExecStats,
                              sink: &mut S| {
            if emitted.is_empty() {
                return;
            }
            batch.clear();
            for cell in emitted.drain(..) {
                stats.cells_emitted += 1;
                for (i, &(ri, ti)) in cell.ids.iter().enumerate() {
                    let oriented = cell.points.point(i);
                    let values = orders
                        .iter()
                        .zip(oriented)
                        .map(|(o, &v)| o.orient(v))
                        .collect();
                    batch.push(ResultTuple {
                        r_idx: kept_r[ri as usize],
                        t_idx: kept_t[ti as usize],
                        values,
                    });
                }
            }
            stats.results_emitted += batch.len() as u64;
            sink.emit_batch(batch);
        };

        let handle_region = |rid: u32,
                                 store: &mut CellStore,
                                 det: &mut ProgDetermine,
                                 stats: &mut ExecStats,
                                 sink: &mut S,
                                 emitted: &mut Vec<EmittedCell>,
                                 batch: &mut Vec<ResultTuple>| {
            let region = &la.regions[rid as usize];
            if store.region_is_dead(&region.cell_lo) {
                stats.regions_discarded_dead += 1;
            } else {
                let rp = &r_grid.partitions()[region.r_part as usize];
                let tp = &t_grid.partitions()[region.t_part as usize];
                let tl = process_region(rp, tp, &r_view, &t_view, maps, store);
                stats.join_pairs_evaluated += tl.pairs_examined;
                stats.join_matches += tl.matches;
                stats.regions_processed += 1;
            }
            det.resolve_region(region, store, emitted);
            emit_round(emitted, batch, stats, sink);
        };

        match self.config.ordering {
            OrderingPolicy::ProgOrder => {
                let n_regions = la.regions.len();
                let mut graph = ElGraph::build(&la.regions, maps.out_dims());
                let mut queue = ProgOrderQueue::new(n_regions);
                // Benefit recomputation is the expensive part of ordering
                // (a box scan per region). To keep the paper's "ordering
                // overhead is negligible" property, ranks are refreshed
                // *lazily*: affected regions are only marked dirty
                // (Algorithm 1 line 13 in spirit), and the recompute happens
                // when the region reaches the top of the queue — with a
                // small re-queue budget per region so dense elimination
                // graphs cannot trigger quadratic rescans.
                let mut rank_cache: Vec<f64> = vec![0.0; n_regions];
                let mut dirty: Vec<bool> = vec![false; n_regions];
                let mut requeue_budget: Vec<u8> = vec![3; n_regions];
                let rank_of = |rid: u32,
                               store: &CellStore,
                               det: &ProgDetermine,
                               cache: &mut Vec<f64>|
                 -> f64 {
                    let region = &la.regions[rid as usize];
                    let b = benefit::benefit(region, store, det, sigma, PROG_COUNT_VISIT_CAP);
                    let c = cost_model.region_cost(region, store.grid()).max(1.0);
                    let rank = b / c;
                    cache[rid as usize] = rank;
                    rank
                };
                for root in graph.roots() {
                    let rank = rank_of(root, &store, &det, &mut rank_cache);
                    queue.push(root, rank);
                }
                while graph.unresolved() > 0 {
                    let rid = match queue.pop_entry() {
                        Some((rid, _)) if graph.is_resolved(rid) => {
                            let _ = rid;
                            continue;
                        }
                        Some((rid, entry_rank)) => {
                            if dirty[rid as usize] && requeue_budget[rid as usize] > 0 {
                                dirty[rid as usize] = false;
                                requeue_budget[rid as usize] -= 1;
                                let fresh = rank_of(rid, &store, &det, &mut rank_cache);
                                if fresh < entry_rank * 0.999 {
                                    // Demoted: let a better region go first.
                                    queue.push(rid, fresh);
                                    continue;
                                }
                            }
                            rid
                        }
                        None => {
                            // Cyclic component with no root (DESIGN.md §5.2):
                            // pick the best pending region by cached rank —
                            // O(regions), no box scans.
                            stats.ordering_fallbacks += 1;
                            graph
                                .pending()
                                .into_iter()
                                .max_by(|&a, &b| {
                                    rank_cache[a as usize]
                                        .total_cmp(&rank_cache[b as usize])
                                        .then_with(|| b.cmp(&a))
                                })
                                .expect("unresolved > 0 implies pending regions")
                        }
                    };
                    handle_region(
                        rid,
                        &mut store,
                        &mut det,
                        &mut stats,
                        sink,
                        &mut emitted,
                        &mut batch,
                    );
                    let (new_roots, affected) = graph.resolve(rid);
                    for nr in new_roots {
                        let rank = rank_of(nr, &store, &det, &mut rank_cache);
                        queue.push(nr, rank);
                    }
                    for a in affected {
                        if queue.contains(a) {
                            dirty[a as usize] = true;
                        }
                    }
                }
            }
            OrderingPolicy::Random { seed } => {
                let mut order: Vec<u32> = (0..la.regions.len() as u32).collect();
                shuffle(&mut order, seed);
                for rid in order {
                    handle_region(
                        rid,
                        &mut store,
                        &mut det,
                        &mut stats,
                        sink,
                        &mut emitted,
                        &mut batch,
                    );
                }
            }
            OrderingPolicy::Fifo => {
                for rid in 0..la.regions.len() as u32 {
                    handle_region(
                        rid,
                        &mut store,
                        &mut det,
                        &mut stats,
                        sink,
                        &mut emitted,
                        &mut batch,
                    );
                }
            }
        }

        // All regions resolved ⇒ every live cell must have been released.
        debug_assert_eq!(det.live_cells(), 0, "cells left blocked after all regions resolved");

        let cell_stats = store.stats();
        stats.dominance_tests = cell_stats.dominance_tests;
        stats.tuples_inserted = cell_stats.tuples_inserted;
        stats.tuples_rejected_dominated = cell_stats.tuples_rejected_dominated;
        stats.tuples_rejected_dead_cell = cell_stats.tuples_rejected_dead_cell;
        stats.tuples_evicted = cell_stats.tuples_evicted;
        stats.comparable_cells_visited = cell_stats.comparable_cells_visited;
        stats.comparable_cells_max = cell_stats.comparable_cells_max;
        stats.total_time = start.elapsed();
        Ok(stats)
    }

    /// Convenience wrapper: run and collect all results.
    pub fn run_collect(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
    ) -> Result<RunOutput> {
        let mut sink = CollectSink::default();
        let stats = self.run(r, t, maps, &mut sink)?;
        Ok(RunOutput {
            results: sink.results,
            stats,
        })
    }
}

/// Copies the kept rows of a source, remapping join keys to dense ids.
fn filter_source(
    src: &SourceView<'_>,
    kept: &[u32],
    dense: &mut impl FnMut(u32) -> u32,
) -> (PointStore, Vec<u32>) {
    let mut attrs = PointStore::with_capacity(src.dims(), kept.len());
    let mut keys = Vec::with_capacity(kept.len());
    for &row in kept {
        attrs.push(src.attrs_of(row as usize));
        keys.push(dense(src.join_key_of(row as usize)));
    }
    (attrs, keys)
}

/// Deterministic Fisher–Yates shuffle driven by SplitMix64 (keeps `rand`
/// out of the core crate's dependencies).
fn shuffle(v: &mut [u32], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureConfig;
    use crate::source::SourceData;
    use progxe_skyline::{naive_skyline, Preference};

    /// Oracle: full nested-loop join + map + naive skyline.
    fn oracle(r: &SourceData, t: &SourceData, maps: &MapSet) -> Vec<(u32, u32)> {
        let mut points = PointStore::new(maps.out_dims());
        let mut ids = Vec::new();
        let mut out = Vec::new();
        for ri in 0..r.len() {
            for ti in 0..t.len() {
                if r.view().join_key_of(ri) != t.view().join_key_of(ti) {
                    continue;
                }
                maps.eval_into(r.view().attrs_of(ri), t.view().attrs_of(ti), &mut out);
                points.push(&out);
                ids.push((ri as u32, ti as u32));
            }
        }
        let sky = naive_skyline(&points, maps.preference());
        let mut result: Vec<(u32, u32)> = sky.indices.iter().map(|&i| ids[i]).collect();
        result.sort_unstable();
        result
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            let k = (lcg(&mut st) % keys as u64) as u32;
            s.push(&row, k);
        }
        s
    }

    fn run_and_sort(exec: &ProgXe, r: &SourceData, t: &SourceData, maps: &MapSet) -> Vec<(u32, u32)> {
        let out = exec
            .run_collect(&r.view(), &t.view(), maps)
            .expect("run succeeds");
        let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn matches_oracle_on_tiny_input() {
        let r = SourceData::from_rows(2, &[(&[1.0, 5.0], 0), (&[4.0, 2.0], 1)]);
        let t = SourceData::from_rows(2, &[(&[2.0, 3.0], 0), (&[1.0, 1.0], 1)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn matches_oracle_random_2d() {
        let r = random_source(120, 2, 8, 1);
        let t = random_source(110, 2, 8, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn matches_oracle_random_3d() {
        let r = random_source(80, 3, 5, 3);
        let t = random_source(90, 3, 5, 4);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn all_orderings_agree_with_oracle() {
        let r = random_source(100, 2, 6, 5);
        let t = random_source(100, 2, 6, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = oracle(&r, &t, &maps);
        for ordering in [
            OrderingPolicy::ProgOrder,
            OrderingPolicy::Random { seed: 7 },
            OrderingPolicy::Random { seed: 99 },
            OrderingPolicy::Fifo,
        ] {
            let exec = ProgXe::new(ProgXeConfig::default().with_ordering(ordering));
            assert_eq!(
                run_and_sort(&exec, &r, &t, &maps),
                expected,
                "ordering {ordering:?} diverged"
            );
        }
    }

    #[test]
    fn push_through_preserves_results() {
        let r = random_source(150, 2, 4, 7);
        let t = random_source(150, 2, 4, 8);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let plain = ProgXe::new(ProgXeConfig::variation(true, false));
        let plus = ProgXe::new(ProgXeConfig::variation(true, true));
        assert_eq!(
            run_and_sort(&plain, &r, &t, &maps),
            run_and_sort(&plus, &r, &t, &maps)
        );
        let stats = plus
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap()
            .stats;
        assert!(
            stats.push_through_pruned_r > 0,
            "group pruning should remove something on 150×2d×4keys"
        );
    }

    #[test]
    fn bloom_signatures_preserve_results() {
        let r = random_source(100, 2, 10, 9);
        let t = random_source(100, 2, 10, 10);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exact = ProgXe::new(ProgXeConfig::default());
        let bloom = ProgXe::new(
            ProgXeConfig::default().with_signature(SignatureConfig::Bloom { bits: 128 }),
        );
        assert_eq!(
            run_and_sort(&exact, &r, &t, &maps),
            run_and_sort(&bloom, &r, &t, &maps)
        );
    }

    #[test]
    fn mixed_preference_directions() {
        use progxe_skyline::Order;
        let r = random_source(90, 2, 5, 11);
        let t = random_source(90, 2, 5, 12);
        let maps = MapSet::pairwise_sum(2, Preference::new(vec![Order::Lowest, Order::Highest]));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn no_join_matches_emits_nothing() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 1)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats.results_emitted, 0);
    }

    #[test]
    fn empty_source_is_fine() {
        let r = SourceData::new(2);
        let t = SourceData::from_rows(2, &[(&[1.0, 1.0], 0)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn grid_granularity_does_not_change_results() {
        let r = random_source(100, 2, 6, 13);
        let t = random_source(100, 2, 6, 14);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = oracle(&r, &t, &maps);
        for (p, k) in [(1, 4), (2, 8), (3, 24), (5, 40), (8, 64)] {
            let exec = ProgXe::new(
                ProgXeConfig::default()
                    .with_input_partitions(p)
                    .with_output_cells(k),
            );
            assert_eq!(
                run_and_sort(&exec, &r, &t, &maps),
                expected,
                "diverged at p={p} k={k}"
            );
        }
    }

    #[test]
    fn emitted_results_never_duplicate() {
        let r = random_source(150, 2, 5, 15);
        let t = random_source(150, 2, 5, 16);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn stats_are_consistent() {
        let r = random_source(100, 2, 5, 17);
        let t = random_source(100, 2, 5, 18);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let s = &out.stats;
        assert_eq!(s.results_emitted as usize, out.results.len());
        assert!(s.regions_processed + s.regions_discarded_dead <= s.regions_created);
        assert!(s.tuples_inserted >= s.results_emitted + s.tuples_evicted);
        assert!(s.total_time >= s.lookahead_time);
    }

    #[test]
    fn values_in_results_match_mapping() {
        let r = SourceData::from_rows(2, &[(&[1.0, 2.0], 0)]);
        let t = SourceData::from_rows(2, &[(&[10.0, 20.0], 0)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].values, vec![11.0, 22.0]);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..20).collect();
        shuffle(&mut c, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_join_keys_are_remapped() {
        // Huge sparse keys must not blow up signature bitsets.
        let r = SourceData::from_rows(1, &[(&[1.0], 4_000_000_000), (&[2.0], 17)]);
        let t = SourceData::from_rows(1, &[(&[3.0], 4_000_000_000), (&[4.0], 99)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!((out.results[0].r_idx, out.results[0].t_idx), (0, 0));
    }
}
