//! The ProgXe executor: Figure 2's pipeline end to end.
//!
//! ```text
//! sources ─▶ (push-through?) ─▶ input grids ─▶ output-space look-ahead
//!        ─▶ progressive-driven ordering ─▶ tuple-level processing
//!        ─▶ progressive result determination ─▶ stream (early, safe output)
//! ```
//!
//! The pipeline is organized for *pull-based* consumption: [`ProgXe::session`]
//! front-loads everything up to the look-ahead phase and returns a
//! [`QuerySession`] whose `next_batch` steps the region loop one region at a
//! time. The classic push entry point [`ProgXe::run`] is a thin adapter that
//! drains a session into a [`ResultSink`]; cancellation (and `take(k)` early
//! termination) is checked at every region boundary *and* inside the
//! tuple-level probe loop, so an abandoned session stops even mid-region.
//!
//! Since the parallel runtime landed, the region loop is split into two
//! halves that this module exposes as building blocks:
//!
//! * [`RegionCtx`](crate::tuple_level::RegionCtx) — the immutable, owned,
//!   `Send + Sync` context whose [`compute`](crate::tuple_level::RegionCtx::compute)
//!   is a pure per-region work unit (join + map + local dominance filter);
//! * [`Committer`] — the single-threaded owner of the cell store, the
//!   region schedule, and Algorithm 2's blocker bookkeeping. All emission
//!   decisions flow through it, in schedule order, which is what keeps
//!   progressive output deterministic and safe (no false positives or
//!   negatives) no matter how many workers computed the batches.
//!
//! [`ProgXe::prepare`] builds both; the sequential session drives them on
//! one thread, the `progxe-runtime` crate fans the compute side out.
//!
//! The executor is deterministic given its configuration: grid construction,
//! region ids, EL-graph tie-breaks, and the `Random` ordering's shuffle are
//! all seeded or ordinal.

use crate::benefit;
use crate::cells::CellStore;
use crate::config::{OrderingPolicy, ProgXeConfig};
use crate::cost::CostModel;
use crate::elgraph::ElGraph;
use crate::error::{Error, Result};
use crate::fxhash::FxHashMap;
use crate::grid::InputGrid;
use crate::lookahead::{run_lookahead, track_cells, Region};
use crate::mapping::MapSet;
use crate::output_grid::MAX_DIMS;
use crate::progdetermine::{EmittedCell, ProgDetermine};
use crate::progorder::ProgOrderQueue;
use crate::pushthrough::{push_through, Side};
use crate::session::{CancellationToken, QuerySession, ResultEvent, SessionStep};
use crate::sink::{CollectSink, ResultSink};
use crate::source::SourceView;
use crate::stats::{ExecStats, ResultTuple};
use crate::tuple_level::{RegionBatch, RegionCtx};
use progxe_skyline::{Order, PointStore};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Cell-visit cap for ProgCount scans on oversized region boxes.
const PROG_COUNT_VISIT_CAP: u64 = 4_096;

/// The progressive SkyMapJoin executor.
#[derive(Debug, Clone, Default)]
pub struct ProgXe {
    config: ProgXeConfig,
}

/// Collected output of [`ProgXe::run_collect`], [`QuerySession::collect`],
/// and [`QuerySession::take`].
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// All results in emission order.
    pub results: Vec<ResultTuple>,
    /// Run statistics.
    pub stats: ExecStats,
}

/// Everything [`ProgXe::prepare`] produces: the front half of the pipeline
/// (validation, push-through, grids, look-ahead, schedule) already done.
pub struct Prepared {
    /// Counters accumulated during preparation (look-ahead stats etc.).
    pub stats: ExecStats,
    /// The region-loop driver, or `None` when the run finished trivially
    /// (empty input, or cancelled during setup).
    pub committer: Option<Committer>,
    /// The instant preparation started — the zero point of every
    /// [`ResultEvent::elapsed`] and of [`ExecStats::total_time`].
    pub started: Instant,
}

impl ProgXe {
    /// Creates an executor with the given configuration.
    #[must_use]
    pub fn new(config: ProgXeConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProgXeConfig {
        &self.config
    }

    /// Opens a pull-based [`QuerySession`] over the query with a fresh
    /// cancellation token. Validation, push-through, grid construction, and
    /// the output-space look-ahead happen here; tuple-level work is driven
    /// incrementally by [`QuerySession::next_batch`].
    pub fn session<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        self.session_with_token(r, t, maps, CancellationToken::new())
    }

    /// Like [`session`](Self::session), but sharing a caller-provided
    /// cancellation token (e.g. one watched by a timeout thread).
    pub fn session_with_token<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
        token: CancellationToken,
    ) -> Result<QuerySession<'a>> {
        let prep = self.prepare(r, t, maps, token.clone())?;
        Ok(QuerySession::streaming(
            "progxe",
            ProgXeSession::new(prep, token),
        ))
    }

    /// Runs the query, pushing result batches into `sink` as soon as they
    /// are proven final. Returns run statistics.
    ///
    /// This is the classic push API, kept as a thin adapter over the
    /// streaming session.
    pub fn run<S: ResultSink + ?Sized>(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
        sink: &mut S,
    ) -> Result<ExecStats> {
        self.run_cancellable(r, t, maps, sink, CancellationToken::new())
    }

    /// [`run`](Self::run) with an external cancellation token threaded
    /// through the region loop: when the token fires, remaining regions are
    /// skipped and the returned stats have [`ExecStats::cancelled`] set.
    pub fn run_cancellable<S: ResultSink + ?Sized>(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
        sink: &mut S,
        token: CancellationToken,
    ) -> Result<ExecStats> {
        let prep = self.prepare(r, t, maps, token.clone())?;
        let mut session = QuerySession::streaming("progxe", ProgXeSession::new(prep, token));
        session.drain_into(sink);
        Ok(session.finish())
    }

    /// Convenience wrapper: run to completion and collect all results.
    pub fn run_collect(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
    ) -> Result<RunOutput> {
        let mut sink = CollectSink::default();
        let stats = self.run(r, t, maps, &mut sink)?;
        Ok(RunOutput {
            results: sink.results,
            stats,
        })
    }

    /// Builds the front half of the pipeline: everything before the region
    /// loop. The cancellation token is checked between phases so a session
    /// cancelled during setup stops before tuple-level work.
    ///
    /// This is the shared entry point of the sequential session *and* the
    /// `progxe-runtime` parallel driver: both receive the same
    /// [`Committer`] and differ only in who computes the region batches.
    pub fn prepare(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
        token: CancellationToken,
    ) -> Result<Prepared> {
        self.config.validate()?;
        if maps.out_dims() > MAX_DIMS {
            return Err(Error::TooManyDimensions {
                dims: maps.out_dims(),
                max: MAX_DIMS,
            });
        }
        let started = Instant::now();
        let mut stats = ExecStats {
            threads_used: 1,
            ..ExecStats::default()
        };
        let trivial = |stats: ExecStats| Prepared {
            stats,
            committer: None,
            started,
        };
        if r.is_empty() || t.is_empty() {
            return Ok(trivial(stats));
        }
        if token.is_cancelled() {
            stats.cancelled = true;
            return Ok(trivial(stats));
        }

        // ── Push-through (ProgXe+) ────────────────────────────────────────
        // `kept_*` map filtered row ids back to the caller's original rows.
        let (kept_r, kept_t) = if self.config.push_through {
            match (
                push_through(r, maps, Side::R),
                push_through(t, maps, Side::T),
            ) {
                (Some(kr), Some(kt)) => {
                    stats.push_through_pruned_r = r.len() - kr.len();
                    stats.push_through_pruned_t = t.len() - kt.len();
                    (kr, kt)
                }
                _ => {
                    stats.push_through_skipped = true;
                    ((0..r.len() as u32).collect(), (0..t.len() as u32).collect())
                }
            }
        } else {
            ((0..r.len() as u32).collect(), (0..t.len() as u32).collect())
        };

        // ── Dense join-key remapping ─────────────────────────────────────
        // Exact signatures are bitsets over the join domain; remapping to
        // dense ids bounds them by the number of *distinct* keys.
        let mut key_ids: FxHashMap<u32, u32> = FxHashMap::default();
        let mut dense = |k: u32| -> u32 {
            let next = key_ids.len() as u32;
            *key_ids.entry(k).or_insert(next)
        };
        let (r_attrs, r_keys) = filter_source(r, &kept_r, &mut dense);
        let (t_attrs, t_keys) = filter_source(t, &kept_t, &mut dense);
        let join_domain = key_ids.len();
        if r_keys.is_empty() || t_keys.is_empty() {
            return Ok(trivial(stats));
        }
        if token.is_cancelled() {
            stats.cancelled = true;
            return Ok(trivial(stats));
        }

        // Selectivity estimate for the benefit/cost models.
        let sigma = self
            .config
            .selectivity_hint
            .unwrap_or(1.0 / join_domain.max(1) as f64);

        // ── Grids + output-space look-ahead ──────────────────────────────
        let per_dim = self.config.input_partitions_per_dim;
        let r_view = SourceView::new(&r_attrs, &r_keys)?;
        let t_view = SourceView::new(&t_attrs, &t_keys)?;
        let r_grid = InputGrid::build(&r_view, per_dim, self.config.signature, join_domain);
        let t_grid = InputGrid::build(&t_view, per_dim, self.config.signature, join_domain);
        stats.partitions_r = r_grid.len();
        stats.partitions_t = t_grid.len();
        if token.is_cancelled() {
            stats.cancelled = true;
            return Ok(trivial(stats));
        }

        let la = run_lookahead(
            &r_grid,
            &t_grid,
            maps,
            self.config.output_cells_per_dim as u16,
        );
        stats.pairs_rejected_by_signature = la.pairs_rejected_by_signature;
        stats.regions_pruned_lookahead = la.regions_pruned;
        stats.regions_created = la.regions.len();

        let mut store = CellStore::new(la.grid.clone());
        stats.cells_premarked_dead = track_cells(&la, &mut store);
        stats.cells_tracked = store.len();
        let det = ProgDetermine::new(&store, &la.regions);
        stats.lookahead_time = started.elapsed();

        // ── Region schedule ──────────────────────────────────────────────
        let regions = la.regions;
        let cost_model = CostModel {
            sigma,
            cells_per_dim: self.config.output_cells_per_dim as u16,
            dims: maps.out_dims(),
        };
        let schedule = match self.config.ordering {
            OrderingPolicy::ProgOrder => {
                let n_regions = regions.len();
                let mut ordered = OrderedSchedule {
                    graph: ElGraph::build(&regions, maps.out_dims()),
                    queue: ProgOrderQueue::new(n_regions),
                    rank_cache: vec![0.0; n_regions],
                    dirty: vec![false; n_regions],
                    requeue_budget: vec![3; n_regions],
                };
                let ctx = RankCtx {
                    regions: &regions,
                    store: &store,
                    det: &det,
                    sigma,
                    cost_model: &cost_model,
                };
                for root in ordered.graph.roots() {
                    let rank = ordered.rank_of(root, &ctx);
                    ordered.queue.push(root, rank);
                }
                RegionSchedule::Ordered(ordered)
            }
            OrderingPolicy::Random { seed } => {
                let mut order: Vec<u32> = (0..regions.len() as u32).collect();
                shuffle(&mut order, seed);
                RegionSchedule::Static { order, pos: 0 }
            }
            OrderingPolicy::Fifo => RegionSchedule::Static {
                order: (0..regions.len() as u32).collect(),
                pos: 0,
            },
        };

        let total_regions = regions.len();
        let orders = maps.preference().orders().to_vec();
        let ctx = Arc::new(RegionCtx::new(
            maps.clone(),
            r_attrs,
            r_keys,
            t_attrs,
            t_keys,
            r_grid,
            t_grid,
            regions,
        ));
        Ok(Prepared {
            stats,
            committer: Some(Committer {
                ctx,
                kept_r,
                kept_t,
                store,
                det,
                orders,
                schedule,
                sigma,
                cost_model,
                dispatched: vec![false; total_regions],
                resolved: 0,
                total_regions,
                emitted_buf: Vec::new(),
                started,
            }),
            started,
        })
    }
}

/// Immutable context needed to (re)rank a region.
struct RankCtx<'c> {
    regions: &'c [Region],
    store: &'c CellStore,
    det: &'c ProgDetermine,
    sigma: f64,
    cost_model: &'c CostModel,
}

/// ProgOrder state: EL-graph, priority queue, and the lazy-rank machinery.
struct OrderedSchedule {
    graph: ElGraph,
    queue: ProgOrderQueue,
    rank_cache: Vec<f64>,
    dirty: Vec<bool>,
    requeue_budget: Vec<u8>,
}

impl OrderedSchedule {
    fn rank_of(&mut self, rid: u32, ctx: &RankCtx<'_>) -> f64 {
        let region = &ctx.regions[rid as usize];
        let b = benefit::benefit(region, ctx.store, ctx.det, ctx.sigma, PROG_COUNT_VISIT_CAP);
        let c = ctx
            .cost_model
            .region_cost(region, ctx.store.grid())
            .max(1.0);
        let rank = b / c;
        self.rank_cache[rid as usize] = rank;
        rank
    }
}

/// Region-ordering policy state, stepped one region at a time.
enum RegionSchedule {
    /// The paper's ProgOrder (Algorithm 1): rank = Benefit / Cost over
    /// EL-Graph roots, with lazy rank refresh.
    Ordered(OrderedSchedule),
    /// A precomputed order (Random or Fifo policies).
    Static { order: Vec<u32>, pos: usize },
}

impl RegionSchedule {
    /// Picks the next region to dispatch. `dispatched` marks regions handed
    /// out but not yet resolved — on a sequential run it always equals the
    /// resolved set, but a parallel driver keeps a window of them in
    /// flight. Returns `None` when nothing is dispatchable *right now*
    /// (either all regions are dispatched/resolved, or — ProgOrder with a
    /// root-free cyclic component — every pending region is in flight).
    fn next_region(
        &mut self,
        ctx: &RankCtx<'_>,
        stats: &mut ExecStats,
        dispatched: &[bool],
    ) -> Option<u32> {
        match self {
            RegionSchedule::Static { order, pos } => {
                let rid = order.get(*pos).copied();
                *pos += 1;
                rid
            }
            RegionSchedule::Ordered(sched) => {
                if sched.graph.unresolved() == 0 {
                    return None;
                }
                loop {
                    match sched.queue.pop_entry() {
                        Some((rid, _))
                            if sched.graph.is_resolved(rid) || dispatched[rid as usize] =>
                        {
                            continue
                        }
                        Some((rid, entry_rank)) => {
                            // Benefit recomputation is the expensive part of
                            // ordering (a box scan per region). To keep the
                            // paper's "ordering overhead is negligible"
                            // property, ranks are refreshed *lazily*:
                            // affected regions are only marked dirty
                            // (Algorithm 1 line 13 in spirit), and the
                            // recompute happens when the region reaches the
                            // top of the queue — with a small re-queue
                            // budget per region so dense elimination graphs
                            // cannot trigger quadratic rescans.
                            if sched.dirty[rid as usize] && sched.requeue_budget[rid as usize] > 0 {
                                sched.dirty[rid as usize] = false;
                                sched.requeue_budget[rid as usize] -= 1;
                                let fresh = sched.rank_of(rid, ctx);
                                if fresh < entry_rank * 0.999 {
                                    // Demoted: let a better region go first.
                                    sched.queue.push(rid, fresh);
                                    continue;
                                }
                            }
                            return Some(rid);
                        }
                        None => {
                            let pending = sched.graph.pending();
                            // An empty queue with regions *in flight* is not
                            // the cyclic-component case — the real EL-roots
                            // are simply uncommitted. Hand out nothing and
                            // let the committer land a batch, which either
                            // pushes new roots or ends the run.
                            if pending.iter().any(|&rid| dispatched[rid as usize]) {
                                return None;
                            }
                            // Cyclic component with no root (DESIGN.md §5.2):
                            // pick the best pending region by cached rank —
                            // O(regions), no box scans.
                            let best = pending.into_iter().max_by(|&a, &b| {
                                sched.rank_cache[a as usize]
                                    .total_cmp(&sched.rank_cache[b as usize])
                                    .then_with(|| b.cmp(&a))
                            });
                            if best.is_some() {
                                stats.ordering_fallbacks += 1;
                            }
                            return best;
                        }
                    }
                }
            }
        }
    }

    /// Records a resolution: new EL-graph roots enter the queue, regions
    /// whose benefit may have changed are marked dirty.
    fn on_resolved(&mut self, rid: u32, ctx: &RankCtx<'_>) {
        if let RegionSchedule::Ordered(sched) = self {
            let (new_roots, affected) = sched.graph.resolve(rid);
            for root in new_roots {
                let rank = sched.rank_of(root, ctx);
                sched.queue.push(root, rank);
            }
            for region in affected {
                if sched.queue.contains(region) {
                    sched.dirty[region as usize] = true;
                }
            }
        }
    }
}

/// The single-threaded back half of the region loop: owns the cell store,
/// the region schedule, and Algorithm 2's blocker bookkeeping.
///
/// Every region goes through exactly one of three commit paths — all of
/// which resolve it and may release proven-final cells as a
/// [`ResultEvent`]:
///
/// * [`discard_dead`](Self::discard_dead) — the region box was already
///   fully dominated when it was popped; no tuple work at all;
/// * [`process_and_commit`](Self::process_and_commit) — sequential path:
///   stream the join directly into the cell store;
/// * [`commit_batch`](Self::commit_batch) — parallel path: apply a
///   worker-computed [`RegionBatch`].
///
/// Parallel drivers **must** commit batches in the order the regions were
/// popped from [`pop_next`](Self::pop_next); combined with the
/// cancellation-token discipline this makes parallel emission
/// deterministic regardless of worker interleaving.
pub struct Committer {
    ctx: Arc<RegionCtx>,
    /// Filtered→original row-id maps (push-through survivors).
    kept_r: Vec<u32>,
    kept_t: Vec<u32>,
    store: CellStore,
    det: ProgDetermine,
    orders: Vec<Order>,
    schedule: RegionSchedule,
    sigma: f64,
    cost_model: CostModel,
    /// Regions handed out by `pop_next` (superset of resolved).
    dispatched: Vec<bool>,
    resolved: usize,
    total_regions: usize,
    emitted_buf: Vec<EmittedCell>,
    started: Instant,
}

impl Committer {
    /// The shared work-unit context (regions, grids, filtered sources).
    pub fn ctx(&self) -> Arc<RegionCtx> {
        Arc::clone(&self.ctx)
    }

    /// The instant the pipeline started (zero point of event timestamps).
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// Regions not yet resolved.
    pub fn unresolved(&self) -> usize {
        self.total_regions - self.resolved
    }

    /// Picks the next region to work on, marking it dispatched. `None`
    /// means nothing is dispatchable right now — which is final on a
    /// sequential run, but on a parallel run may become `Some` again after
    /// in-flight regions commit (new EL-graph roots appear).
    pub fn pop_next(&mut self, stats: &mut ExecStats) -> Option<u32> {
        let ctx = RankCtx {
            regions: self.ctx.regions(),
            store: &self.store,
            det: &self.det,
            sigma: self.sigma,
            cost_model: &self.cost_model,
        };
        let rid = self.schedule.next_region(&ctx, stats, &self.dispatched)?;
        debug_assert!(!self.dispatched[rid as usize], "region {rid} popped twice");
        self.dispatched[rid as usize] = true;
        Some(rid)
    }

    /// Whether the region's whole output box is fully dominated by results
    /// committed so far (Algorithm 1, line 9) — its tuple work can be
    /// skipped entirely.
    pub fn region_box_is_dead(&self, rid: u32) -> bool {
        self.store
            .region_is_dead(&self.ctx.regions()[rid as usize].cell_lo)
    }

    /// Resolves a dead region without tuple-level work.
    pub fn discard_dead(&mut self, rid: u32, stats: &mut ExecStats) -> Option<ResultEvent> {
        stats.regions_discarded_dead += 1;
        self.resolve(rid, stats)
    }

    /// Sequential path: joins the region, streaming inserts into the cell
    /// store, then resolves it. Returns `None` when the token fired
    /// mid-region — the insert set is partial, so the region is left
    /// *unresolved* (emitting from it could produce false positives) and
    /// the run counts as cancelled.
    pub fn process_and_commit(
        &mut self,
        rid: u32,
        token: &CancellationToken,
        stats: &mut ExecStats,
    ) -> Option<Option<ResultEvent>> {
        let ctx = Arc::clone(&self.ctx);
        let compute_started = Instant::now();
        let (tl, completed) = ctx.process_into(rid, &mut self.store, token);
        stats.tuple_time += compute_started.elapsed();
        stats.join_pairs_evaluated += tl.pairs_examined;
        stats.join_matches += tl.matches;
        if !completed {
            stats.cancelled = true;
            return None;
        }
        stats.regions_processed += 1;
        Some(self.resolve(rid, stats))
    }

    /// Parallel path: applies one worker-computed batch. The region box is
    /// re-checked against results committed in the meantime (a region
    /// dispatched early may be dead by the time its batch lands), then the
    /// surviving tuples go through the same cell-restricted dominance
    /// insert the sequential path uses, and the region resolves.
    ///
    /// # Panics
    /// Debug-asserts that the batch completed; committing a partial batch
    /// would break Principle 1.
    pub fn commit_batch(
        &mut self,
        batch: RegionBatch,
        stats: &mut ExecStats,
    ) -> Option<ResultEvent> {
        debug_assert!(batch.completed, "partial batches must not be committed");
        let commit_started = Instant::now();
        stats.tuple_time += batch.compute_time;
        stats.join_pairs_evaluated += batch.stats.pairs_examined;
        stats.join_matches += batch.stats.matches;
        stats.dominance_tests += batch.stats.local_dominance_tests;
        if self.region_box_is_dead(batch.rid) {
            stats.regions_discarded_dead += 1;
        } else {
            stats.regions_processed += 1;
            for (i, &(r, t)) in batch.ids.iter().enumerate() {
                self.store.insert(r, t, batch.points.point(i));
            }
        }
        let event = self.resolve(batch.rid, stats);
        stats.commit_time += commit_started.elapsed();
        event
    }

    /// Resolves one dispatched region: blocker bookkeeping, schedule
    /// update, and conversion of released cells into a [`ResultEvent`].
    fn resolve(&mut self, rid: u32, stats: &mut ExecStats) -> Option<ResultEvent> {
        let region = &self.ctx.regions()[rid as usize];
        self.det
            .resolve_region(region, &mut self.store, &mut self.emitted_buf);
        self.resolved += 1;
        let ctx = RankCtx {
            regions: self.ctx.regions(),
            store: &self.store,
            det: &self.det,
            sigma: self.sigma,
            cost_model: &self.cost_model,
        };
        self.schedule.on_resolved(rid, &ctx);

        if self.emitted_buf.is_empty() {
            return None;
        }
        let mut tuples = Vec::new();
        for cell in self.emitted_buf.drain(..) {
            stats.cells_emitted += 1;
            for (i, &(ri, ti)) in cell.ids.iter().enumerate() {
                let oriented = cell.points.point(i);
                let values = self
                    .orders
                    .iter()
                    .zip(oriented)
                    .map(|(o, &v)| o.orient(v))
                    .collect();
                tuples.push(ResultTuple {
                    r_idx: self.kept_r[ri as usize],
                    t_idx: self.kept_t[ti as usize],
                    values,
                });
            }
        }
        stats.results_emitted += tuples.len() as u64;
        Some(ResultEvent {
            tuples,
            proven_final: true,
            progress_estimate: self.resolved as f64 / self.total_regions.max(1) as f64,
            elapsed: self.started.elapsed(),
        })
    }

    /// Closes the region loop: merges cell-store counters into `stats` and
    /// flags an early stop when regions were left unresolved.
    pub fn finalize(self, stats: &mut ExecStats) {
        let unresolved = self.total_regions - self.resolved;
        if unresolved > 0 {
            stats.cancelled = true;
            stats.regions_skipped = unresolved;
        } else {
            // All regions resolved ⇒ every live cell must have been
            // released.
            debug_assert_eq!(
                self.det.live_cells(),
                0,
                "cells left blocked after all regions resolved"
            );
        }
        let cell_stats = self.store.stats();
        // `+=`: worker-local pre-filter tests were already accumulated.
        stats.dominance_tests += cell_stats.dominance_tests;
        stats.tuples_inserted = cell_stats.tuples_inserted;
        stats.tuples_rejected_dominated = cell_stats.tuples_rejected_dominated;
        stats.tuples_rejected_dead_cell = cell_stats.tuples_rejected_dead_cell;
        stats.tuples_evicted = cell_stats.tuples_evicted;
        stats.comparable_cells_visited = cell_stats.comparable_cells_visited;
        stats.comparable_cells_max = cell_stats.comparable_cells_max;
    }
}

/// The steppable sequential ProgXe pipeline behind a [`QuerySession`].
///
/// Owns a [`Committer`] and advances the region loop one region per step,
/// queueing a [`ResultEvent`] whenever a resolution releases proven-final
/// cells. Owns no borrows: all query state was copied/`Arc`ed during
/// [`ProgXe::prepare`].
pub(crate) struct ProgXeSession {
    start: Instant,
    token: CancellationToken,
    stats: ExecStats,
    committer: Option<Committer>,
    ready: VecDeque<ResultEvent>,
    done: bool,
}

impl ProgXeSession {
    pub(crate) fn new(prep: Prepared, token: CancellationToken) -> Self {
        let done = prep.committer.is_none();
        Self {
            start: prep.started,
            token,
            stats: prep.stats,
            committer: prep.committer,
            ready: VecDeque::new(),
            done,
        }
    }

    pub(crate) fn token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// Resolves one region: tuple-level processing (unless the region box
    /// is dead), blocker bookkeeping, and conversion of any released cells
    /// into a queued [`ResultEvent`]. Returns false when no regions remain
    /// (or the token fired mid-region).
    fn step(&mut self) -> bool {
        let Some(committer) = self.committer.as_mut() else {
            return false;
        };
        let Some(rid) = committer.pop_next(&mut self.stats) else {
            return false;
        };
        if committer.region_box_is_dead(rid) {
            if let Some(event) = committer.discard_dead(rid, &mut self.stats) {
                self.ready.push_back(event);
            }
            return true;
        }
        match committer.process_and_commit(rid, &self.token, &mut self.stats) {
            Some(Some(event)) => {
                self.ready.push_back(event);
                true
            }
            Some(None) => true,
            None => false, // cancelled mid-region
        }
    }
}

impl SessionStep for ProgXeSession {
    /// Pulls the next event, stepping the region loop as needed.
    fn next_event(&mut self) -> Option<ResultEvent> {
        loop {
            if self.token.is_cancelled() {
                return None;
            }
            if let Some(event) = self.ready.pop_front() {
                return Some(event);
            }
            if self.done || !self.step() {
                self.done = true;
                return None;
            }
        }
    }

    fn stats_snapshot(&self) -> ExecStats {
        let mut stats = self.stats.clone();
        stats.total_time = self.start.elapsed();
        stats
    }

    /// Closes the session: merges cell-store counters into the stats and
    /// flags an early stop (unresolved regions or undelivered events).
    fn finalize(self: Box<Self>) -> ExecStats {
        let mut stats = self.stats;
        if let Some(committer) = self.committer {
            if !self.ready.is_empty() {
                stats.cancelled = true;
            }
            committer.finalize(&mut stats);
        }
        stats.total_time = self.start.elapsed();
        stats
    }
}

/// Copies the kept rows of a source, remapping join keys to dense ids.
fn filter_source(
    src: &SourceView<'_>,
    kept: &[u32],
    dense: &mut impl FnMut(u32) -> u32,
) -> (PointStore, Vec<u32>) {
    let mut attrs = PointStore::with_capacity(src.dims(), kept.len());
    let mut keys = Vec::with_capacity(kept.len());
    for &row in kept {
        attrs.push(src.attrs_of(row as usize));
        keys.push(dense(src.join_key_of(row as usize)));
    }
    (attrs, keys)
}

/// Deterministic Fisher–Yates shuffle driven by SplitMix64 (keeps `rand`
/// out of the core crate's dependencies).
fn shuffle(v: &mut [u32], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureConfig;
    use crate::session::ProgressiveEngine;
    use crate::source::SourceData;
    use progxe_skyline::{naive_skyline, Preference};

    /// Oracle: full nested-loop join + map + naive skyline.
    fn oracle(r: &SourceData, t: &SourceData, maps: &MapSet) -> Vec<(u32, u32)> {
        let mut points = PointStore::new(maps.out_dims());
        let mut ids = Vec::new();
        let mut out = Vec::new();
        for ri in 0..r.len() {
            for ti in 0..t.len() {
                if r.view().join_key_of(ri) != t.view().join_key_of(ti) {
                    continue;
                }
                maps.eval_into(r.view().attrs_of(ri), t.view().attrs_of(ti), &mut out);
                points.push(&out);
                ids.push((ri as u32, ti as u32));
            }
        }
        let sky = naive_skyline(&points, maps.preference());
        let mut result: Vec<(u32, u32)> = sky.indices.iter().map(|&i| ids[i]).collect();
        result.sort_unstable();
        result
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            let k = (lcg(&mut st) % keys as u64) as u32;
            s.push(&row, k);
        }
        s
    }

    fn run_and_sort(
        exec: &ProgXe,
        r: &SourceData,
        t: &SourceData,
        maps: &MapSet,
    ) -> Vec<(u32, u32)> {
        let out = exec
            .run_collect(&r.view(), &t.view(), maps)
            .expect("run succeeds");
        let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn matches_oracle_on_tiny_input() {
        let r = SourceData::from_rows(2, &[(&[1.0, 5.0], 0), (&[4.0, 2.0], 1)]);
        let t = SourceData::from_rows(2, &[(&[2.0, 3.0], 0), (&[1.0, 1.0], 1)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn matches_oracle_random_2d() {
        let r = random_source(120, 2, 8, 1);
        let t = random_source(110, 2, 8, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn matches_oracle_random_3d() {
        let r = random_source(80, 3, 5, 3);
        let t = random_source(90, 3, 5, 4);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn all_orderings_agree_with_oracle() {
        let r = random_source(100, 2, 6, 5);
        let t = random_source(100, 2, 6, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = oracle(&r, &t, &maps);
        for ordering in [
            OrderingPolicy::ProgOrder,
            OrderingPolicy::Random { seed: 7 },
            OrderingPolicy::Random { seed: 99 },
            OrderingPolicy::Fifo,
        ] {
            let exec = ProgXe::new(ProgXeConfig::default().with_ordering(ordering));
            assert_eq!(
                run_and_sort(&exec, &r, &t, &maps),
                expected,
                "ordering {ordering:?} diverged"
            );
        }
    }

    #[test]
    fn push_through_preserves_results() {
        let r = random_source(150, 2, 4, 7);
        let t = random_source(150, 2, 4, 8);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let plain = ProgXe::new(ProgXeConfig::variation(true, false));
        let plus = ProgXe::new(ProgXeConfig::variation(true, true));
        assert_eq!(
            run_and_sort(&plain, &r, &t, &maps),
            run_and_sort(&plus, &r, &t, &maps)
        );
        let stats = plus.run_collect(&r.view(), &t.view(), &maps).unwrap().stats;
        assert!(
            stats.push_through_pruned_r > 0,
            "group pruning should remove something on 150×2d×4keys"
        );
    }

    #[test]
    fn bloom_signatures_preserve_results() {
        let r = random_source(100, 2, 10, 9);
        let t = random_source(100, 2, 10, 10);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exact = ProgXe::new(ProgXeConfig::default());
        let bloom = ProgXe::new(
            ProgXeConfig::default().with_signature(SignatureConfig::Bloom { bits: 128 }),
        );
        assert_eq!(
            run_and_sort(&exact, &r, &t, &maps),
            run_and_sort(&bloom, &r, &t, &maps)
        );
    }

    #[test]
    fn mixed_preference_directions() {
        use progxe_skyline::Order;
        let r = random_source(90, 2, 5, 11);
        let t = random_source(90, 2, 5, 12);
        let maps = MapSet::pairwise_sum(2, Preference::new(vec![Order::Lowest, Order::Highest]));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn no_join_matches_emits_nothing() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 1)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats.results_emitted, 0);
    }

    #[test]
    fn empty_source_is_fine() {
        let r = SourceData::new(2);
        let t = SourceData::from_rows(2, &[(&[1.0, 1.0], 0)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn grid_granularity_does_not_change_results() {
        let r = random_source(100, 2, 6, 13);
        let t = random_source(100, 2, 6, 14);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = oracle(&r, &t, &maps);
        for (p, k) in [(1, 4), (2, 8), (3, 24), (5, 40), (8, 64)] {
            let exec = ProgXe::new(
                ProgXeConfig::default()
                    .with_input_partitions(p)
                    .with_output_cells(k),
            );
            assert_eq!(
                run_and_sort(&exec, &r, &t, &maps),
                expected,
                "diverged at p={p} k={k}"
            );
        }
    }

    #[test]
    fn emitted_results_never_duplicate() {
        let r = random_source(150, 2, 5, 15);
        let t = random_source(150, 2, 5, 16);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn stats_are_consistent() {
        let r = random_source(100, 2, 5, 17);
        let t = random_source(100, 2, 5, 18);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let s = &out.stats;
        assert_eq!(s.results_emitted as usize, out.results.len());
        assert!(s.regions_processed + s.regions_discarded_dead <= s.regions_created);
        assert!(s.tuples_inserted >= s.results_emitted + s.tuples_evicted);
        assert!(s.total_time >= s.lookahead_time);
        assert_eq!(s.threads_used, 1);
        assert!(!s.cancelled);
        assert_eq!(s.regions_skipped, 0);
    }

    #[test]
    fn values_in_results_match_mapping() {
        let r = SourceData::from_rows(2, &[(&[1.0, 2.0], 0)]);
        let t = SourceData::from_rows(2, &[(&[10.0, 20.0], 0)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].values, vec![11.0, 22.0]);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..20).collect();
        shuffle(&mut c, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_join_keys_are_remapped() {
        // Huge sparse keys must not blow up signature bitsets.
        let r = SourceData::from_rows(1, &[(&[1.0], 4_000_000_000), (&[2.0], 17)]);
        let t = SourceData::from_rows(1, &[(&[3.0], 4_000_000_000), (&[4.0], 99)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!((out.results[0].r_idx, out.results[0].t_idx), (0, 0));
    }

    // ── Streaming session behaviour ──────────────────────────────────────

    #[test]
    fn stream_and_sink_paths_agree_exactly() {
        let r = random_source(200, 2, 6, 21);
        let t = random_source(200, 2, 6, 22);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());

        let mut sink = CollectSink::default();
        let sink_stats = exec.run(&r.view(), &t.view(), &maps, &mut sink).unwrap();

        let mut session = exec.session(&r.view(), &t.view(), &maps).unwrap();
        let mut streamed = Vec::new();
        let mut last_progress = 0.0;
        while let Some(event) = session.next_batch() {
            assert!(event.proven_final, "every ProgXe batch is final");
            assert!(
                event.progress_estimate >= last_progress,
                "progress is monotone"
            );
            last_progress = event.progress_estimate;
            streamed.extend(event.tuples);
        }
        let stream_stats = session.finish();

        // Identical results in identical emission order, identical work.
        assert_eq!(streamed, sink.results);
        assert_eq!(sink_stats.results_emitted, stream_stats.results_emitted);
        assert_eq!(sink_stats.regions_processed, stream_stats.regions_processed);
        assert_eq!(sink_stats.dominance_tests, stream_stats.dominance_tests);
        assert!(!stream_stats.cancelled);
    }

    #[test]
    fn take_k_stops_the_region_loop_early() {
        let r = random_source(400, 2, 4, 31);
        let t = random_source(400, 2, 4, 32);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());

        let full = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(full.results.len() >= 3, "workload too small for the test");

        let k = 2;
        let partial = exec.session(&r.view(), &t.view(), &maps).unwrap().take(k);
        assert_eq!(partial.results.len(), k);
        assert_eq!(&full.results[..k], &partial.results[..]);
        assert!(partial.stats.cancelled);
        assert!(
            partial.stats.regions_processed < full.stats.regions_processed,
            "take({k}) must process fewer regions ({} vs {})",
            partial.stats.regions_processed,
            full.stats.regions_processed
        );
        assert!(partial.stats.regions_skipped > 0);
    }

    #[test]
    fn cancellation_token_stops_run() {
        let r = random_source(150, 2, 5, 41);
        let t = random_source(150, 2, 5, 42);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let token = CancellationToken::new();
        token.cancel();
        let mut sink = CollectSink::default();
        let stats = exec
            .run_cancellable(&r.view(), &t.view(), &maps, &mut sink, token)
            .unwrap();
        assert!(stats.cancelled);
        assert_eq!(stats.regions_processed, 0, "cancelled before region work");
        assert!(sink.results.is_empty());
    }

    #[test]
    fn session_cancel_mid_stream_skips_remaining_regions() {
        let r = random_source(300, 2, 4, 51);
        let t = random_source(300, 2, 4, 52);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let full = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();

        let mut session = exec.session(&r.view(), &t.view(), &maps).unwrap();
        let first = session.next_batch().expect("at least one batch");
        assert!(!first.tuples.is_empty());
        session.cancel();
        assert!(session.next_batch().is_none());
        let stats = session.finish();
        assert!(stats.cancelled);
        assert!(stats.regions_skipped > 0);
        assert!(stats.results_emitted <= full.stats.results_emitted);
    }

    #[test]
    fn engine_trait_runs_progxe() {
        let r = random_source(80, 2, 5, 61);
        let t = random_source(80, 2, 5, 62);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine: &dyn ProgressiveEngine = &ProgXe::new(ProgXeConfig::default());
        assert_eq!(engine.name(), "progxe");
        let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let direct = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        assert_eq!(out.results, direct.results);
    }

    #[test]
    fn prepare_exposes_committer_for_external_drivers() {
        // Drive the region loop by hand through the public Committer API —
        // exactly what the parallel runtime does — and check it agrees with
        // the sequential session.
        let r = random_source(120, 2, 5, 71);
        let t = random_source(120, 2, 5, 72);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let expected = run_and_sort(&exec, &r, &t, &maps);

        let token = CancellationToken::new();
        let prep = exec
            .prepare(&r.view(), &t.view(), &maps, token.clone())
            .unwrap();
        let mut committer = prep.committer.expect("non-trivial workload");
        let ctx = committer.ctx();
        let mut stats = prep.stats;
        let mut ids = Vec::new();
        while let Some(rid) = committer.pop_next(&mut stats) {
            let event = if committer.region_box_is_dead(rid) {
                committer.discard_dead(rid, &mut stats)
            } else {
                let batch = ctx.compute(rid, &token);
                assert!(batch.completed);
                committer.commit_batch(batch, &mut stats)
            };
            if let Some(event) = event {
                ids.extend(event.tuples.iter().map(|x| (x.r_idx, x.t_idx)));
            }
        }
        committer.finalize(&mut stats);
        assert!(!stats.cancelled);
        ids.sort_unstable();
        assert_eq!(ids, expected);
    }
}
