//! The ProgXe executor: Figure 2's pipeline end to end.
//!
//! ```text
//! sources ─▶ (push-through?) ─▶ input grids ─▶ output-space look-ahead
//!        ─▶ progressive-driven ordering ─▶ tuple-level processing
//!        ─▶ progressive result determination ─▶ stream (early, safe output)
//! ```
//!
//! The pipeline is organized for *pull-based* consumption: [`ProgXe::session`]
//! front-loads everything up to the look-ahead phase and returns a
//! [`QuerySession`] whose `next_batch` steps the region loop one region at a
//! time. The classic push entry point [`ProgXe::run`] is a thin adapter that
//! drains a session into a [`ResultSink`]; cancellation (and `take(k)` early
//! termination) is checked at every region boundary *and* inside the
//! tuple-level probe loop, so an abandoned session stops even mid-region.
//!
//! This module is the pipeline *front end* only: validation, push-through,
//! grid construction, the output-space look-ahead, and the region schedule
//! — everything [`ProgXe::prepare`] produces. The region loop itself —
//! schedule pop, tuple-level phase, ordered commit — lives exactly once in
//! [`crate::driver`]: the sequential path is the
//! [`Inline`](crate::driver::ExecutorBackend::Inline) instantiation of
//! [`crate::driver::RegionDriver`], and the `progxe-runtime`
//! crate supplies the [`Pooled`](crate::driver::ExecutorBackend::Pooled)
//! backend for `threads > 1`.
//!
//! The executor is deterministic given its configuration: grid construction,
//! region ids, EL-graph tie-breaks, and the `Random` ordering's shuffle are
//! all seeded or ordinal.

use crate::cells::CellStore;
use crate::config::ProgXeConfig;
use crate::cost::CostModel;
use crate::driver::{CommitterParts, ExecutorBackend, RegionDriver};
use crate::error::{Error, Result};
use crate::fxhash::FxHashMap;
use crate::grid::InputGrid;
use crate::lookahead::{run_lookahead, track_cells};
use crate::mapping::MapSet;
use crate::output_grid::MAX_DIMS;
use crate::progdetermine::ProgDetermine;
use crate::pushthrough::{push_through, Side};
use crate::session::{CancellationToken, QuerySession};
use crate::sink::{CollectSink, ResultSink};
use crate::source::SourceView;
use crate::stats::{ExecStats, ResultTuple};
use crate::tuple_level::RegionCtx;
use progxe_obs::{Recorder, Span, Trace};
use progxe_skyline::PointStore;
use std::sync::Arc;
use std::time::Instant;

pub use crate::driver::Committer;

/// The progressive SkyMapJoin executor.
#[derive(Debug, Clone, Default)]
pub struct ProgXe {
    config: ProgXeConfig,
    /// Optional trace sink. `None` (the default) costs one branch per
    /// instrumentation site; see [`ProgXe::with_recorder`].
    recorder: Option<Arc<dyn Recorder>>,
}

/// Collected output of [`ProgXe::run_collect`], [`QuerySession::collect`],
/// and [`QuerySession::take`].
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// All results in emission order.
    pub results: Vec<ResultTuple>,
    /// Run statistics.
    pub stats: ExecStats,
}

/// Everything [`ProgXe::prepare`] produces: the front half of the pipeline
/// (validation, push-through, grids, look-ahead, schedule) already done.
pub struct Prepared {
    /// Counters accumulated during preparation (look-ahead stats etc.).
    pub stats: ExecStats,
    /// The region-loop committer, or `None` when the run finished trivially
    /// (empty input, or cancelled during setup).
    pub committer: Option<Committer>,
    /// The shared tuple-level work context (regions, grids, filtered
    /// sources), present exactly when `committer` is. Backends call
    /// [`RegionCtx::compute`]/`process_into` on it; the committer itself
    /// only keeps the region metadata.
    pub ctx: Option<Arc<RegionCtx>>,
    /// The instant preparation started — the zero point of every
    /// [`ResultEvent::elapsed`](crate::session::ResultEvent::elapsed) and
    /// of [`ExecStats::total_time`].
    pub started: Instant,
}

impl ProgXe {
    /// Creates an executor with the given configuration.
    #[must_use]
    pub fn new(config: ProgXeConfig) -> Self {
        Self {
            config,
            recorder: None,
        }
    }

    /// Attaches a trace recorder: every session opened by this executor
    /// emits span/point/counter events into it (see the `progxe-obs`
    /// crate's taxonomy). Keep a clone of the `Arc` to drain the events.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// [`with_recorder`](Self::with_recorder) accepting an optional sink —
    /// convenient when the caller itself was configured with an
    /// `Option<Arc<dyn Recorder>>`.
    #[must_use]
    pub fn with_recorder_opt(mut self, recorder: Option<Arc<dyn Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ProgXeConfig {
        &self.config
    }

    /// Opens a pull-based [`QuerySession`] over the query with a fresh
    /// cancellation token. Validation, push-through, grid construction, and
    /// the output-space look-ahead happen here; tuple-level work is driven
    /// incrementally by [`QuerySession::next_batch`].
    pub fn session<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        self.session_with_token(r, t, maps, CancellationToken::new())
    }

    /// Like [`session`](Self::session), but sharing a caller-provided
    /// cancellation token (e.g. one watched by a timeout thread).
    pub fn session_with_token<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
        token: CancellationToken,
    ) -> Result<QuerySession<'a>> {
        let prep = self.prepare(r, t, maps, token.clone())?;
        let driver = RegionDriver::new(
            prep,
            token.clone(),
            ExecutorBackend::Inline,
            self.config.prefilter_min_pairs,
        );
        Ok(QuerySession::stepped("progxe", token, Box::new(driver)))
    }

    /// Runs the query, pushing result batches into `sink` as soon as they
    /// are proven final. Returns run statistics.
    ///
    /// This is the classic push API, kept as a thin adapter over the
    /// streaming session.
    pub fn run<S: ResultSink + ?Sized>(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
        sink: &mut S,
    ) -> Result<ExecStats> {
        self.run_cancellable(r, t, maps, sink, CancellationToken::new())
    }

    /// [`run`](Self::run) with an external cancellation token threaded
    /// through the region loop: when the token fires, remaining regions are
    /// skipped and the returned stats have [`ExecStats::cancelled`] set.
    pub fn run_cancellable<S: ResultSink + ?Sized>(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
        sink: &mut S,
        token: CancellationToken,
    ) -> Result<ExecStats> {
        let mut session = self.session_with_token(r, t, maps, token)?;
        session.drain_into(sink);
        Ok(session.finish())
    }

    /// Convenience wrapper: run to completion and collect all results.
    pub fn run_collect(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
    ) -> Result<RunOutput> {
        let mut sink = CollectSink::default();
        let stats = self.run(r, t, maps, &mut sink)?;
        Ok(RunOutput {
            results: sink.results,
            stats,
        })
    }

    /// Builds the front half of the pipeline: everything before the region
    /// loop. The cancellation token is checked between phases so a session
    /// cancelled during setup stops before tuple-level work.
    ///
    /// This is the shared entry point of every backend: the inline session
    /// *and* the `progxe-runtime` pooled driver receive the same
    /// [`Committer`] and differ only in who computes the region batches.
    pub fn prepare(
        &self,
        r: &SourceView<'_>,
        t: &SourceView<'_>,
        maps: &MapSet,
        token: CancellationToken,
    ) -> Result<Prepared> {
        self.config.validate()?;
        if maps.out_dims() > MAX_DIMS {
            return Err(Error::TooManyDimensions {
                dims: maps.out_dims(),
                max: MAX_DIMS,
            });
        }
        let started = Instant::now();
        let trace = Trace::from_recorder(self.recorder.clone(), started);
        // Closed when `lookahead_time` is recorded below; the trivial early
        // returns close it by RAII.
        let lookahead_span = trace.span(Span::Lookahead);
        let mut stats = ExecStats {
            threads_used: 1,
            ..ExecStats::default()
        };
        let trivial = |stats: ExecStats| Prepared {
            stats,
            committer: None,
            ctx: None,
            started,
        };
        if r.is_empty() || t.is_empty() {
            return Ok(trivial(stats));
        }
        if token.is_cancelled() {
            stats.cancelled = true;
            return Ok(trivial(stats));
        }

        // ── Push-through (ProgXe+) ────────────────────────────────────────
        // `kept_*` map filtered row ids back to the caller's original rows.
        let (kept_r, kept_t) = if self.config.push_through {
            match (
                push_through(r, maps, Side::R),
                push_through(t, maps, Side::T),
            ) {
                (Some(kr), Some(kt)) => {
                    stats.push_through_pruned_r = r.len() - kr.len();
                    stats.push_through_pruned_t = t.len() - kt.len();
                    (kr, kt)
                }
                _ => {
                    stats.push_through_skipped = true;
                    ((0..r.len() as u32).collect(), (0..t.len() as u32).collect())
                }
            }
        } else {
            ((0..r.len() as u32).collect(), (0..t.len() as u32).collect())
        };

        // ── Dense join-key remapping ─────────────────────────────────────
        // Exact signatures are bitsets over the join domain; remapping to
        // dense ids bounds them by the number of *distinct* keys.
        let mut key_ids: FxHashMap<u32, u32> = FxHashMap::default();
        let mut dense = |k: u32| -> u32 {
            let next = key_ids.len() as u32;
            *key_ids.entry(k).or_insert(next)
        };
        let (r_attrs, r_keys) = filter_source(r, &kept_r, &mut dense);
        let (t_attrs, t_keys) = filter_source(t, &kept_t, &mut dense);
        let join_domain = key_ids.len();
        if r_keys.is_empty() || t_keys.is_empty() {
            return Ok(trivial(stats));
        }
        if token.is_cancelled() {
            stats.cancelled = true;
            return Ok(trivial(stats));
        }

        // Selectivity estimate for the benefit/cost models.
        let sigma = self
            .config
            .selectivity_hint
            .unwrap_or(1.0 / join_domain.max(1) as f64);

        // ── Grids + output-space look-ahead ──────────────────────────────
        let per_dim = self.config.input_partitions_per_dim;
        let r_view = SourceView::new(&r_attrs, &r_keys)?;
        let t_view = SourceView::new(&t_attrs, &t_keys)?;
        let r_grid = InputGrid::build(&r_view, per_dim, self.config.signature, join_domain);
        let t_grid = InputGrid::build(&t_view, per_dim, self.config.signature, join_domain);
        stats.partitions_r = r_grid.len();
        stats.partitions_t = t_grid.len();
        if token.is_cancelled() {
            stats.cancelled = true;
            return Ok(trivial(stats));
        }

        let la = run_lookahead(
            &r_grid,
            &t_grid,
            maps,
            self.config.output_cells_per_dim as u16,
        );
        stats.pairs_rejected_by_signature = la.pairs_rejected_by_signature;
        stats.regions_pruned_lookahead = la.regions_pruned;
        stats.regions_created = la.regions.len();

        // The store maintains its live set under Pareto regardless of the
        // model (sound superset — Pareto dominance implies F-dominance);
        // a flexible model additionally strengthens blocker counts and
        // filters emissions. Region/cell pruning in `track_cells` stays
        // Pareto-based and therefore sound for any model.
        let mut store = CellStore::with_model(la.grid.clone(), maps.dominance().clone());
        stats.cells_premarked_dead = track_cells(&la, &mut store);
        stats.cells_tracked = store.len();
        let regions: Arc<[crate::lookahead::Region]> = la.regions.into();
        let det = ProgDetermine::new(&store, &regions);
        stats.lookahead_time = started.elapsed();
        lookahead_span.end();
        trace.counter("regions_created", stats.regions_created as u64);

        // ── Committer (region schedule + blocker bookkeeping) ────────────
        let cost_model = CostModel {
            sigma,
            cells_per_dim: self.config.output_cells_per_dim as u16,
            dims: maps.out_dims(),
        };
        let orders = maps.preference().orders().to_vec();
        let ctx = Arc::new(RegionCtx::new(
            maps.clone(),
            r_attrs,
            r_keys,
            t_attrs,
            t_keys,
            r_grid,
            t_grid,
            Arc::clone(&regions),
        ));
        let committer = Committer::new(
            CommitterParts {
                regions,
                out_dims: maps.out_dims(),
                row_ids: crate::driver::RowIds::Table {
                    r: kept_r,
                    t: kept_t,
                },
                store,
                det,
                orders,
                sigma,
                cost_model,
                started,
                trace,
            },
            self.config.ordering,
        );
        Ok(Prepared {
            stats,
            committer: Some(committer),
            ctx: Some(ctx),
            started,
        })
    }
}

/// Copies the kept rows of a source, remapping join keys to dense ids.
fn filter_source(
    src: &SourceView<'_>,
    kept: &[u32],
    dense: &mut impl FnMut(u32) -> u32,
) -> (PointStore, Vec<u32>) {
    let mut attrs = PointStore::with_capacity(src.dims(), kept.len());
    let mut keys = Vec::with_capacity(kept.len());
    for &row in kept {
        attrs.push(src.attrs_of(row as usize));
        keys.push(dense(src.join_key_of(row as usize)));
    }
    (attrs, keys)
}

/// Deterministic Fisher–Yates shuffle driven by SplitMix64 (keeps `rand`
/// out of the core crate's dependencies).
pub(crate) fn shuffle(v: &mut [u32], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OrderingPolicy, SignatureConfig};
    use crate::mapping::MapSet;
    use crate::session::ProgressiveEngine;
    use crate::source::SourceData;
    use progxe_skyline::{naive_skyline, Preference};

    /// Oracle: full nested-loop join + map + naive skyline.
    fn oracle(r: &SourceData, t: &SourceData, maps: &MapSet) -> Vec<(u32, u32)> {
        let mut points = PointStore::new(maps.out_dims());
        let mut ids = Vec::new();
        let mut out = Vec::new();
        for ri in 0..r.len() {
            for ti in 0..t.len() {
                if r.view().join_key_of(ri) != t.view().join_key_of(ti) {
                    continue;
                }
                maps.eval_into(r.view().attrs_of(ri), t.view().attrs_of(ti), &mut out);
                points.push(&out);
                ids.push((ri as u32, ti as u32));
            }
        }
        let sky = naive_skyline(&points, maps.preference());
        let mut result: Vec<(u32, u32)> = sky.indices.iter().map(|&i| ids[i]).collect();
        result.sort_unstable();
        result
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            let k = (lcg(&mut st) % keys as u64) as u32;
            s.push(&row, k);
        }
        s
    }

    fn run_and_sort(
        exec: &ProgXe,
        r: &SourceData,
        t: &SourceData,
        maps: &MapSet,
    ) -> Vec<(u32, u32)> {
        let out = exec
            .run_collect(&r.view(), &t.view(), maps)
            .expect("run succeeds");
        let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn matches_oracle_on_tiny_input() {
        let r = SourceData::from_rows(2, &[(&[1.0, 5.0], 0), (&[4.0, 2.0], 1)]);
        let t = SourceData::from_rows(2, &[(&[2.0, 3.0], 0), (&[1.0, 1.0], 1)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn matches_oracle_random_2d() {
        let r = random_source(120, 2, 8, 1);
        let t = random_source(110, 2, 8, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn matches_oracle_random_3d() {
        let r = random_source(80, 3, 5, 3);
        let t = random_source(90, 3, 5, 4);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn all_orderings_agree_with_oracle() {
        let r = random_source(100, 2, 6, 5);
        let t = random_source(100, 2, 6, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = oracle(&r, &t, &maps);
        for ordering in [
            OrderingPolicy::ProgOrder,
            OrderingPolicy::Random { seed: 7 },
            OrderingPolicy::Random { seed: 99 },
            OrderingPolicy::Fifo,
        ] {
            let exec = ProgXe::new(ProgXeConfig::default().with_ordering(ordering));
            assert_eq!(
                run_and_sort(&exec, &r, &t, &maps),
                expected,
                "ordering {ordering:?} diverged"
            );
        }
    }

    #[test]
    fn push_through_preserves_results() {
        let r = random_source(150, 2, 4, 7);
        let t = random_source(150, 2, 4, 8);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let plain = ProgXe::new(ProgXeConfig::variation(true, false));
        let plus = ProgXe::new(ProgXeConfig::variation(true, true));
        assert_eq!(
            run_and_sort(&plain, &r, &t, &maps),
            run_and_sort(&plus, &r, &t, &maps)
        );
        let stats = plus.run_collect(&r.view(), &t.view(), &maps).unwrap().stats;
        assert!(
            stats.push_through_pruned_r > 0,
            "group pruning should remove something on 150×2d×4keys"
        );
    }

    #[test]
    fn bloom_signatures_preserve_results() {
        let r = random_source(100, 2, 10, 9);
        let t = random_source(100, 2, 10, 10);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exact = ProgXe::new(ProgXeConfig::default());
        let bloom = ProgXe::new(
            ProgXeConfig::default().with_signature(SignatureConfig::Bloom { bits: 128 }),
        );
        assert_eq!(
            run_and_sort(&exact, &r, &t, &maps),
            run_and_sort(&bloom, &r, &t, &maps)
        );
    }

    #[test]
    fn mixed_preference_directions() {
        use progxe_skyline::Order;
        let r = random_source(90, 2, 5, 11);
        let t = random_source(90, 2, 5, 12);
        let maps = MapSet::pairwise_sum(2, Preference::new(vec![Order::Lowest, Order::Highest]));
        let exec = ProgXe::new(ProgXeConfig::default());
        assert_eq!(run_and_sort(&exec, &r, &t, &maps), oracle(&r, &t, &maps));
    }

    #[test]
    fn no_join_matches_emits_nothing() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 1)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats.results_emitted, 0);
    }

    #[test]
    fn empty_source_is_fine() {
        let r = SourceData::new(2);
        let t = SourceData::from_rows(2, &[(&[1.0, 1.0], 0)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn grid_granularity_does_not_change_results() {
        let r = random_source(100, 2, 6, 13);
        let t = random_source(100, 2, 6, 14);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = oracle(&r, &t, &maps);
        for (p, k) in [(1, 4), (2, 8), (3, 24), (5, 40), (8, 64)] {
            let exec = ProgXe::new(
                ProgXeConfig::default()
                    .with_input_partitions(p)
                    .with_output_cells(k),
            );
            assert_eq!(
                run_and_sort(&exec, &r, &t, &maps),
                expected,
                "diverged at p={p} k={k}"
            );
        }
    }

    #[test]
    fn emitted_results_never_duplicate() {
        let r = random_source(150, 2, 5, 15);
        let t = random_source(150, 2, 5, 16);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn stats_are_consistent() {
        let r = random_source(100, 2, 5, 17);
        let t = random_source(100, 2, 5, 18);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let s = &out.stats;
        assert_eq!(s.results_emitted as usize, out.results.len());
        assert!(s.regions_processed + s.regions_discarded_dead <= s.regions_created);
        assert!(s.tuples_inserted >= s.results_emitted + s.tuples_evicted);
        assert!(s.total_time >= s.lookahead_time);
        assert_eq!(s.threads_used, 1);
        assert!(!s.cancelled);
        assert_eq!(s.regions_skipped, 0);
    }

    #[test]
    fn values_in_results_match_mapping() {
        let r = SourceData::from_rows(2, &[(&[1.0, 2.0], 0)]);
        let t = SourceData::from_rows(2, &[(&[10.0, 20.0], 0)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].values, vec![11.0, 22.0]);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..20).collect();
        shuffle(&mut c, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_join_keys_are_remapped() {
        // Huge sparse keys must not blow up signature bitsets.
        let r = SourceData::from_rows(1, &[(&[1.0], 4_000_000_000), (&[2.0], 17)]);
        let t = SourceData::from_rows(1, &[(&[3.0], 4_000_000_000), (&[4.0], 99)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let exec = ProgXe::new(ProgXeConfig::default());
        let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!((out.results[0].r_idx, out.results[0].t_idx), (0, 0));
    }

    // ── Streaming session behaviour ──────────────────────────────────────

    #[test]
    fn stream_and_sink_paths_agree_exactly() {
        let r = random_source(200, 2, 6, 21);
        let t = random_source(200, 2, 6, 22);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());

        let mut sink = CollectSink::default();
        let sink_stats = exec.run(&r.view(), &t.view(), &maps, &mut sink).unwrap();

        let mut session = exec.session(&r.view(), &t.view(), &maps).unwrap();
        let mut streamed = Vec::new();
        let mut last_progress = 0.0;
        while let Some(event) = session.next_batch() {
            assert!(event.proven_final, "every ProgXe batch is final");
            assert!(
                event.progress_estimate >= last_progress,
                "progress is monotone"
            );
            last_progress = event.progress_estimate;
            streamed.extend(event.tuples);
        }
        let stream_stats = session.finish();

        // Identical results in identical emission order, identical work.
        assert_eq!(streamed, sink.results);
        assert_eq!(sink_stats.results_emitted, stream_stats.results_emitted);
        assert_eq!(sink_stats.regions_processed, stream_stats.regions_processed);
        assert_eq!(sink_stats.dominance_tests, stream_stats.dominance_tests);
        assert!(!stream_stats.cancelled);
    }

    #[test]
    fn take_k_stops_the_region_loop_early() {
        let r = random_source(400, 2, 4, 31);
        let t = random_source(400, 2, 4, 32);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());

        let full = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
        assert!(full.results.len() >= 3, "workload too small for the test");

        let k = 2;
        let partial = exec.session(&r.view(), &t.view(), &maps).unwrap().take(k);
        assert_eq!(partial.results.len(), k);
        assert_eq!(&full.results[..k], &partial.results[..]);
        assert!(partial.stats.cancelled);
        assert!(
            partial.stats.regions_processed < full.stats.regions_processed,
            "take({k}) must process fewer regions ({} vs {})",
            partial.stats.regions_processed,
            full.stats.regions_processed
        );
        assert!(partial.stats.regions_skipped > 0);
    }

    #[test]
    fn cancellation_token_stops_run() {
        let r = random_source(150, 2, 5, 41);
        let t = random_source(150, 2, 5, 42);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let token = CancellationToken::new();
        token.cancel();
        let mut sink = CollectSink::default();
        let stats = exec
            .run_cancellable(&r.view(), &t.view(), &maps, &mut sink, token)
            .unwrap();
        assert!(stats.cancelled);
        assert_eq!(stats.regions_processed, 0, "cancelled before region work");
        assert!(sink.results.is_empty());
    }

    #[test]
    fn session_cancel_mid_stream_skips_remaining_regions() {
        let r = random_source(300, 2, 4, 51);
        let t = random_source(300, 2, 4, 52);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let full = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();

        let mut session = exec.session(&r.view(), &t.view(), &maps).unwrap();
        let first = session.next_batch().expect("at least one batch");
        assert!(!first.tuples.is_empty());
        session.cancel();
        assert!(session.next_batch().is_none());
        let stats = session.finish();
        assert!(stats.cancelled);
        assert!(stats.regions_skipped > 0);
        assert!(stats.results_emitted <= full.stats.results_emitted);
    }

    #[test]
    fn engine_trait_runs_progxe() {
        let r = random_source(80, 2, 5, 61);
        let t = random_source(80, 2, 5, 62);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine: &dyn ProgressiveEngine = &ProgXe::new(ProgXeConfig::default());
        assert_eq!(engine.name(), "progxe");
        let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let direct = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), &maps)
            .unwrap();
        assert_eq!(out.results, direct.results);
    }

    #[test]
    fn prepare_exposes_committer_for_external_drivers() {
        // Drive the region loop by hand through the public Committer API —
        // exactly what a custom backend would do — and check it agrees with
        // the standard session.
        let r = random_source(120, 2, 5, 71);
        let t = random_source(120, 2, 5, 72);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let exec = ProgXe::new(ProgXeConfig::default());
        let expected = run_and_sort(&exec, &r, &t, &maps);

        let token = CancellationToken::new();
        let prep = exec
            .prepare(&r.view(), &t.view(), &maps, token.clone())
            .unwrap();
        let mut committer = prep.committer.expect("non-trivial workload");
        let ctx = prep.ctx.expect("non-trivial workload has a context");
        let mut stats = prep.stats;
        let mut ids = Vec::new();
        while let Some(rid) = committer.pop_next(&mut stats) {
            let event = if committer.region_box_is_dead(rid) {
                committer.discard_dead(rid, &mut stats)
            } else {
                let batch = ctx.compute(rid, &token);
                assert!(batch.completed);
                committer.commit_batch(batch, &mut stats)
            };
            if let Some(event) = event {
                ids.extend(event.tuples.iter().map(|x| (x.r_idx, x.t_idx)));
            }
        }
        committer.finalize(&mut stats);
        assert!(!stats.cancelled);
        ids.sort_unstable();
        assert_eq!(ids, expected);
    }
}
