//! Error type for ProgXe execution.

use std::fmt;

/// Errors surfaced by the public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A source's attribute matrix and join-key vector disagree in length.
    SourceShape {
        /// Rows in the attribute matrix.
        attr_rows: usize,
        /// Entries in the join-key vector.
        key_rows: usize,
    },
    /// The mapping set's input arity does not match a source's attributes.
    MappingArity {
        /// What the mapping set expects.
        expected: usize,
        /// What the source provides.
        actual: usize,
        /// Which source ("R" or "T").
        source: &'static str,
    },
    /// The preference dimensionality differs from the number of maps.
    PreferenceArity {
        /// Number of mapping functions (output dimensions).
        maps: usize,
        /// Preference dimensions.
        preference: usize,
    },
    /// The output dimensionality exceeds the supported maximum.
    TooManyDimensions {
        /// Requested output dimensionality.
        dims: usize,
        /// Hard limit of the cell-coordinate encoding.
        max: usize,
    },
    /// A configuration field is out of its valid range.
    InvalidConfig(&'static str),
    /// A mapping function produced a non-finite value.
    NonFiniteValue {
        /// Output dimension that misbehaved.
        dim: usize,
    },
    /// A flexible-dominance weight family is degenerate or mismatched
    /// (see [`crate::fdom::FdomError`]).
    Dominance(crate::fdom::FdomError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SourceShape {
                attr_rows,
                key_rows,
            } => write!(
                f,
                "source shape mismatch: {attr_rows} attribute rows vs {key_rows} join keys"
            ),
            Error::MappingArity {
                expected,
                actual,
                source,
            } => write!(
                f,
                "mapping expects {expected} attributes from source {source}, got {actual}"
            ),
            Error::PreferenceArity { maps, preference } => write!(
                f,
                "preference has {preference} dimensions but the query defines {maps} maps"
            ),
            Error::TooManyDimensions { dims, max } => {
                write!(
                    f,
                    "{dims} output dimensions exceed the supported maximum {max}"
                )
            }
            Error::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            Error::NonFiniteValue { dim } => {
                write!(f, "mapping function {dim} produced a non-finite value")
            }
            Error::Dominance(e) => write!(f, "dominance model: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::SourceShape {
            attr_rows: 3,
            key_rows: 2,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("2"));
        let e = Error::InvalidConfig("output_cells_per_dim must be > 0");
        assert!(e.to_string().contains("output_cells_per_dim"));
    }
}
