//! Pull-based progressive query consumption.
//!
//! The paper's framework pushes results into a [`ResultSink`] the moment
//! they are proven final. That is the right *production* discipline but the
//! wrong *consumption* model for a serving layer: callers need to pause,
//! interleave result handling with other work, stop after the first `k`
//! answers, or abandon a query altogether. This module inverts control:
//!
//! * [`ProgressiveEngine`] — the uniform execution interface implemented by
//!   the ProgXe executor *and* every baseline. `open` returns a session;
//!   `run_sink` keeps the classic push API alive as a thin adapter that
//!   drains the session into a sink.
//! * [`QuerySession`] — a pull-based cursor over a running query.
//!   [`QuerySession::next_batch`] yields [`ResultEvent`]s; [`QuerySession::cancel`]
//!   (or a shared [`CancellationToken`]) stops the executor *inside* its
//!   region loop — remaining regions are skipped, not processed and
//!   discarded; [`QuerySession::take`] returns exactly the first `k` tuples
//!   and terminates early; [`QuerySession::finish`] reports [`ExecStats`].
//!
//! For the truly progressive ProgXe executor the session steps the region
//! loop incrementally (see [`crate::driver::RegionDriver`]). The blocking
//! baselines cannot produce anything before their final (or, for SSMJ,
//! phase-1) skyline pass, so their sessions defer the whole run to the
//! first pull — cancelling an unpulled baseline session costs nothing.

use crate::error::Result;
use crate::executor::{ProgXe, RunOutput};
use crate::mapping::MapSet;
use crate::sink::ResultSink;
use crate::source::SourceView;
use crate::stats::{ExecStats, ResultTuple};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One batch of results pulled from a [`QuerySession`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEvent {
    /// The tuples of this batch, in emission order.
    pub tuples: Vec<ResultTuple>,
    /// Whether every tuple in the batch is guaranteed to belong to the
    /// final result. True for ProgXe (Principle 1: no false positives) and
    /// for the single final batch of the blocking baselines; false for
    /// SSMJ's phase-1 batch, which mapping functions can later disown
    /// (Section VII).
    pub proven_final: bool,
    /// Estimated fraction of the query completed when the batch was
    /// emitted, in `[0, 1]` (region-resolution progress for ProgXe,
    /// result-count progress for the deferred baselines).
    pub progress_estimate: f64,
    /// Time since the session was opened.
    pub elapsed: Duration,
}

impl ResultEvent {
    /// Whether this event carries no tuples — it exists only to advance
    /// the progress estimate. Progress-only events matter to remote
    /// consumers (the serving layer forwards them so a wire client's
    /// observed progress cannot go stale), but a local collector can skip
    /// them.
    pub fn is_progress_only(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Normalizes the progress estimate against a session high-water mark:
    /// clamped to `[0, 1]`, monotone non-decreasing, with non-finite
    /// estimates degrading to the previous value. Shared by
    /// [`QuerySession::next_batch`] and
    /// [`IngestSession::poll`](crate::ingest::IngestSession::poll) so both
    /// session types keep the same progress contract.
    pub(crate) fn normalize_progress(&mut self, high_water: &mut f64) {
        let p = self.progress_estimate;
        let clamped = if p.is_finite() {
            p.clamp(0.0, 1.0)
        } else {
            *high_water
        };
        *high_water = clamped.max(*high_water);
        self.progress_estimate = *high_water;
    }
}

/// Shareable cancellation flag threaded through the executor's phase loop.
///
/// Cloning yields a handle to the *same* flag, so a consumer (or a timeout
/// watchdog on another thread) can cancel a session it does not own.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the executor's
    /// next phase or region boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fires a [`CancellationToken`] when dropped.
///
/// Every session type holds one of these so that *dropping* a session —
/// the natural way to abandon a query, and the only way when a serving
/// layer's client vanishes — stops its in-flight pooled workers exactly
/// like an explicit `cancel` would. Firing after a completed run is a
/// harmless store to a flag nothing reads again, so the guard is
/// unconditional; the price is that a token outliving its session always
/// reads cancelled, which is also the honest answer.
#[derive(Debug)]
pub(crate) struct DropCancel(pub(crate) CancellationToken);

impl Drop for DropCancel {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

/// An incrementally stepped query execution that a [`QuerySession`] can
/// drive. The sequential ProgXe pipeline implements this, and so does the
/// parallel driver in the `progxe-runtime` crate — which is exactly why the
/// trait is public: external execution strategies plug into the same
/// session contract through [`QuerySession::stepped`].
pub trait SessionStep {
    /// Produces the next result event, advancing execution as needed.
    /// Returns `None` once the query has completed or was cancelled.
    fn next_event(&mut self) -> Option<ResultEvent>;

    /// A snapshot of the statistics accumulated so far (mid-run safe).
    fn stats_snapshot(&self) -> ExecStats;

    /// Consumes the stepper and returns final statistics. Implementations
    /// must flag [`ExecStats::cancelled`] when work was left undone.
    fn finalize(self: Box<Self>) -> ExecStats;
}

/// The uniform execution interface: one implementation per engine
/// (ProgXe and each baseline), one consumption model for all of them.
pub trait ProgressiveEngine {
    /// Short engine name for diagnostics and harness output.
    fn name(&self) -> &'static str;

    /// Opens a pull-based session over the query. Inputs are validated and
    /// any pre-processing the engine front-loads (for ProgXe: push-through,
    /// grid construction, output-space look-ahead) happens here; tuple
    /// work is driven by [`QuerySession::next_batch`].
    fn open<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>>;

    /// Classic push API, kept as a thin adapter over the stream: drains the
    /// session into `sink` and returns the run's statistics.
    fn run_sink<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
        sink: &mut dyn ResultSink,
    ) -> Result<ExecStats> {
        let mut session = self.open(r, t, maps)?;
        session.drain_into(sink);
        Ok(session.finish())
    }

    /// Runs to completion and collects all results in emission order.
    fn run_collect<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<RunOutput> {
        Ok(self.open(r, t, maps)?.collect())
    }
}

/// A deferred engine run: executes on first pull, returning every batch it
/// will ever produce plus final statistics.
type DeferredRun<'a> = Box<dyn FnOnce() -> (Vec<ResultEvent>, ExecStats) + 'a>;

/// State of a deferred (blocking-engine) session.
struct DeferredState<'a> {
    run: Option<DeferredRun<'a>>,
    queue: VecDeque<ResultEvent>,
    stats: Option<ExecStats>,
}

enum SessionInner<'a> {
    /// Incrementally stepped execution (the unified
    /// [`RegionDriver`](crate::driver::RegionDriver), or any external
    /// [`SessionStep`]).
    Stream(Box<dyn SessionStep + 'a>),
    /// Blocking engine: the whole run happens at the first `next_batch`.
    Deferred(Box<DeferredState<'a>>),
}

/// A pull-based cursor over one running query.
///
/// Obtained from [`ProgressiveEngine::open`]. Results arrive through
/// [`next_batch`](Self::next_batch) as they are proven final; the session
/// ends when `next_batch` returns `None` (query complete or cancelled),
/// after which [`finish`](Self::finish) reports the run's [`ExecStats`].
///
/// Dropping a session — with or without calling `finish` — fires its
/// [`CancellationToken`], so in-flight pooled workers stop even when the
/// session is simply abandoned. A consequence: a token clone that outlives
/// its session always reads cancelled.
#[must_use = "a session does no tuple work until it is pulled"]
pub struct QuerySession<'a> {
    engine: &'static str,
    inner: SessionInner<'a>,
    token: CancellationToken,
    remap: Option<(Vec<u32>, Vec<u32>)>,
    emitted: u64,
    /// High-water mark enforcing monotone, `[0, 1]`-clamped progress.
    last_progress: f64,
    /// Fires `token` on drop (`QuerySession` itself must stay `Drop`-free:
    /// `finish` partially moves out of `self`).
    _drop_cancel: DropCancel,
}

impl<'a> QuerySession<'a> {
    /// Wraps a [`SessionStep`] implementation (the core
    /// [`RegionDriver`](crate::driver::RegionDriver) on either backend, or
    /// any external stepper) together with the cancellation token it
    /// watches. The token must be shared with the stepper: `cancel` relies
    /// on it.
    pub fn stepped(
        engine: &'static str,
        token: CancellationToken,
        step: Box<dyn SessionStep + 'a>,
    ) -> Self {
        Self {
            engine,
            inner: SessionInner::Stream(step),
            _drop_cancel: DropCancel(token.clone()),
            token,
            remap: None,
            emitted: 0,
            last_progress: 0.0,
        }
    }

    /// Wraps a blocking engine as a deferred session: `run` executes on the
    /// first [`next_batch`](Self::next_batch) call and returns every batch
    /// of the run (in emission order) plus its final statistics. Engines in
    /// other crates (the baselines) build their sessions through this.
    pub fn deferred<F>(engine: &'static str, run: F) -> Self
    where
        F: FnOnce() -> (Vec<ResultEvent>, ExecStats) + 'a,
    {
        let token = CancellationToken::new();
        Self {
            engine,
            inner: SessionInner::Deferred(Box::new(DeferredState {
                run: Some(Box::new(run)),
                queue: VecDeque::new(),
                stats: None,
            })),
            _drop_cancel: DropCancel(token.clone()),
            token,
            remap: None,
            emitted: 0,
            last_progress: 0.0,
        }
    }

    /// The engine that produced this session.
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// A shareable handle to this session's cancellation flag.
    pub fn cancel_token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// Requests cancellation: the executor stops at its next region
    /// boundary and `next_batch` returns `None` from then on.
    pub fn cancel(&mut self) {
        self.token.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Total tuples delivered so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Translates emitted row ids through the given lookup tables
    /// (`tuple.r_idx = r_rows[tuple.r_idx]`, likewise for `t`). Used by the
    /// query layer to report ids of the caller's original tables after
    /// planning filtered the sources.
    pub fn with_id_translation(mut self, r_rows: Vec<u32>, t_rows: Vec<u32>) -> Self {
        self.remap = Some((r_rows, t_rows));
        self
    }

    /// Drains the session into `sink`, forwarding every non-empty batch.
    /// The shared plumbing behind all sink-style adapters.
    pub fn drain_into<S: ResultSink + ?Sized>(&mut self, sink: &mut S) {
        while let Some(event) = self.next_batch() {
            if !event.tuples.is_empty() {
                sink.emit_batch(&event.tuples);
            }
        }
    }

    /// Pulls the next batch of proven-final results. Returns `None` once
    /// the query has completed or the session was cancelled.
    ///
    /// [`ResultEvent::progress_estimate`] is normalized here, uniformly for
    /// every engine: clamped to `[0, 1]` and made monotonically
    /// non-decreasing across the batches of one session (non-finite
    /// estimates degrade to the previous value).
    pub fn next_batch(&mut self) -> Option<ResultEvent> {
        if self.token.is_cancelled() {
            return None;
        }
        let mut event = match &mut self.inner {
            SessionInner::Stream(session) => session.next_event()?,
            SessionInner::Deferred(deferred) => {
                if let Some(run) = deferred.run.take() {
                    let (events, run_stats) = run();
                    deferred.queue = events.into();
                    deferred.stats = Some(run_stats);
                }
                deferred.queue.pop_front()?
            }
        };
        if let Some((r_rows, t_rows)) = &self.remap {
            for tuple in &mut event.tuples {
                tuple.r_idx = r_rows[tuple.r_idx as usize];
                tuple.t_idx = t_rows[tuple.t_idx as usize];
            }
        }
        event.normalize_progress(&mut self.last_progress);
        self.emitted += event.tuples.len() as u64;
        Some(event)
    }

    /// A snapshot of the statistics accumulated so far, without consuming
    /// the session. For a deferred (blocking) engine that has not run yet,
    /// this is all zeros.
    pub fn stats_snapshot(&self) -> ExecStats {
        match &self.inner {
            SessionInner::Stream(session) => session.stats_snapshot(),
            SessionInner::Deferred(deferred) => deferred.stats.clone().unwrap_or_default(),
        }
    }

    /// Consumes the session and returns its statistics. If the query had
    /// not finished, remaining work is skipped (not silently completed) and
    /// [`ExecStats::cancelled`] is set.
    pub fn finish(self) -> ExecStats {
        match self.inner {
            SessionInner::Stream(session) => session.finalize(),
            SessionInner::Deferred(deferred) => {
                let mut stats = deferred.stats.unwrap_or_default();
                // Never ran, or ran but results were not fully delivered.
                stats.cancelled |= deferred.run.is_some() || !deferred.queue.is_empty();
                stats
            }
        }
    }

    /// Drains the session to completion, collecting all results.
    pub fn collect(mut self) -> RunOutput {
        let mut results = Vec::new();
        while let Some(event) = self.next_batch() {
            results.extend(event.tuples);
        }
        RunOutput {
            results,
            stats: self.finish(),
        }
    }

    /// Pulls until `k` tuples have arrived, then cancels: remaining regions
    /// are never processed. Returns exactly the first `k` emitted tuples
    /// (fewer if the query completes first) plus the partial-run stats.
    pub fn take(mut self, k: usize) -> RunOutput {
        let mut results = Vec::with_capacity(k);
        while results.len() < k {
            let Some(event) = self.next_batch() else {
                break;
            };
            results.extend(event.tuples);
        }
        results.truncate(k);
        self.cancel();
        RunOutput {
            results,
            stats: self.finish(),
        }
    }
}

impl std::fmt::Debug for QuerySession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySession")
            .field("engine", &self.engine)
            .field("emitted", &self.emitted)
            .field("cancelled", &self.token.is_cancelled())
            .finish_non_exhaustive()
    }
}

impl ProgressiveEngine for ProgXe {
    fn name(&self) -> &'static str {
        "progxe"
    }

    fn open<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        self.session(r, t, maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(r: u32) -> ResultTuple {
        ResultTuple {
            r_idx: r,
            t_idx: r,
            values: vec![f64::from(r)],
        }
    }

    fn two_batch_session<'a>() -> QuerySession<'a> {
        QuerySession::deferred("test", || {
            let events = vec![
                ResultEvent {
                    tuples: vec![tuple(0), tuple(1)],
                    proven_final: false,
                    progress_estimate: 0.5,
                    elapsed: Duration::from_millis(1),
                },
                ResultEvent {
                    tuples: vec![tuple(2)],
                    proven_final: true,
                    progress_estimate: 1.0,
                    elapsed: Duration::from_millis(2),
                },
            ];
            let stats = ExecStats {
                results_emitted: 3,
                ..ExecStats::default()
            };
            (events, stats)
        })
    }

    #[test]
    fn deferred_session_delivers_all_batches() {
        let mut s = two_batch_session();
        let first = s.next_batch().unwrap();
        assert_eq!(first.tuples.len(), 2);
        assert!(!first.proven_final);
        let second = s.next_batch().unwrap();
        assert_eq!(second.tuples.len(), 1);
        assert!(second.proven_final);
        assert!(s.next_batch().is_none());
        assert_eq!(s.emitted(), 3);
        let stats = s.finish();
        assert!(!stats.cancelled);
        assert_eq!(stats.results_emitted, 3);
    }

    #[test]
    fn cancel_before_first_pull_skips_the_run() {
        let mut s = QuerySession::deferred("test", || {
            panic!("deferred run must not execute after cancellation");
        });
        s.cancel();
        assert!(s.next_batch().is_none());
        assert!(s.finish().cancelled);
    }

    #[test]
    fn cancel_mid_stream_stops_delivery() {
        let mut s = two_batch_session();
        assert!(s.next_batch().is_some());
        s.cancel();
        assert!(s.next_batch().is_none());
        assert!(s.finish().cancelled);
    }

    #[test]
    fn take_truncates_to_exactly_k() {
        let out = two_batch_session().take(1);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].r_idx, 0);
        assert!(out.stats.cancelled, "undelivered batch marks cancellation");
    }

    #[test]
    fn take_more_than_available_returns_everything() {
        let out = two_batch_session().take(10);
        assert_eq!(out.results.len(), 3);
        assert!(!out.stats.cancelled);
    }

    #[test]
    fn id_translation_applies_to_events() {
        let mut s = two_batch_session().with_id_translation(vec![10, 11, 12], vec![20, 21, 22]);
        let first = s.next_batch().unwrap();
        assert_eq!(first.tuples[0].r_idx, 10);
        assert_eq!(first.tuples[0].t_idx, 20);
        assert_eq!(first.tuples[1].r_idx, 11);
    }

    #[test]
    fn token_is_shared_across_clones() {
        let s = two_batch_session();
        let token = s.cancel_token();
        token.cancel();
        assert!(s.is_cancelled());
    }

    #[test]
    fn dropping_a_session_without_finish_fires_its_token() {
        // Regression: abandoning a session (no `finish`, no `cancel`) must
        // cancel it — a serving layer drops sessions when clients vanish,
        // and in-flight pooled workers watch this token.
        let mut s = two_batch_session();
        let token = s.cancel_token();
        assert!(s.next_batch().is_some(), "mid-stream, not unpulled");
        drop(s);
        assert!(token.is_cancelled(), "drop must fire the token");
    }
}
