//! # ProgXe — progressive evaluation of SkyMapJoin queries
//!
//! This crate implements the paper's primary contribution: a pipelined,
//! non-blocking execution framework for queries that join two sources, map
//! the join results through user-defined functions, and retain the Pareto
//! skyline of the mapped output (*SkyMapJoin* queries, Section II).
//!
//! The framework follows Figure 2 of the paper:
//!
//! 1. **Output-space look-ahead** ([`lookahead`]) — both inputs are
//!    partitioned into multi-dimensional grids ([`grid`]); partition pairs
//!    whose join-value [`signature`]s overlap are mapped (via interval
//!    evaluation of the [`mapping`] functions) into *output regions*;
//!    regions and output cells dominated at this abstraction level are
//!    pruned before any tuple-level work.
//! 2. **Progressive-driven ordering** ([`progorder`], [`elgraph`],
//!    [`benefit`], [`cost`]) — an elimination graph plus a benefit/cost
//!    model pick the region order that maximizes the early-output rate
//!    (Algorithm 1).
//! 3. **Tuple-level processing** ([`tuple_level`], [`cells`]) — the join,
//!    map, and cell-restricted dominance comparisons for the chosen region.
//! 4. **Progressive result determination** ([`progdetermine`]) — count-based
//!    blocker bookkeeping per output cell decides when generated tuples are
//!    *safe* to emit: no false positives, no false negatives (Algorithm 2,
//!    Principle 1).
//!
//! The [`executor`] module builds the pipeline front end behind the public
//! entry point [`ProgXe`]; the [`driver`] module owns the single region
//! loop ([`driver::RegionDriver`]) that every backend — inline or pooled —
//! executes. Results are consumed either by pulling a streaming
//! [`session::QuerySession`] (incremental batches, cancellation, `take(k)`
//! early termination) or by pushing into a [`sink::ResultSink`] — the sink
//! path is a thin adapter over the stream. Sources that *arrive*
//! incrementally (the paper's federated/web setting) go through the
//! [`ingest`] module instead: an [`ingest::IngestSession`] accepts row
//! batches, watermarks, and per-source close signals, and emits
//! proven-final results while data is still in flight.
//!
//! ## Quick example
//!
//! ```
//! use progxe_core::prelude::*;
//!
//! // Two tiny sources: attributes + join key per tuple.
//! let r = SourceData::from_rows(2, &[(&[1.0, 5.0][..], 0), (&[4.0, 2.0][..], 1)]);
//! let t = SourceData::from_rows(2, &[(&[2.0, 3.0][..], 0), (&[1.0, 1.0][..], 1)]);
//!
//! // Q1-style query: minimize (r.0 + t.0) and (r.1 + t.1).
//! let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
//! let exec = ProgXe::new(ProgXeConfig::default());
//! let out = exec.run_collect(&r.view(), &t.view(), &maps).unwrap();
//! assert_eq!(out.results.len(), 2); // both join pairs are Pareto-optimal
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benefit;
pub mod cells;
pub mod config;
pub mod cost;
pub mod driver;
pub mod elgraph;
pub mod error;
pub mod executor;
pub mod fdom;
pub mod fxhash;
pub mod grid;
pub mod ingest;
pub mod lookahead;
pub mod mapping;
pub mod output_grid;
pub mod progdetermine;
pub mod progorder;
pub mod pushthrough;
pub mod session;
pub mod signature;
pub mod sink;
pub mod source;
pub mod stats;
pub mod tuple_level;

pub use config::{OrderingPolicy, ProgXeConfig, SignatureConfig};
pub use driver::{Committer, DriverPoll, ExecutorBackend, Popped, RegionDriver, TaskSpawner};
pub use error::{Error, Result};
pub use executor::{ProgXe, RunOutput};
pub use fdom::{DominanceModel, FDominance, FdomError, QueryDominance, WeightConstraint};
pub use ingest::{IngestError, IngestPoll, IngestSession, SourceId, StreamSpec};
pub use mapping::{GeneralMap, MapSet, MappingFunction, WeightedSum};
pub use session::{CancellationToken, ProgressiveEngine, QuerySession, ResultEvent};
pub use sink::{CollectSink, ProgressSink, ResultSink};
pub use source::{SourceData, SourceView};
pub use stats::{ExecStats, ProgressRecord, ResultTuple};

/// One-stop imports for examples and downstream crates.
pub mod prelude {
    pub use crate::config::{OrderingPolicy, ProgXeConfig, SignatureConfig};
    pub use crate::executor::{ProgXe, RunOutput};
    pub use crate::fdom::{DominanceModel, FDominance, FdomError, WeightConstraint};
    pub use crate::ingest::{IngestError, IngestPoll, IngestSession, SourceId, StreamSpec};
    pub use crate::mapping::{GeneralMap, MapSet, MappingFunction, WeightedSum};
    pub use crate::session::{CancellationToken, ProgressiveEngine, QuerySession, ResultEvent};
    pub use crate::sink::{CollectSink, ProgressSink, ResultSink};
    pub use crate::source::{SourceData, SourceView};
    pub use crate::stats::{ExecStats, ProgressRecord, ResultTuple};
    pub use progxe_skyline::{Order, Preference};
}
