//! Input-space grid partitioning (Section III).
//!
//! "We assume the input data sets are partitioned into a multi-dimensional
//! grid structure." Each source is cut into `p` equal-width slices per
//! attribute dimension; only non-empty partitions are materialized. Every
//! partition carries (a) the row indices of its tuples, (b) a *tight*
//! bounding box (the min/max of its members, which maps to tighter output
//! regions than the raw cell geometry — a sound refinement), and (c) the
//! join-value [`JoinSignature`] used to decide whether a partition pair can
//! produce join results at all.

use crate::config::SignatureConfig;
use crate::fxhash::FxHashMap;
use crate::signature::JoinSignature;
use crate::source::SourceView;

/// One non-empty input partition (`I^R_a` in the paper's notation).
#[derive(Debug, Clone)]
pub struct InputPartition {
    /// Dense partition id within its grid.
    pub id: u32,
    /// Row indices of member tuples in the source.
    pub tuples: Vec<u32>,
    /// Tight per-dimension lower bounds of the members.
    pub lo: Vec<f64>,
    /// Tight per-dimension upper bounds of the members.
    pub hi: Vec<f64>,
    /// Join-value signature of the members.
    pub signature: JoinSignature,
}

impl InputPartition {
    /// Number of member tuples (`n^R_a` in Equation 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// A partition is never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The grid over one input source: its non-empty partitions.
#[derive(Debug, Clone)]
pub struct InputGrid {
    partitions: Vec<InputPartition>,
}

impl InputGrid {
    /// Partitions `source` into `per_dim` slices per attribute dimension.
    ///
    /// `join_domain` is the exclusive upper bound of join-key values
    /// (`max key + 1`), used to size exact signatures.
    pub fn build(
        source: &SourceView<'_>,
        per_dim: usize,
        signature: SignatureConfig,
        join_domain: usize,
    ) -> Self {
        assert!(per_dim > 0, "per_dim must be positive");
        let n = source.len();
        if n == 0 {
            return Self {
                partitions: Vec::new(),
            };
        }
        let dims = source.dims();
        let (lo, hi) = source
            .attrs()
            .bounds()
            .expect("non-empty source has bounds");
        // Per-dimension width; degenerate (constant) dimensions collapse to
        // a single slice.
        let width: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { (h - l) / per_dim as f64 } else { 1.0 })
            .collect();

        // Bucket tuples by grid cell (linear index).
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for row in 0..n {
            let p = source.attrs_of(row);
            let mut linear: u64 = 0;
            for d in 0..dims {
                let slot = (((p[d] - lo[d]) / width[d]) as usize).min(per_dim - 1);
                linear = linear * per_dim as u64 + slot as u64;
            }
            buckets.entry(linear).or_default().push(row as u32);
        }

        // Materialize non-empty partitions with tight bounds + signatures.
        // Sort buckets by linear index for deterministic partition ids.
        let mut keys: Vec<u64> = buckets.keys().copied().collect();
        keys.sort_unstable();
        let mut partitions = Vec::with_capacity(keys.len());
        for (id, key) in keys.into_iter().enumerate() {
            let tuples = buckets.remove(&key).expect("key came from the map");
            let mut p_lo = source.attrs_of(tuples[0] as usize).to_vec();
            let mut p_hi = p_lo.clone();
            let mut sig = JoinSignature::empty(signature, join_domain);
            for &row in &tuples {
                let attrs = source.attrs_of(row as usize);
                for d in 0..dims {
                    p_lo[d] = p_lo[d].min(attrs[d]);
                    p_hi[d] = p_hi[d].max(attrs[d]);
                }
                sig.insert(source.join_key_of(row as usize));
            }
            partitions.push(InputPartition {
                id: id as u32,
                tuples,
                lo: p_lo,
                hi: p_hi,
                signature: sig,
            });
        }
        Self { partitions }
    }

    /// The non-empty partitions, ordered by grid position.
    #[inline]
    pub fn partitions(&self) -> &[InputPartition] {
        &self.partitions
    }

    /// Number of non-empty partitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when the source was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Total tuples across partitions (equals the source cardinality).
    pub fn total_tuples(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceData;

    fn source(rows: &[(&[f64], u32)]) -> SourceData {
        SourceData::from_rows(rows[0].0.len(), rows)
    }

    #[test]
    fn every_tuple_lands_in_exactly_one_partition() {
        let s = source(&[
            (&[1.0, 1.0], 0),
            (&[99.0, 99.0], 1),
            (&[50.0, 50.0], 2),
            (&[1.0, 99.0], 3),
            (&[99.0, 1.0], 4),
        ]);
        let g = InputGrid::build(&s.view(), 2, SignatureConfig::Exact, 5);
        assert_eq!(g.total_tuples(), 5);
        let mut seen: Vec<u32> = g
            .partitions()
            .iter()
            .flat_map(|p| p.tuples.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounds_are_tight() {
        let s = source(&[(&[10.0, 20.0], 0), (&[12.0, 22.0], 0)]);
        let g = InputGrid::build(&s.view(), 1, SignatureConfig::Exact, 1);
        assert_eq!(g.len(), 1);
        let p = &g.partitions()[0];
        assert_eq!(p.lo, vec![10.0, 20.0]);
        assert_eq!(p.hi, vec![12.0, 22.0]);
    }

    #[test]
    fn members_stay_inside_bounds() {
        let s = source(&[
            (&[1.0, 5.0], 0),
            (&[2.0, 6.0], 0),
            (&[80.0, 90.0], 1),
            (&[85.0, 95.0], 1),
            (&[40.0, 45.0], 2),
        ]);
        let g = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 3);
        for p in g.partitions() {
            for &row in &p.tuples {
                let attrs = s.view().attrs_of(row as usize);
                for (d, &a) in attrs.iter().enumerate() {
                    assert!(p.lo[d] <= a && a <= p.hi[d]);
                }
            }
        }
    }

    #[test]
    fn signatures_reflect_membership() {
        let s = source(&[(&[1.0], 7), (&[2.0], 9), (&[99.0], 3)]);
        let g = InputGrid::build(&s.view(), 2, SignatureConfig::Exact, 10);
        let low = g
            .partitions()
            .iter()
            .find(|p| p.lo[0] < 50.0)
            .expect("low partition exists");
        assert!(low.signature.maybe_contains(7));
        assert!(low.signature.maybe_contains(9));
        assert!(!low.signature.maybe_contains(3));
    }

    #[test]
    fn constant_dimension_collapses() {
        let s = source(&[(&[5.0, 1.0], 0), (&[5.0, 9.0], 0)]);
        let g = InputGrid::build(&s.view(), 4, SignatureConfig::Exact, 1);
        // dim 0 constant → one slice; dim 1 splits.
        assert!(g.len() >= 2);
        assert_eq!(g.total_tuples(), 2);
    }

    #[test]
    fn empty_source_empty_grid() {
        let s = SourceData::new(2);
        let g = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 1);
        assert!(g.is_empty());
    }

    #[test]
    fn max_value_tuples_clamp_into_top_slice() {
        let s = source(&[(&[0.0], 0), (&[100.0], 0)]);
        let g = InputGrid::build(&s.view(), 4, SignatureConfig::Exact, 1);
        assert_eq!(g.total_tuples(), 2);
    }

    #[test]
    fn deterministic_partition_ids() {
        let s = source(&[(&[1.0], 0), (&[99.0], 1), (&[50.0], 2)]);
        let a = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 3);
        let b = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 3);
        for (pa, pb) in a.partitions().iter().zip(b.partitions()) {
            assert_eq!(pa.id, pb.id);
            assert_eq!(pa.tuples, pb.tuples);
        }
    }
}
