//! Input-space grid partitioning (Section III).
//!
//! "We assume the input data sets are partitioned into a multi-dimensional
//! grid structure." Each source is cut into `p` equal-width slices per
//! attribute dimension; only non-empty partitions are materialized. Every
//! partition carries (a) the row indices of its tuples, (b) a *tight*
//! bounding box (the min/max of its members, which maps to tighter output
//! regions than the raw cell geometry — a sound refinement), and (c) the
//! join-value [`JoinSignature`] used to decide whether a partition pair can
//! produce join results at all.

use crate::config::SignatureConfig;
use crate::fxhash::FxHashMap;
use crate::signature::JoinSignature;
use crate::source::SourceView;

/// Fixed slicing geometry of one input grid: `per_dim` equal-width slices
/// per attribute dimension over a bounding box.
///
/// The batch pipeline derives the box from the observed data
/// ([`InputGrid::build`]); the streaming pipeline ([`crate::ingest`]) uses
/// *declared* bounds instead, so that the cell a tuple lands in — and with
/// it the whole region structure — is independent of arrival order.
#[derive(Debug, Clone)]
pub struct GridGeometry {
    lo: Vec<f64>,
    width: Vec<f64>,
    per_dim: usize,
}

impl GridGeometry {
    /// Geometry over the box `[lo, hi]` with `per_dim` slices per
    /// dimension. Degenerate (zero-extent) dimensions collapse to a single
    /// effective slice.
    pub fn from_bounds(lo: &[f64], hi: &[f64], per_dim: usize) -> Self {
        assert!(per_dim > 0, "per_dim must be positive");
        assert_eq!(lo.len(), hi.len(), "bounds must be parallel");
        let width = lo
            .iter()
            .zip(hi)
            .map(|(&l, &h)| if h > l { (h - l) / per_dim as f64 } else { 1.0 })
            .collect();
        Self {
            lo: lo.to_vec(),
            width,
            per_dim,
        }
    }

    /// Attribute dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Slices per dimension.
    #[inline]
    pub fn per_dim(&self) -> usize {
        self.per_dim
    }

    /// Total cell count (`per_dim ^ dims`), or `None` on overflow.
    pub fn cell_count(&self) -> Option<usize> {
        self.per_dim.checked_pow(self.dims() as u32)
    }

    /// Slice index of value `v` along dimension `d` (clamped into range).
    #[inline]
    pub fn slot(&self, d: usize, v: f64) -> usize {
        (((v - self.lo[d]) / self.width[d]) as usize).min(self.per_dim - 1)
    }

    /// Linear cell index of a point (row-major, dimension 0 most
    /// significant — matches [`InputGrid::build`]'s bucketing).
    pub fn linear_of(&self, p: &[f64]) -> usize {
        let mut linear = 0usize;
        for (d, &v) in p.iter().enumerate().take(self.dims()) {
            linear = linear * self.per_dim + self.slot(d, v);
        }
        linear
    }

    /// Slice index along dimension `d` of the cell with linear index
    /// `linear`.
    pub fn slot_of_linear(&self, linear: usize, d: usize) -> usize {
        let mut rest = linear;
        let mut slot = 0;
        for dim in 0..self.dims() {
            slot = rest / self.per_dim.pow((self.dims() - 1 - dim) as u32);
            rest %= self.per_dim.pow((self.dims() - 1 - dim) as u32);
            if dim == d {
                return slot;
            }
        }
        slot
    }

    /// Geometric bounds of the cell with linear index `linear`
    /// (`[slice_lo, slice_hi]` per dimension).
    pub fn slice_bounds(&self, linear: usize) -> (Vec<f64>, Vec<f64>) {
        let dims = self.dims();
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for d in 0..dims {
            let slot = self.slot_of_linear(linear, d) as f64;
            lo.push(self.lo[d] + slot * self.width[d]);
            hi.push(self.lo[d] + (slot + 1.0) * self.width[d]);
        }
        (lo, hi)
    }

    /// Upper geometric bound of slice `slot` along dimension `d`.
    #[inline]
    pub fn slice_hi(&self, d: usize, slot: usize) -> f64 {
        self.lo[d] + (slot as f64 + 1.0) * self.width[d]
    }
}

/// One non-empty input partition (`I^R_a` in the paper's notation).
#[derive(Debug, Clone)]
pub struct InputPartition {
    /// Dense partition id within its grid.
    pub id: u32,
    /// Row indices of member tuples in the source.
    pub tuples: Vec<u32>,
    /// Tight per-dimension lower bounds of the members.
    pub lo: Vec<f64>,
    /// Tight per-dimension upper bounds of the members.
    pub hi: Vec<f64>,
    /// Join-value signature of the members.
    pub signature: JoinSignature,
}

impl InputPartition {
    /// Number of member tuples (`n^R_a` in Equation 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// A partition is never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The grid over one input source: its non-empty partitions.
#[derive(Debug, Clone)]
pub struct InputGrid {
    partitions: Vec<InputPartition>,
}

impl InputGrid {
    /// Partitions `source` into `per_dim` slices per attribute dimension.
    ///
    /// `join_domain` is the exclusive upper bound of join-key values
    /// (`max key + 1`), used to size exact signatures.
    pub fn build(
        source: &SourceView<'_>,
        per_dim: usize,
        signature: SignatureConfig,
        join_domain: usize,
    ) -> Self {
        assert!(per_dim > 0, "per_dim must be positive");
        let n = source.len();
        if n == 0 {
            return Self {
                partitions: Vec::new(),
            };
        }
        let dims = source.dims();
        let (lo, hi) = source
            .attrs()
            .bounds()
            .expect("non-empty source has bounds");
        let geo = GridGeometry::from_bounds(&lo, &hi, per_dim);

        // Bucket tuples by grid cell (linear index).
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for row in 0..n {
            let linear = geo.linear_of(source.attrs_of(row)) as u64;
            buckets.entry(linear).or_default().push(row as u32);
        }

        // Materialize non-empty partitions with tight bounds + signatures.
        // Sort buckets by linear index for deterministic partition ids.
        let mut keys: Vec<u64> = buckets.keys().copied().collect();
        keys.sort_unstable();
        let mut partitions = Vec::with_capacity(keys.len());
        for (id, key) in keys.into_iter().enumerate() {
            let tuples = buckets.remove(&key).expect("key came from the map");
            let mut p_lo = source.attrs_of(tuples[0] as usize).to_vec();
            let mut p_hi = p_lo.clone();
            let mut sig = JoinSignature::empty(signature, join_domain);
            for &row in &tuples {
                let attrs = source.attrs_of(row as usize);
                for d in 0..dims {
                    p_lo[d] = p_lo[d].min(attrs[d]);
                    p_hi[d] = p_hi[d].max(attrs[d]);
                }
                sig.insert(source.join_key_of(row as usize));
            }
            partitions.push(InputPartition {
                id: id as u32,
                tuples,
                lo: p_lo,
                hi: p_hi,
                signature: sig,
            });
        }
        Self { partitions }
    }

    /// The non-empty partitions, ordered by grid position.
    #[inline]
    pub fn partitions(&self) -> &[InputPartition] {
        &self.partitions
    }

    /// Number of non-empty partitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when the source was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Total tuples across partitions (equals the source cardinality).
    pub fn total_tuples(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceData;

    fn source(rows: &[(&[f64], u32)]) -> SourceData {
        SourceData::from_rows(rows[0].0.len(), rows)
    }

    #[test]
    fn every_tuple_lands_in_exactly_one_partition() {
        let s = source(&[
            (&[1.0, 1.0], 0),
            (&[99.0, 99.0], 1),
            (&[50.0, 50.0], 2),
            (&[1.0, 99.0], 3),
            (&[99.0, 1.0], 4),
        ]);
        let g = InputGrid::build(&s.view(), 2, SignatureConfig::Exact, 5);
        assert_eq!(g.total_tuples(), 5);
        let mut seen: Vec<u32> = g
            .partitions()
            .iter()
            .flat_map(|p| p.tuples.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounds_are_tight() {
        let s = source(&[(&[10.0, 20.0], 0), (&[12.0, 22.0], 0)]);
        let g = InputGrid::build(&s.view(), 1, SignatureConfig::Exact, 1);
        assert_eq!(g.len(), 1);
        let p = &g.partitions()[0];
        assert_eq!(p.lo, vec![10.0, 20.0]);
        assert_eq!(p.hi, vec![12.0, 22.0]);
    }

    #[test]
    fn members_stay_inside_bounds() {
        let s = source(&[
            (&[1.0, 5.0], 0),
            (&[2.0, 6.0], 0),
            (&[80.0, 90.0], 1),
            (&[85.0, 95.0], 1),
            (&[40.0, 45.0], 2),
        ]);
        let g = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 3);
        for p in g.partitions() {
            for &row in &p.tuples {
                let attrs = s.view().attrs_of(row as usize);
                for (d, &a) in attrs.iter().enumerate() {
                    assert!(p.lo[d] <= a && a <= p.hi[d]);
                }
            }
        }
    }

    #[test]
    fn signatures_reflect_membership() {
        let s = source(&[(&[1.0], 7), (&[2.0], 9), (&[99.0], 3)]);
        let g = InputGrid::build(&s.view(), 2, SignatureConfig::Exact, 10);
        let low = g
            .partitions()
            .iter()
            .find(|p| p.lo[0] < 50.0)
            .expect("low partition exists");
        assert!(low.signature.maybe_contains(7));
        assert!(low.signature.maybe_contains(9));
        assert!(!low.signature.maybe_contains(3));
    }

    #[test]
    fn constant_dimension_collapses() {
        let s = source(&[(&[5.0, 1.0], 0), (&[5.0, 9.0], 0)]);
        let g = InputGrid::build(&s.view(), 4, SignatureConfig::Exact, 1);
        // dim 0 constant → one slice; dim 1 splits.
        assert!(g.len() >= 2);
        assert_eq!(g.total_tuples(), 2);
    }

    #[test]
    fn empty_source_empty_grid() {
        let s = SourceData::new(2);
        let g = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 1);
        assert!(g.is_empty());
    }

    #[test]
    fn max_value_tuples_clamp_into_top_slice() {
        let s = source(&[(&[0.0], 0), (&[100.0], 0)]);
        let g = InputGrid::build(&s.view(), 4, SignatureConfig::Exact, 1);
        assert_eq!(g.total_tuples(), 2);
    }

    #[test]
    fn geometry_slices_round_trip() {
        let geo = GridGeometry::from_bounds(&[0.0, 10.0], &[100.0, 20.0], 4);
        assert_eq!(geo.dims(), 2);
        assert_eq!(geo.per_dim(), 4);
        assert_eq!(geo.cell_count(), Some(16));
        // Point (30, 17): slots (1, 2) → linear 1*4 + 2 = 6.
        let linear = geo.linear_of(&[30.0, 17.0]);
        assert_eq!(linear, 6);
        assert_eq!(geo.slot_of_linear(linear, 0), 1);
        assert_eq!(geo.slot_of_linear(linear, 1), 2);
        let (lo, hi) = geo.slice_bounds(linear);
        assert!(lo[0] <= 30.0 && 30.0 <= hi[0]);
        assert!(lo[1] <= 17.0 && 17.0 <= hi[1]);
        assert_eq!(geo.slice_hi(0, 1), 50.0);
    }

    #[test]
    fn geometry_clamps_and_collapses_degenerate_dims() {
        let geo = GridGeometry::from_bounds(&[0.0, 5.0], &[10.0, 5.0], 3);
        // Values at and past the upper bound stay in the top slice.
        assert_eq!(geo.slot(0, 10.0), 2);
        assert_eq!(geo.slot(0, 999.0), 2);
        // Degenerate dim: everything in slot 0 (width 1 fallback).
        assert_eq!(geo.slot(1, 5.0), 0);
    }

    #[test]
    fn geometry_matches_input_grid_bucketing() {
        // The refactored InputGrid::build must bucket exactly as before:
        // every member tuple of a partition shares the partition's linear
        // cell under the data-bounds geometry.
        let s = source(&[
            (&[1.0, 5.0], 0),
            (&[2.0, 6.0], 0),
            (&[80.0, 90.0], 1),
            (&[40.0, 45.0], 2),
        ]);
        let (lo, hi) = s.view().attrs().bounds().unwrap();
        let geo = GridGeometry::from_bounds(&lo, &hi, 3);
        let g = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 3);
        for p in g.partitions() {
            let cell = geo.linear_of(s.view().attrs_of(p.tuples[0] as usize));
            for &row in &p.tuples {
                assert_eq!(geo.linear_of(s.view().attrs_of(row as usize)), cell);
            }
        }
    }

    #[test]
    fn deterministic_partition_ids() {
        let s = source(&[(&[1.0], 0), (&[99.0], 1), (&[50.0], 2)]);
        let a = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 3);
        let b = InputGrid::build(&s.view(), 3, SignatureConfig::Exact, 3);
        for (pa, pb) in a.partitions().iter().zip(b.partitions()) {
            assert_eq!(pa.id, pb.id);
            assert_eq!(pa.tuples, pb.tuples);
        }
    }
}
