//! The Map operator µ[F, X] (Section II-B).
//!
//! Each mapping function `f_j` combines attributes from both join sides into
//! one output attribute `x_j` (`tCost = R.uPrice + T.uShipCost` in Q1). The
//! output-space look-ahead additionally needs *interval* evaluation: given
//! the per-dimension bounds of an input partition pair, a sound enclosure of
//! all values `f_j` can produce for tuples inside those partitions — that is
//! how partition pairs become output regions without touching tuples.

use progxe_skyline::Preference;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::fdom::{DominanceModel, QueryDominance};

/// One mapping function `f_j : Dom(R-attrs) × Dom(T-attrs) → ℝ`.
pub trait MappingFunction: Send + Sync {
    /// Evaluates the function on one joined tuple pair.
    fn eval(&self, r: &[f64], t: &[f64]) -> f64;

    /// Sound enclosure of `eval` over the boxes `[r_lo, r_hi] × [t_lo, t_hi]`:
    /// every tuple pair inside the boxes must map into the returned interval.
    fn eval_bounds(&self, r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]) -> (f64, f64);

    /// Optional separable decomposition for push-through pruning: a score
    /// `g_R(r)` such that `eval(r, t)` is *non-decreasing* in `g_R(r)` for
    /// every fixed `t`. Returning `None` disables push-through for queries
    /// using this function (the pruning would be unsound).
    fn r_component(&self, _r: &[f64]) -> Option<f64> {
        None
    }

    /// Mirror of [`MappingFunction::r_component`] for the T side.
    fn t_component(&self, _t: &[f64]) -> Option<f64> {
        None
    }

    /// Human-readable description for plan explain output.
    fn describe(&self) -> String {
        "<map>".to_owned()
    }
}

/// A linear combination `Σ αᵢ·r[i] + Σ βᵢ·t[i] + c` — the workhorse map.
///
/// Q1's `tCost` is `WeightedSum` with α = (1, 0, …), β = (1, 0, …); its
/// `delay` uses α = (2, …). Interval evaluation is exact: each term takes
/// the box corner matching its coefficient sign.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSum {
    r_weights: Vec<f64>,
    t_weights: Vec<f64>,
    constant: f64,
}

impl WeightedSum {
    /// Creates a weighted sum over the given per-source weights.
    pub fn new(r_weights: Vec<f64>, t_weights: Vec<f64>) -> Self {
        Self {
            r_weights,
            t_weights,
            constant: 0.0,
        }
    }

    /// Adds a constant offset.
    pub fn with_constant(mut self, c: f64) -> Self {
        self.constant = c;
        self
    }

    /// `r[dim] + t[dim]` over `dims`-attribute sources — the paper's
    /// experimental mapping ("an addition operation between the attribute
    /// values of the corresponding dimensions", Section VI-A).
    pub fn dimension_sum(dims: usize, dim: usize) -> Self {
        let mut r = vec![0.0; dims];
        let mut t = vec![0.0; dims];
        r[dim] = 1.0;
        t[dim] = 1.0;
        Self::new(r, t)
    }

    fn side_bounds(weights: &[f64], lo: &[f64], hi: &[f64]) -> (f64, f64) {
        let mut min = 0.0;
        let mut max = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if w >= 0.0 {
                min += w * lo[i];
                max += w * hi[i];
            } else {
                min += w * hi[i];
                max += w * lo[i];
            }
        }
        (min, max)
    }
}

impl MappingFunction for WeightedSum {
    #[inline]
    fn eval(&self, r: &[f64], t: &[f64]) -> f64 {
        debug_assert_eq!(r.len(), self.r_weights.len());
        debug_assert_eq!(t.len(), self.t_weights.len());
        let mut acc = self.constant;
        for (i, &w) in self.r_weights.iter().enumerate() {
            acc += w * r[i];
        }
        for (i, &w) in self.t_weights.iter().enumerate() {
            acc += w * t[i];
        }
        acc
    }

    fn eval_bounds(&self, r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]) -> (f64, f64) {
        let (rmin, rmax) = Self::side_bounds(&self.r_weights, r_lo, r_hi);
        let (tmin, tmax) = Self::side_bounds(&self.t_weights, t_lo, t_hi);
        (rmin + tmin + self.constant, rmax + tmax + self.constant)
    }

    fn r_component(&self, r: &[f64]) -> Option<f64> {
        // eval = g_R + g_T + c is non-decreasing in g_R.
        Some(
            self.r_weights
                .iter()
                .zip(r)
                .map(|(w, v)| w * v)
                .sum::<f64>(),
        )
    }

    fn t_component(&self, t: &[f64]) -> Option<f64> {
        Some(
            self.t_weights
                .iter()
                .zip(t)
                .map(|(w, v)| w * v)
                .sum::<f64>(),
        )
    }

    fn describe(&self) -> String {
        format!(
            "sum(r·{:?} + t·{:?} + {})",
            self.r_weights, self.t_weights, self.constant
        )
    }
}

/// A user-defined map: arbitrary closure plus a caller-supplied sound bounds
/// closure. Use this for non-linear combinations (e.g. `max`, products of
/// positive attributes); the caller is responsible for enclosure soundness.
pub struct GeneralMap {
    eval: EvalFn,
    bounds: BoundsFn,
    label: String,
}

/// Boxed point-evaluation closure of a [`GeneralMap`].
type EvalFn = Box<dyn Fn(&[f64], &[f64]) -> f64 + Send + Sync>;
/// Boxed interval-enclosure closure of a [`GeneralMap`].
type BoundsFn = Box<dyn Fn(&[f64], &[f64], &[f64], &[f64]) -> (f64, f64) + Send + Sync>;

impl GeneralMap {
    /// Wraps an evaluation closure and its interval enclosure.
    pub fn new<E, B>(label: impl Into<String>, eval: E, bounds: B) -> Self
    where
        E: Fn(&[f64], &[f64]) -> f64 + Send + Sync + 'static,
        B: Fn(&[f64], &[f64], &[f64], &[f64]) -> (f64, f64) + Send + Sync + 'static,
    {
        Self {
            eval: Box::new(eval),
            bounds: Box::new(bounds),
            label: label.into(),
        }
    }

    /// `max(r[r_dim], t[t_dim])` with exact interval bounds — monotone, so
    /// the enclosure is the pairwise max of the corners.
    pub fn max_of(r_dim: usize, t_dim: usize) -> Self {
        Self::new(
            format!("max(r[{r_dim}], t[{t_dim}])"),
            move |r: &[f64], t: &[f64]| r[r_dim].max(t[t_dim]),
            move |r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]| {
                (r_lo[r_dim].max(t_lo[t_dim]), r_hi[r_dim].max(t_hi[t_dim]))
            },
        )
    }
}

impl MappingFunction for GeneralMap {
    fn eval(&self, r: &[f64], t: &[f64]) -> f64 {
        (self.eval)(r, t)
    }

    fn eval_bounds(&self, r_lo: &[f64], r_hi: &[f64], t_lo: &[f64], t_hi: &[f64]) -> (f64, f64) {
        (self.bounds)(r_lo, r_hi, t_lo, t_hi)
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// The full Map operator: `k` functions plus the preference over their
/// outputs. The preference dimensionality must equal the function count.
///
/// Functions are stored behind [`Arc`], so cloning a `MapSet` is cheap
/// (reference-count bumps) — this is what lets the parallel runtime ship
/// the mapping functions to worker threads as `Send + 'static` work units
/// without re-planning the query.
#[derive(Clone)]
pub struct MapSet {
    maps: Vec<Arc<dyn MappingFunction>>,
    pref: Preference,
    /// Dominance relation over the mapped output: Pareto (default) or a
    /// flexible F-dominance weight family. Travels with the query through
    /// every engine and layer.
    dominance: DominanceModel,
}

impl MapSet {
    /// Bundles mapping functions with the output preference (classical
    /// Pareto dominance).
    pub fn new(maps: Vec<Box<dyn MappingFunction>>, pref: Preference) -> Result<Self> {
        if maps.is_empty() || maps.len() != pref.dims() {
            return Err(Error::PreferenceArity {
                maps: maps.len(),
                preference: pref.dims(),
            });
        }
        Ok(Self {
            maps: maps.into_iter().map(Arc::from).collect(),
            pref,
            dominance: DominanceModel::Pareto,
        })
    }

    /// Replaces the dominance relation (flexible-skyline queries). The
    /// model's weight dimensionality must equal the output dimensionality;
    /// degenerate families were already rejected when the model was built.
    pub fn with_dominance(mut self, dominance: DominanceModel) -> Result<Self> {
        dominance
            .check_dims(self.out_dims())
            .map_err(Error::Dominance)?;
        self.dominance = dominance;
        Ok(self)
    }

    /// The dominance relation of this query (Pareto unless configured).
    #[inline]
    pub fn dominance(&self) -> &DominanceModel {
        &self.dominance
    }

    /// Raw-orientation dominance test between two mapped result rows,
    /// under this query's model — the single entry point the baselines and
    /// the test oracles use.
    #[inline]
    pub fn result_dominates(&self, a: &[f64], b: &[f64]) -> bool {
        use progxe_skyline::Dominance as _;
        self.dominance_view().dominates(a, b)
    }

    /// A raw-orientation [`progxe_skyline::Dominance`] view over this
    /// query's orders + model, for the skyline crate's model-generic
    /// algorithms.
    #[inline]
    pub fn dominance_view(&self) -> QueryDominance<'_> {
        QueryDominance::new(self.pref.orders(), &self.dominance)
    }

    /// The paper's experimental mapping: output dimension `j` is
    /// `r[j] + t[j]`, for `dims` dimensions.
    pub fn pairwise_sum(dims: usize, pref: Preference) -> Self {
        let maps: Vec<Box<dyn MappingFunction>> = (0..dims)
            .map(|j| Box::new(WeightedSum::dimension_sum(dims, j)) as Box<dyn MappingFunction>)
            .collect();
        Self::new(maps, pref).expect("pairwise_sum arity is consistent by construction")
    }

    /// Number of output dimensions (`k` in the paper).
    #[inline]
    pub fn out_dims(&self) -> usize {
        self.maps.len()
    }

    /// The output preference.
    #[inline]
    pub fn preference(&self) -> &Preference {
        &self.pref
    }

    /// The individual mapping functions.
    #[inline]
    pub fn maps(&self) -> &[Arc<dyn MappingFunction>] {
        &self.maps
    }

    /// Maps one joined pair into `out` (cleared first).
    #[inline]
    pub fn eval_into(&self, r: &[f64], t: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for m in &self.maps {
            out.push(m.eval(r, t));
        }
    }

    /// Maps a partition-pair box into per-output-dimension intervals,
    /// written into `lo`/`hi` (cleared first).
    pub fn eval_bounds_into(
        &self,
        r_lo: &[f64],
        r_hi: &[f64],
        t_lo: &[f64],
        t_hi: &[f64],
        lo: &mut Vec<f64>,
        hi: &mut Vec<f64>,
    ) {
        lo.clear();
        hi.clear();
        for m in &self.maps {
            let (a, b) = m.eval_bounds(r_lo, r_hi, t_lo, t_hi);
            debug_assert!(a <= b, "map {} produced inverted bounds", m.describe());
            lo.push(a);
            hi.push(b);
        }
    }

    /// Per-source separable scores for push-through, or `None` when any map
    /// is not separable. Returns `(g_R(r) per dim)` evaluator outputs.
    pub fn r_components(&self, r: &[f64], out: &mut Vec<f64>) -> bool {
        out.clear();
        for m in &self.maps {
            match m.r_component(r) {
                Some(v) => out.push(v),
                None => return false,
            }
        }
        true
    }

    /// Mirror of [`MapSet::r_components`] for the T side.
    pub fn t_components(&self, t: &[f64], out: &mut Vec<f64>) -> bool {
        out.clear();
        for m in &self.maps {
            match m.t_component(t) {
                Some(v) => out.push(v),
                None => return false,
            }
        }
        true
    }
}

impl std::fmt::Debug for MapSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapSet")
            .field(
                "maps",
                &self.maps.iter().map(|m| m.describe()).collect::<Vec<_>>(),
            )
            .field("pref", &self.pref)
            .field("dominance", &self.dominance)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progxe_skyline::Order;

    #[test]
    fn weighted_sum_evaluates_q1_style() {
        // delay = 2·r.manTime + t.shipTime
        let f = WeightedSum::new(vec![0.0, 2.0], vec![0.0, 1.0]);
        assert_eq!(f.eval(&[9.0, 3.0], &[9.0, 4.0]), 10.0);
    }

    #[test]
    fn weighted_sum_bounds_are_tight_for_positive_weights() {
        let f = WeightedSum::dimension_sum(2, 0);
        let (lo, hi) = f.eval_bounds(&[0.0, 4.0], &[1.0, 5.0], &[3.0, 1.0], &[4.0, 2.0]);
        // Example 1 of the paper: R1 bounds [(0,4),(1,5)], T2 [(3,1),(4,2)]
        // → tCost region [3, 5]..? dimension 0 sum: [0+3, 1+4] = [3, 5].
        assert_eq!((lo, hi), (3.0, 5.0));
    }

    #[test]
    fn weighted_sum_bounds_handle_negative_weights() {
        let f = WeightedSum::new(vec![-1.0], vec![0.0]);
        let (lo, hi) = f.eval_bounds(&[2.0], &[5.0], &[0.0], &[0.0]);
        assert_eq!((lo, hi), (-5.0, -2.0));
    }

    #[test]
    fn bounds_enclose_samples() {
        let f = WeightedSum::new(vec![1.5, -0.5], vec![2.0]).with_constant(1.0);
        let (r_lo, r_hi) = ([1.0, 2.0], [3.0, 4.0]);
        let (t_lo, t_hi) = ([0.5], [0.9]);
        let (lo, hi) = f.eval_bounds(&r_lo, &r_hi, &t_lo, &t_hi);
        for ra in [1.0, 2.0, 3.0] {
            for rb in [2.0, 3.0, 4.0] {
                for tv in [0.5, 0.7, 0.9] {
                    let v = f.eval(&[ra, rb], &[tv]);
                    assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
                }
            }
        }
    }

    #[test]
    fn components_are_separable_for_sums() {
        let f = WeightedSum::dimension_sum(2, 1);
        assert_eq!(f.r_component(&[3.0, 5.0]), Some(5.0));
        assert_eq!(f.t_component(&[2.0, 7.0]), Some(7.0));
    }

    #[test]
    fn general_map_max() {
        let f = GeneralMap::max_of(0, 0);
        assert_eq!(f.eval(&[3.0], &[5.0]), 5.0);
        let (lo, hi) = f.eval_bounds(&[1.0], &[2.0], &[3.0], &[4.0]);
        assert_eq!((lo, hi), (3.0, 4.0));
        assert!(
            f.r_component(&[1.0]).is_none(),
            "max is not separable by default"
        );
    }

    #[test]
    fn mapset_pairwise_sum_evaluates_all_dims() {
        let ms = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let mut out = Vec::new();
        ms.eval_into(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0], &mut out);
        assert_eq!(out, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn mapset_defaults_to_pareto_and_accepts_a_flexible_model() {
        use crate::fdom::{DominanceModel, FDominance};
        let ms = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        assert!(ms.dominance().is_pareto());
        assert!(ms.result_dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!ms.result_dominates(&[1.0, 3.0], &[2.0, 2.0]));

        let model = DominanceModel::flexible(FDominance::simplex(2).unwrap());
        let ms = ms.with_dominance(model).unwrap();
        assert!(!ms.dominance().is_pareto());
        // Unconstrained simplex ≡ Pareto.
        assert!(ms.result_dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!ms.result_dominates(&[1.0, 3.0], &[2.0, 2.0]));
    }

    #[test]
    fn mapset_rejects_mismatched_dominance_dims() {
        use crate::fdom::{DominanceModel, FDominance};
        let ms = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let model = DominanceModel::flexible(FDominance::simplex(3).unwrap());
        assert!(matches!(
            ms.with_dominance(model),
            Err(crate::error::Error::Dominance(_))
        ));
    }

    #[test]
    fn mapset_rejects_arity_mismatch() {
        let maps: Vec<Box<dyn MappingFunction>> = vec![Box::new(WeightedSum::dimension_sum(2, 0))];
        assert!(MapSet::new(maps, Preference::all_lowest(2)).is_err());
    }

    #[test]
    fn mapset_component_extraction() {
        let ms = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut buf = Vec::new();
        assert!(ms.r_components(&[1.0, 2.0], &mut buf));
        assert_eq!(buf, vec![1.0, 2.0]);
        assert!(ms.t_components(&[5.0, 6.0], &mut buf));
        assert_eq!(buf, vec![5.0, 6.0]);
    }

    #[test]
    fn mapset_with_non_separable_map_reports_false() {
        let maps: Vec<Box<dyn MappingFunction>> = vec![
            Box::new(WeightedSum::dimension_sum(1, 0)),
            Box::new(GeneralMap::max_of(0, 0)),
        ];
        let ms = MapSet::new(maps, Preference::new(vec![Order::Lowest, Order::Lowest])).unwrap();
        let mut buf = Vec::new();
        assert!(!ms.r_components(&[1.0], &mut buf));
    }
}
