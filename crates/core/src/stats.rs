//! Execution statistics and result types.

use progxe_obs::{Histogram, Report, Value};
use std::time::Duration;

/// One final query result: a joined tuple pair with its mapped output
/// attributes (in the caller's original value orientation).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTuple {
    /// Row index of the R-side tuple.
    pub r_idx: u32,
    /// Row index of the T-side tuple.
    pub t_idx: u32,
    /// Mapped output attribute values (`x_1 … x_k`).
    pub values: Vec<f64>,
}

/// A `(time, cumulative results)` sample of progressive output — the series
/// plotted in Figures 10–12 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressRecord {
    /// Time since execution start.
    pub elapsed: Duration,
    /// Total results emitted up to this moment.
    pub cumulative: u64,
}

/// Counters and timings for one executor run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Wall-clock duration of the look-ahead phase (grid build, region
    /// generation, abstraction-level pruning, cell tracking).
    pub lookahead_time: Duration,
    /// Total wall-clock duration of the run.
    pub total_time: Duration,
    /// Accumulated tuple-level compute time (join + map + per-region
    /// dominance work) across all regions. On a parallel run this sums the
    /// *worker* compute durations, so it can exceed wall-clock time.
    pub tuple_time: Duration,
    /// Time the ordered committer spent applying region batches (insertion
    /// into the cell store plus blocker bookkeeping). Zero for regions that
    /// took the streaming path, whose commit work is folded into
    /// [`ExecStats::tuple_time`].
    pub commit_time: Duration,
    /// Worker threads used for the tuple-level phase (1 = sequential).
    pub threads_used: usize,

    /// Tuples pruned from source R by push-through (0 when disabled).
    pub push_through_pruned_r: usize,
    /// Tuples pruned from source T by push-through (0 when disabled).
    pub push_through_pruned_t: usize,
    /// Whether push-through was requested but skipped because a mapping
    /// function is not separable.
    pub push_through_skipped: bool,

    /// Input partitions materialized on R.
    pub partitions_r: usize,
    /// Input partitions materialized on T.
    pub partitions_t: usize,
    /// Partition pairs rejected by join signatures.
    pub pairs_rejected_by_signature: usize,
    /// Candidate regions pruned by region-level dominance.
    pub regions_pruned_lookahead: usize,
    /// Live regions after look-ahead.
    pub regions_created: usize,
    /// Regions discarded during execution because newly generated tuples
    /// dominated their whole box (Algorithm 1, line 9).
    pub regions_discarded_dead: usize,
    /// Regions that went through tuple-level processing.
    pub regions_processed: usize,
    /// Times the ordering fell back because the EL-graph had no root
    /// (cyclic components; see DESIGN.md §5.2).
    pub ordering_fallbacks: usize,

    /// Output cells tracked.
    pub cells_tracked: usize,
    /// Cells pre-marked dead by the pessimistic skyline.
    pub cells_premarked_dead: usize,
    /// Cells whose tuples were emitted.
    pub cells_emitted: usize,

    /// Join-condition evaluations (Σ n_R·n_T over processed regions).
    pub join_pairs_evaluated: u64,
    /// Join results produced (and mapped).
    pub join_matches: u64,
    /// Pairwise dominance tests at tuple level.
    pub dominance_tests: u64,
    /// Subset of [`ExecStats::dominance_tests`] executed through the
    /// batched columnar kernels ([`progxe_skyline::kernel`]) rather than
    /// one-at-a-time scalar calls. Early-exit probes charge whole chunks,
    /// so this counts work done, not logical comparisons.
    pub dominance_pairs: u64,
    /// Vertex dot products evaluated for flexible (F-dominance) models:
    /// batch projections into vertex space plus emission-filter projection
    /// work. Always 0 under the Pareto model.
    pub fdom_vertex_evals: u64,
    /// Tuples admitted into cells.
    pub tuples_inserted: u64,
    /// Tuples rejected: dominated by a live tuple.
    pub tuples_rejected_dominated: u64,
    /// Tuples rejected: landed in a dead cell (no comparisons needed).
    pub tuples_rejected_dead_cell: u64,
    /// Admitted tuples later evicted by dominating arrivals.
    pub tuples_evicted: u64,
    /// Tuples dropped by the bounded local skyline pre-filter before ever
    /// reaching the cell store (batch path only: pool workers always, the
    /// `Inline` backend when the region's join-pair bound is at or above
    /// [`ProgXeConfig::prefilter_min_pairs`](crate::config::ProgXeConfig)).
    pub tuples_prefiltered: u64,
    /// Populated comparable cells examined across insertions (Section
    /// III-B's `k^d − (k−1)^d` bound, measured).
    pub comparable_cells_visited: u64,
    /// Largest comparable-cell set examined by one insertion.
    pub comparable_cells_max: u64,
    /// Pareto-optimal tuples removed at emission by the flexible-dominance
    /// filter (always 0 under the default Pareto model) — the measured
    /// result-set shrinkage of an F-skyline query.
    pub tuples_fdom_filtered: u64,

    /// Rows accepted through streaming ingestion (both sources; 0 for
    /// batch runs, whose inputs are materialized before `prepare`).
    pub tuples_ingested: u64,
    /// Regions whose input cells were sealed by watermarks or source close
    /// during streaming ingestion, unlocking them for the readiness-gated
    /// schedule (0 for batch runs — every region is born ready).
    pub regions_unlocked: usize,

    /// Results emitted (equals the final skyline size on a full run; may be
    /// smaller when the run was cancelled).
    pub results_emitted: u64,

    /// Tuples emitted in tentative (`proven_final = false`) batches that
    /// the final result later disowned — SSMJ's batch-1 false positives.
    /// Always 0 for engines whose every batch is proven final.
    pub results_retracted: u64,

    /// True when execution stopped early — the session was cancelled or a
    /// `take(k)` consumer detached before every region was resolved.
    pub cancelled: bool,
    /// Regions left unresolved by an early stop (0 on a full run).
    pub regions_skipped: usize,

    /// Per-region tuple-level latency (join + map + dominance per region).
    pub region_latency: Histogram,
    /// Ordered-commit latency per committed batch (batch path only).
    pub commit_latency: Histogram,
    /// Inter-arrival time between accepted ingest batches (streaming runs
    /// only; empty for batch runs).
    pub batch_interarrival: Histogram,
}

impl ExecStats {
    /// Fraction of partition pairs eliminated before tuple-level work.
    pub fn signature_rejection_rate(&self) -> f64 {
        let total =
            self.pairs_rejected_by_signature + self.regions_created + self.regions_pruned_lookahead;
        if total == 0 {
            0.0
        } else {
            self.pairs_rejected_by_signature as f64 / total as f64
        }
    }

    /// Join matches that survived into the final result.
    pub fn result_selectivity(&self) -> f64 {
        if self.join_matches == 0 {
            0.0
        } else {
            self.results_emitted as f64 / self.join_matches as f64
        }
    }

    /// The stats as a structured [`Report`] — the exportable view over the
    /// same counters this struct has always carried. `report().to_json()`
    /// is the machine encoding; the report's `Display` is the multi-line
    /// human one (the one-line `Display` on `ExecStats` itself is
    /// unchanged). Empty histograms and zero-valued streaming counters are
    /// skipped so batch runs export no streaming noise.
    pub fn report(&self) -> Report {
        let mut r = Report::new("exec stats");
        r.push("results_emitted", Value::U64(self.results_emitted))
            .push("total_ms", Value::DurationMs(self.total_time))
            .push("lookahead_ms", Value::DurationMs(self.lookahead_time))
            .push("tuple_ms", Value::DurationMs(self.tuple_time))
            .push("commit_ms", Value::DurationMs(self.commit_time))
            .push("threads_used", Value::U64(self.threads_used.max(1) as u64))
            .push("regions_created", Value::U64(self.regions_created as u64))
            .push(
                "regions_processed",
                Value::U64(self.regions_processed as u64),
            )
            .push(
                "regions_discarded_dead",
                Value::U64(self.regions_discarded_dead as u64),
            )
            .push("cells_tracked", Value::U64(self.cells_tracked as u64))
            .push("cells_emitted", Value::U64(self.cells_emitted as u64))
            .push(
                "join_pairs_evaluated",
                Value::U64(self.join_pairs_evaluated),
            )
            .push("join_matches", Value::U64(self.join_matches))
            .push("dominance_tests", Value::U64(self.dominance_tests))
            .push("cancelled", Value::Bool(self.cancelled));
        if self.dominance_pairs > 0 {
            r.push("dominance_pairs", Value::U64(self.dominance_pairs));
        }
        if self.fdom_vertex_evals > 0 {
            r.push("fdom_vertex_evals", Value::U64(self.fdom_vertex_evals));
        }
        if self.tuples_ingested > 0 || self.regions_unlocked > 0 {
            r.push("tuples_ingested", Value::U64(self.tuples_ingested))
                .push("regions_unlocked", Value::U64(self.regions_unlocked as u64));
        }
        if !self.region_latency.is_empty() {
            r.push("region_latency", Value::hist(self.region_latency.clone()));
        }
        if !self.commit_latency.is_empty() {
            r.push("commit_latency", Value::hist(self.commit_latency.clone()));
        }
        if !self.batch_interarrival.is_empty() {
            r.push(
                "batch_interarrival",
                Value::hist(self.batch_interarrival.clone()),
            );
        }
        r
    }
}

impl std::fmt::Display for ExecStats {
    /// One-line human summary, used by the examples and the bench report.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} results in {:.1?} ({}/{} regions processed, {} discarded dead, \
             {} join matches, {} dominance tests, {} thread{})",
            self.results_emitted,
            self.total_time,
            self.regions_processed,
            self.regions_created,
            self.regions_discarded_dead,
            self.join_matches,
            self.dominance_tests,
            self.threads_used.max(1),
            if self.threads_used > 1 { "s" } else { "" },
        )?;
        if self.dominance_pairs > 0 {
            write!(f, " [{} kernel pairs", self.dominance_pairs)?;
            if self.fdom_vertex_evals > 0 {
                write!(f, ", {} vertex evals", self.fdom_vertex_evals)?;
            }
            write!(f, "]")?;
        }
        if self.tuples_ingested > 0 || self.regions_unlocked > 0 {
            write!(
                f,
                " [{} tuples ingested, {} regions unlocked]",
                self.tuples_ingested, self.regions_unlocked
            )?;
        }
        if self.cancelled {
            write!(f, " [cancelled, {} regions skipped]", self.regions_skipped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = ExecStats::default();
        assert_eq!(s.signature_rejection_rate(), 0.0);
        assert_eq!(s.result_selectivity(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = ExecStats {
            pairs_rejected_by_signature: 30,
            regions_created: 60,
            regions_pruned_lookahead: 10,
            join_matches: 200,
            results_emitted: 50,
            ..ExecStats::default()
        };
        assert!((s.signature_rejection_rate() - 0.3).abs() < 1e-12);
        assert!((s.result_selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_one_line_and_mentions_cancellation() {
        let mut s = ExecStats {
            results_emitted: 42,
            regions_processed: 7,
            regions_created: 9,
            threads_used: 4,
            ..ExecStats::default()
        };
        let line = s.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("42 results"));
        assert!(line.contains("4 threads"));
        assert!(!line.contains("cancelled"));
        s.cancelled = true;
        s.regions_skipped = 2;
        assert!(s.to_string().contains("[cancelled, 2 regions skipped]"));
    }

    #[test]
    fn display_includes_ingest_counters_when_streaming() {
        let mut s = ExecStats {
            results_emitted: 5,
            ..ExecStats::default()
        };
        assert!(
            !s.to_string().contains("ingested"),
            "batch runs stay ingest-silent"
        );
        s.tuples_ingested = 120;
        s.regions_unlocked = 7;
        let line = s.to_string();
        assert!(!line.contains('\n'));
        assert!(
            line.contains("[120 tuples ingested, 7 regions unlocked]"),
            "{line}"
        );
        // The ingest note precedes a cancellation note.
        s.cancelled = true;
        let line = s.to_string();
        let ingest_at = line.find("tuples ingested").unwrap();
        let cancel_at = line.find("cancelled").unwrap();
        assert!(ingest_at < cancel_at, "{line}");
    }

    #[test]
    fn display_and_report_surface_kernel_counters_when_nonzero() {
        let mut s = ExecStats {
            results_emitted: 1,
            dominance_tests: 10,
            ..ExecStats::default()
        };
        assert!(!s.to_string().contains("kernel pairs"));
        assert!(!s.report().to_json().contains("dominance_pairs"));
        s.dominance_pairs = 8;
        let line = s.to_string();
        assert!(line.contains("[8 kernel pairs]"), "{line}");
        assert!(!line.contains("vertex evals"), "{line}");
        s.fdom_vertex_evals = 24;
        let line = s.to_string();
        assert!(line.contains("[8 kernel pairs, 24 vertex evals]"), "{line}");
        let json = s.report().to_json();
        assert!(json.contains("\"dominance_pairs\": 8"), "{json}");
        assert!(json.contains("\"fdom_vertex_evals\": 24"), "{json}");
    }

    #[test]
    fn report_view_skips_empty_sections() {
        let mut s = ExecStats {
            results_emitted: 9,
            threads_used: 2,
            ..ExecStats::default()
        };
        let json = s.report().to_json();
        assert!(json.contains("\"results_emitted\": 9"), "{json}");
        assert!(!json.contains("region_latency"), "{json}");
        assert!(!json.contains("tuples_ingested"), "{json}");
        s.region_latency.record_us(100);
        s.tuples_ingested = 3;
        let json = s.report().to_json();
        assert!(json.contains("\"region_latency\": {\"count\":1"), "{json}");
        assert!(json.contains("\"tuples_ingested\": 3"), "{json}");
    }
}
