//! The elimination graph (EL-Graph) of Section IV-B.
//!
//! Nodes are live output regions. A directed edge `A → B` exists iff some
//! output cell of `A`'s box fully dominates some cell of `B`'s box — i.e.
//! tuple-level processing of `A` could (partially or completely) eliminate
//! `B`. Geometrically: `A.cell_lo[i] + 1 ≤ B.cell_hi[i]` in every dimension
//! (the witness pair being `A`'s best cell clipped against `B`'s worst).
//!
//! Roots (no incoming edges) "can neither be completely nor partially
//! eliminated by other regions and therefore have a higher probability of
//! reporting results early" — they are the candidates ProgOrder ranks.
//!
//! Note (DESIGN.md §5.2): overlapping boxes produce *mutual* edges, so the
//! graph may be cyclic and can momentarily have no root at all; the
//! executor then falls back to the best-ranked pending region. The paper
//! does not discuss this case; correctness is unaffected because soundness
//! comes from ProgDetermine, not from the ordering.

use crate::lookahead::Region;

/// Adjacency-list elimination graph with incremental root tracking.
#[derive(Debug)]
pub struct ElGraph {
    out_edges: Vec<Vec<u32>>,
    in_degree: Vec<u32>,
    resolved: Vec<bool>,
    unresolved: usize,
}

impl ElGraph {
    /// Builds the graph over all live regions (`O(n²)` pairs, as in the
    /// paper's complexity analysis).
    pub fn build(regions: &[Region], dims: usize) -> Self {
        let n = regions.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_degree = vec![0u32; n];
        for a in regions {
            for b in regions {
                if a.id == b.id {
                    continue;
                }
                #[allow(clippy::int_plus_one)] // mirrors the full-dominance witness
                let eliminates = (0..dims).all(|i| a.cell_lo[i] + 1 <= b.cell_hi[i]);
                if eliminates {
                    out_edges[a.id as usize].push(b.id);
                    in_degree[b.id as usize] += 1;
                }
            }
        }
        Self {
            out_edges,
            in_degree,
            resolved: vec![false; n],
            unresolved: n,
        }
    }

    /// Regions with no incoming edge (initial queue seeds).
    pub fn roots(&self) -> Vec<u32> {
        self.in_degree
            .iter()
            .enumerate()
            .filter(|&(i, &d)| d == 0 && !self.resolved[i])
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Whether a region currently has no incoming edges.
    #[inline]
    pub fn is_root(&self, region: u32) -> bool {
        self.in_degree[region as usize] == 0
    }

    /// Whether a region has been resolved.
    #[inline]
    pub fn is_resolved(&self, region: u32) -> bool {
        self.resolved[region as usize]
    }

    /// Number of regions not yet resolved.
    #[inline]
    pub fn unresolved(&self) -> usize {
        self.unresolved
    }

    /// Resolves a region (processed or discarded), removing its outgoing
    /// edges. Returns `(new_roots, affected)`: regions that just became
    /// roots, and regions that lost an incoming edge but remain non-root
    /// (their benefit should be refreshed — Algorithm 1 lines 10–18).
    pub fn resolve(&mut self, region: u32) -> (Vec<u32>, Vec<u32>) {
        let idx = region as usize;
        assert!(!self.resolved[idx], "region {region} resolved twice");
        self.resolved[idx] = true;
        self.unresolved -= 1;
        let mut new_roots = Vec::new();
        let mut affected = Vec::new();
        let targets = std::mem::take(&mut self.out_edges[idx]);
        for b in targets {
            let bi = b as usize;
            if self.resolved[bi] {
                continue;
            }
            debug_assert!(self.in_degree[bi] > 0);
            self.in_degree[bi] -= 1;
            if self.in_degree[bi] == 0 {
                new_roots.push(b);
            } else {
                affected.push(b);
            }
        }
        (new_roots, affected)
    }

    /// All unresolved region ids (fallback path for cyclic components).
    pub fn pending(&self) -> Vec<u32> {
        self.resolved
            .iter()
            .enumerate()
            .filter(|&(_, &r)| !r)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_grid::{Coord, MAX_DIMS};

    fn coord(x: u16, y: u16) -> Coord {
        let mut c: Coord = [0; MAX_DIMS];
        c[0] = x;
        c[1] = y;
        c
    }

    fn region(id: u32, lo: (u16, u16), hi: (u16, u16)) -> Region {
        Region {
            id,
            r_part: 0,
            t_part: 0,
            lo: vec![0.0, 0.0],
            hi: vec![1.0, 1.0],
            cell_lo: coord(lo.0, lo.1),
            cell_hi: coord(hi.0, hi.1),
            n_r: 1,
            n_t: 1,
            guaranteed: true,
        }
    }

    #[test]
    fn chain_of_eliminations() {
        // A (0,0)-(0,0) eliminates B (2,2)-(3,3) eliminates C (5,5)-(6,6).
        let regions = vec![
            region(0, (0, 0), (0, 0)),
            region(1, (2, 2), (3, 3)),
            region(2, (5, 5), (6, 6)),
        ];
        let g = ElGraph::build(&regions, 2);
        assert_eq!(g.roots(), vec![0]);
        assert!(!g.is_root(1));
        assert!(!g.is_root(2));
    }

    #[test]
    fn resolve_promotes_new_roots() {
        let regions = vec![
            region(0, (0, 0), (0, 0)),
            region(1, (2, 2), (3, 3)),
            region(2, (5, 5), (6, 6)),
        ];
        let mut g = ElGraph::build(&regions, 2);
        let (new_roots, affected) = g.resolve(0);
        assert_eq!(new_roots, vec![1]);
        // C lost A's edge but still has B's: affected, not root.
        assert_eq!(affected, vec![2]);
        let (new_roots, _) = g.resolve(1);
        assert_eq!(new_roots, vec![2]);
        assert_eq!(g.unresolved(), 1);
    }

    #[test]
    fn mutual_partial_elimination_creates_cycle() {
        // Two overlapping diagonal boxes eliminate parts of each other.
        let regions = vec![region(0, (0, 0), (5, 5)), region(1, (1, 1), (6, 6))];
        let g = ElGraph::build(&regions, 2);
        assert!(g.roots().is_empty(), "cycle ⇒ no roots");
        assert_eq!(g.pending(), vec![0, 1]);
    }

    #[test]
    fn incomparable_regions_have_no_edges() {
        // Anti-diagonal boxes: A is up-left of B — neither can place a
        // cell fully dominating the other's box.
        let regions = vec![region(0, (0, 8), (1, 9)), region(1, (8, 0), (9, 1))];
        let g = ElGraph::build(&regions, 2);
        let mut roots = g.roots();
        roots.sort_unstable();
        assert_eq!(roots, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_resolve_panics() {
        let regions = vec![region(0, (0, 0), (0, 0))];
        let mut g = ElGraph::build(&regions, 2);
        g.resolve(0);
        g.resolve(0);
    }

    #[test]
    fn edge_requires_full_dominance_witness() {
        // A at (0,0)-(0,9): its best cell (0,0) vs B (0,0)-(9,0): B's worst
        // cell (9,0) — dim 1: 0+1 ≤ 0 fails ⇒ no edge either way.
        let regions = vec![region(0, (0, 0), (0, 9)), region(1, (0, 0), (9, 0))];
        let g = ElGraph::build(&regions, 2);
        assert_eq!(g.roots().len(), 2);
    }
}
