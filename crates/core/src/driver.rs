//! The unified region driver: one schedule-pop → tuple-level phase →
//! ordered-commit loop for every execution backend.
//!
//! Before this module existed the repo implemented the ProgXe region loop
//! twice — a sequential loop inside `executor.rs` and a parallel one in the
//! `progxe-runtime` crate — with divergent hot paths. [`RegionDriver`]
//! collapses them: the loop lives here exactly once, parameterized by an
//! [`ExecutorBackend`]:
//!
//! * [`ExecutorBackend::Inline`] — `threads = 1`. Regions are computed on
//!   the calling thread, one per step. Large regions (join-pair bound at or
//!   above [`ProgXeConfig::prefilter_min_pairs`](crate::config::ProgXeConfig))
//!   go through [`RegionCtx::compute`] and therefore inherit the
//!   worker-side bounded local skyline pre-filter; small regions stream
//!   their matches straight into the cell store, skipping the batch
//!   materialization.
//! * [`ExecutorBackend::Pooled`] — `threads > 1`. Regions are fanned out as
//!   pure work units through a [`TaskSpawner`] (the `progxe-runtime` crate
//!   implements it for its shared thread pool) into a bounded dispatch
//!   window, and batches are committed **strictly in pop order** via a
//!   reorder buffer — the discipline that keeps parallel emission
//!   deterministic regardless of worker interleaving.
//!
//! ```text
//!             ┌─ Inline:  compute on this thread ──────────────┐
//! schedule ───┤                                                ├─▶ ordered
//!             └─ Pooled:  spawner ─▶ workers ─▶ reorder buffer ─┘   commit
//! ```
//!
//! Both backends share [`Committer`] — the single-threaded owner of the
//! cell store, the region schedule, and Algorithm 2's blocker bookkeeping.
//! All emission decisions flow through it in schedule order, which is what
//! keeps progressive output safe (no false positives or negatives) no
//! matter who computed the batches.

use crate::benefit;
use crate::cells::CellStore;
use crate::cost::CostModel;
use crate::elgraph::ElGraph;
use crate::executor::Prepared;
use crate::lookahead::Region;
use crate::progdetermine::{EmittedCell, ProgDetermine};
use crate::progorder::ProgOrderQueue;
use crate::session::{CancellationToken, ResultEvent, SessionStep};
use crate::stats::{ExecStats, ResultTuple};
use crate::tuple_level::{RegionBatch, RegionCtx};
use progxe_obs::{Point, Span, Trace};
use progxe_skyline::Order;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Cell-visit cap for ProgCount scans on oversized region boxes.
const PROG_COUNT_VISIT_CAP: u64 = 4_096;

/// Immutable context needed to (re)rank a region.
struct RankCtx<'c> {
    regions: &'c [Region],
    store: &'c CellStore,
    det: &'c ProgDetermine,
    sigma: f64,
    cost_model: &'c CostModel,
}

/// ProgOrder state: EL-graph, priority queue, and the lazy-rank machinery.
struct OrderedSchedule {
    graph: ElGraph,
    queue: ProgOrderQueue,
    rank_cache: Vec<f64>,
    dirty: Vec<bool>,
    requeue_budget: Vec<u8>,
}

impl OrderedSchedule {
    fn rank_of(&mut self, rid: u32, ctx: &RankCtx<'_>) -> f64 {
        let region = &ctx.regions[rid as usize];
        let b = benefit::benefit(region, ctx.store, ctx.det, ctx.sigma, PROG_COUNT_VISIT_CAP);
        let c = ctx
            .cost_model
            .region_cost(region, ctx.store.grid())
            .max(1.0);
        let rank = b / c;
        self.rank_cache[rid as usize] = rank;
        rank
    }
}

/// Region-ordering policy state, stepped one region at a time.
enum RegionSchedule {
    /// The paper's ProgOrder (Algorithm 1): rank = Benefit / Cost over
    /// EL-Graph roots, with lazy rank refresh.
    Ordered(OrderedSchedule),
    /// A precomputed order (Random or Fifo policies).
    Static { order: Vec<u32>, pos: usize },
}

/// Outcome of one schedule-pop attempt (see [`Committer::pop_gated`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Popped {
    /// The next region to work on, marked dispatched.
    Region(u32),
    /// The schedule's next region exists but its input is not ready yet
    /// (streaming ingestion only): nothing was popped, and the *same*
    /// region will be offered again once its cells seal. Stalling — rather
    /// than skipping to a ready region — is what keeps the commit sequence,
    /// and with it the emission order, independent of the arrival schedule.
    Stalled,
    /// Nothing is dispatchable: all regions are resolved or in flight.
    Exhausted,
}

impl RegionSchedule {
    /// Picks the next region to dispatch. `dispatched` marks regions handed
    /// out but not yet resolved — on an inline run it always equals the
    /// resolved set, but the pooled backend keeps a window of them in
    /// flight. Returns [`Popped::Exhausted`] when nothing is dispatchable
    /// *right now* (either all regions are dispatched/resolved, or —
    /// ProgOrder with a root-free cyclic component — every pending region
    /// is in flight).
    ///
    /// `ready` is the streaming-ingestion readiness gate: when it rejects
    /// the region the schedule would hand out next, the pop *stalls* — the
    /// schedule state is left so the identical region is offered again on
    /// the next call. Order preservation under the gate is what makes
    /// streaming emission bit-identical to the all-at-once run.
    fn next_region(
        &mut self,
        ctx: &RankCtx<'_>,
        stats: &mut ExecStats,
        dispatched: &[bool],
        ready: Option<&dyn Fn(u32) -> bool>,
    ) -> Popped {
        let is_ready = |rid: u32| ready.is_none_or(|f| f(rid));
        match self {
            RegionSchedule::Static { order, pos } => {
                let Some(rid) = order.get(*pos).copied() else {
                    return Popped::Exhausted;
                };
                if !is_ready(rid) {
                    return Popped::Stalled;
                }
                *pos += 1;
                Popped::Region(rid)
            }
            RegionSchedule::Ordered(sched) => {
                if sched.graph.unresolved() == 0 {
                    return Popped::Exhausted;
                }
                loop {
                    match sched.queue.pop_entry() {
                        Some((rid, _))
                            if sched.graph.is_resolved(rid) || dispatched[rid as usize] =>
                        {
                            continue
                        }
                        Some((rid, entry_rank)) => {
                            // Benefit recomputation is the expensive part of
                            // ordering (a box scan per region). To keep the
                            // paper's "ordering overhead is negligible"
                            // property, ranks are refreshed *lazily*:
                            // affected regions are only marked dirty
                            // (Algorithm 1 line 13 in spirit), and the
                            // recompute happens when the region reaches the
                            // top of the queue — with a small re-queue
                            // budget per region so dense elimination graphs
                            // cannot trigger quadratic rescans.
                            let mut rank = entry_rank;
                            if sched.dirty[rid as usize] && sched.requeue_budget[rid as usize] > 0 {
                                sched.dirty[rid as usize] = false;
                                sched.requeue_budget[rid as usize] -= 1;
                                let fresh = sched.rank_of(rid, ctx);
                                if fresh < entry_rank * 0.999 {
                                    // Demoted: let a better region go first.
                                    sched.queue.push(rid, fresh);
                                    continue;
                                }
                                rank = fresh;
                            }
                            if !is_ready(rid) {
                                // Park the winner at its settled rank; the
                                // refresh bookkeeping above already ran, so
                                // re-offering it later is a pure re-pop.
                                sched.queue.update(rid, rank);
                                return Popped::Stalled;
                            }
                            return Popped::Region(rid);
                        }
                        None => {
                            let pending = sched.graph.pending();
                            // An empty queue with regions *in flight* is not
                            // the cyclic-component case — the real EL-roots
                            // are simply uncommitted. Hand out nothing and
                            // let the committer land a batch, which either
                            // pushes new roots or ends the run.
                            if pending.iter().any(|&rid| dispatched[rid as usize]) {
                                return Popped::Exhausted;
                            }
                            // Cyclic component with no root (DESIGN.md §5.2):
                            // pick the best pending region by cached rank —
                            // O(regions), no box scans.
                            let best = pending.into_iter().max_by(|&a, &b| {
                                sched.rank_cache[a as usize]
                                    .total_cmp(&sched.rank_cache[b as usize])
                                    .then_with(|| b.cmp(&a))
                            });
                            let Some(best) = best else {
                                return Popped::Exhausted;
                            };
                            if !is_ready(best) {
                                // The deterministic fallback choice stalls
                                // like any other pop: picking a different
                                // pending region instead would make the
                                // commit order arrival-dependent.
                                return Popped::Stalled;
                            }
                            stats.ordering_fallbacks += 1;
                            return Popped::Region(best);
                        }
                    }
                }
            }
        }
    }

    /// Records a resolution: new EL-graph roots enter the queue, regions
    /// whose benefit may have changed are marked dirty.
    fn on_resolved(&mut self, rid: u32, ctx: &RankCtx<'_>) {
        if let RegionSchedule::Ordered(sched) = self {
            let (new_roots, affected) = sched.graph.resolve(rid);
            for root in new_roots {
                let rank = sched.rank_of(root, ctx);
                sched.queue.push(root, rank);
            }
            for region in affected {
                if sched.queue.contains(region) {
                    sched.dirty[region as usize] = true;
                }
            }
        }
    }
}

/// How emitted `(r, t)` tuple ids map back to the caller's row ids.
///
/// The batch pipeline inserts *filtered-source* row ids into the cell
/// store and translates them through the push-through survivor tables on
/// emission; the streaming-ingestion pipeline inserts caller row ids
/// directly, so no table exists.
#[derive(Debug)]
pub(crate) enum RowIds {
    /// Emitted ids are already the caller's (streaming ingestion).
    Identity,
    /// Translate through filtered→original row tables (batch pipeline).
    Table {
        /// Original R row id per filtered row.
        r: Vec<u32>,
        /// Original T row id per filtered row.
        t: Vec<u32>,
    },
}

impl RowIds {
    #[inline]
    fn map_r(&self, i: u32) -> u32 {
        match self {
            RowIds::Identity => i,
            RowIds::Table { r, .. } => r[i as usize],
        }
    }

    #[inline]
    fn map_t(&self, i: u32) -> u32 {
        match self {
            RowIds::Identity => i,
            RowIds::Table { t, .. } => t[i as usize],
        }
    }
}

/// The single-threaded back half of the region loop: owns the cell store,
/// the region schedule, and Algorithm 2's blocker bookkeeping.
///
/// Every region goes through exactly one of three commit paths — all of
/// which resolve it and may release proven-final cells as a
/// [`ResultEvent`]:
///
/// * [`discard_dead`](Self::discard_dead) — the region box was already
///   fully dominated when it was popped; no tuple work at all;
/// * [`process_and_commit`](Self::process_and_commit) — streaming path
///   (small regions on the inline backend): the join inserts directly into
///   the cell store;
/// * [`commit_batch`](Self::commit_batch) — batch path: apply a
///   [`RegionBatch`], whether a pool worker or the inline backend computed
///   it.
///
/// Drivers **must** commit batches in the order the regions were popped
/// from [`pop_next`](Self::pop_next); combined with the cancellation-token
/// discipline this makes emission deterministic regardless of worker
/// interleaving.
pub struct Committer {
    /// The query's live regions (shared with the compute side's context).
    regions: Arc<[Region]>,
    /// Emitted-id translation (push-through survivor tables, or identity).
    row_ids: RowIds,
    store: CellStore,
    det: ProgDetermine,
    orders: Vec<Order>,
    schedule: RegionSchedule,
    sigma: f64,
    cost_model: CostModel,
    /// Regions handed out by `pop_next` (superset of resolved).
    dispatched: Vec<bool>,
    resolved: usize,
    total_regions: usize,
    emitted_buf: Vec<EmittedCell>,
    started: Instant,
    /// The session's trace handle (disabled unless a recorder was wired in
    /// at prepare time). Commit-side events are recorded here; the driver
    /// and pool workers clone it for their own spans.
    trace: Trace,
}

/// Everything a pipeline front end (the executor's `prepare`, or the
/// streaming-ingestion setup) hands over to build a [`Committer`].
/// Crate-internal: external callers receive the committer ready-made inside
/// [`Prepared`].
pub(crate) struct CommitterParts {
    pub regions: Arc<[Region]>,
    pub out_dims: usize,
    pub row_ids: RowIds,
    pub store: CellStore,
    pub det: ProgDetermine,
    pub orders: Vec<Order>,
    pub sigma: f64,
    pub cost_model: CostModel,
    pub started: Instant,
    pub trace: Trace,
}

impl Committer {
    /// Assembles a committer over prepared pipeline state, building the
    /// region schedule for the configured ordering policy.
    pub(crate) fn new(parts: CommitterParts, ordering: crate::config::OrderingPolicy) -> Self {
        use crate::config::OrderingPolicy;
        let total_regions = parts.regions.len();
        let schedule = match ordering {
            OrderingPolicy::ProgOrder => {
                let mut ordered = OrderedSchedule {
                    graph: ElGraph::build(&parts.regions, parts.out_dims),
                    queue: ProgOrderQueue::new(total_regions),
                    rank_cache: vec![0.0; total_regions],
                    dirty: vec![false; total_regions],
                    requeue_budget: vec![3; total_regions],
                };
                let ctx = RankCtx {
                    regions: &parts.regions,
                    store: &parts.store,
                    det: &parts.det,
                    sigma: parts.sigma,
                    cost_model: &parts.cost_model,
                };
                for root in ordered.graph.roots() {
                    let rank = ordered.rank_of(root, &ctx);
                    ordered.queue.push(root, rank);
                }
                RegionSchedule::Ordered(ordered)
            }
            OrderingPolicy::Random { seed } => {
                let mut order: Vec<u32> = (0..total_regions as u32).collect();
                crate::executor::shuffle(&mut order, seed);
                RegionSchedule::Static { order, pos: 0 }
            }
            OrderingPolicy::Fifo => RegionSchedule::Static {
                order: (0..total_regions as u32).collect(),
                pos: 0,
            },
        };
        Self {
            regions: parts.regions,
            row_ids: parts.row_ids,
            store: parts.store,
            det: parts.det,
            orders: parts.orders,
            schedule,
            sigma: parts.sigma,
            cost_model: parts.cost_model,
            dispatched: vec![false; total_regions],
            resolved: 0,
            total_regions,
            emitted_buf: Vec::new(),
            started: parts.started,
            trace: parts.trace,
        }
    }

    /// The instant the pipeline started (zero point of event timestamps).
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// The session's trace handle (cheap to clone; disabled when no
    /// recorder was attached).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Regions not yet resolved.
    pub fn unresolved(&self) -> usize {
        self.total_regions - self.resolved
    }

    /// Upper bound on the region's join work: `n_R · n_T` of its partition
    /// pair. The inline backend gates the local-skyline pre-filter on this.
    /// Streaming-ingestion regions carry zero counts (sizes are unknowable
    /// before arrival), so they always take the streaming-insert path.
    pub fn pair_bound(&self, rid: u32) -> u64 {
        let region = &self.regions[rid as usize];
        u64::from(region.n_r) * u64::from(region.n_t)
    }

    /// Picks the next region to work on, marking it dispatched. `None`
    /// means nothing is dispatchable right now — which is final on an
    /// inline run, but on a pooled run may become `Some` again after
    /// in-flight regions commit (new EL-graph roots appear).
    pub fn pop_next(&mut self, stats: &mut ExecStats) -> Option<u32> {
        match self.pop_gated(stats, None) {
            Popped::Region(rid) => Some(rid),
            Popped::Stalled | Popped::Exhausted => None,
        }
    }

    /// [`pop_next`](Self::pop_next) with a readiness gate: when `ready`
    /// rejects the region the schedule would hand out, the pop returns
    /// [`Popped::Stalled`] and the schedule is left positioned on that same
    /// region. The streaming-ingestion driver stalls until watermarks or a
    /// source close seal the region's input cells; order preservation under
    /// the gate keeps emission identical to the all-at-once run.
    pub fn pop_gated(
        &mut self,
        stats: &mut ExecStats,
        ready: Option<&dyn Fn(u32) -> bool>,
    ) -> Popped {
        let _span = self.trace.span(Span::RegionPop);
        let ctx = RankCtx {
            regions: &self.regions,
            store: &self.store,
            det: &self.det,
            sigma: self.sigma,
            cost_model: &self.cost_model,
        };
        let popped = self
            .schedule
            .next_region(&ctx, stats, &self.dispatched, ready);
        if let Popped::Region(rid) = popped {
            debug_assert!(!self.dispatched[rid as usize], "region {rid} popped twice");
            self.dispatched[rid as usize] = true;
        }
        if matches!(popped, Popped::Stalled) {
            self.trace.point(Point::Stall);
        }
        popped
    }

    /// Whether the region's whole output box is fully dominated by results
    /// committed so far (Algorithm 1, line 9) — its tuple work can be
    /// skipped entirely.
    pub fn region_box_is_dead(&self, rid: u32) -> bool {
        self.store
            .region_is_dead(&self.regions[rid as usize].cell_lo)
    }

    /// Resolves a dead region without tuple-level work.
    pub fn discard_dead(&mut self, rid: u32, stats: &mut ExecStats) -> Option<ResultEvent> {
        stats.regions_discarded_dead += 1;
        self.resolve(rid, stats)
    }

    /// Streaming path: joins the region through `run` (which inserts
    /// directly into the cell store), then resolves it. Returns `None` when
    /// the token fired mid-region — the insert set is partial, so the
    /// region is left *unresolved* (emitting from it could produce false
    /// positives) and the run counts as cancelled.
    ///
    /// `run` is the compute half supplied by the driver's work source —
    /// the [`RegionCtx`] streaming insert for the batch pipeline, the
    /// sealed-partition join for streaming ingestion — and must report
    /// `(counters, completed)` exactly like
    /// [`crate::tuple_level::process_region`].
    pub fn process_and_commit<F>(
        &mut self,
        rid: u32,
        stats: &mut ExecStats,
        run: F,
    ) -> Option<Option<ResultEvent>>
    where
        F: FnOnce(&mut CellStore) -> (crate::tuple_level::TupleLevelStats, bool),
    {
        let span = self.trace.span(Span::TuplePhase {
            region_id: u64::from(rid),
            pairs: self.pair_bound(rid),
        });
        let compute_started = Instant::now();
        let (tl, completed) = run(&mut self.store);
        let compute_elapsed = compute_started.elapsed();
        span.end();
        stats.tuple_time += compute_elapsed;
        stats.region_latency.record(compute_elapsed);
        stats.join_pairs_evaluated += tl.pairs_examined;
        stats.join_matches += tl.matches;
        if !completed {
            stats.cancelled = true;
            return None;
        }
        stats.regions_processed += 1;
        Some(self.resolve(rid, stats))
    }

    /// Batch path: applies one computed batch. The region box is re-checked
    /// against results committed in the meantime (a region dispatched early
    /// may be dead by the time its batch lands), then the surviving tuples
    /// go through the same cell-restricted dominance insert the streaming
    /// path uses, and the region resolves.
    ///
    /// # Panics
    /// Debug-asserts that the batch completed; committing a partial batch
    /// would break Principle 1.
    pub fn commit_batch(
        &mut self,
        batch: RegionBatch,
        stats: &mut ExecStats,
    ) -> Option<ResultEvent> {
        debug_assert!(batch.completed, "partial batches must not be committed");
        let span = self.trace.span(Span::Commit {
            region_id: u64::from(batch.rid),
        });
        let commit_started = Instant::now();
        stats.region_latency.record(batch.compute_time);
        stats.tuple_time += batch.compute_time;
        stats.join_pairs_evaluated += batch.stats.pairs_examined;
        stats.join_matches += batch.stats.matches;
        stats.dominance_tests += batch.stats.local_dominance_tests;
        // The local pre-filter runs entirely on the batched kernels.
        stats.dominance_pairs += batch.stats.local_dominance_tests;
        stats.fdom_vertex_evals += batch.stats.fdom_vertex_evals;
        stats.tuples_prefiltered += batch.stats.locally_pruned;
        if self.region_box_is_dead(batch.rid) {
            stats.regions_discarded_dead += 1;
        } else {
            stats.regions_processed += 1;
            for (i, &(r, t)) in batch.ids.iter().enumerate() {
                self.store.insert(r, t, batch.points.point(i));
            }
        }
        let event = self.resolve(batch.rid, stats);
        let commit_elapsed = commit_started.elapsed();
        span.end();
        stats.commit_time += commit_elapsed;
        stats.commit_latency.record(commit_elapsed);
        event
    }

    /// Resolves one dispatched region: blocker bookkeeping, schedule
    /// update, and conversion of released cells into a [`ResultEvent`].
    fn resolve(&mut self, rid: u32, stats: &mut ExecStats) -> Option<ResultEvent> {
        let region = &self.regions[rid as usize];
        self.det
            .resolve_region(region, &mut self.store, &mut self.emitted_buf);
        self.resolved += 1;
        let ctx = RankCtx {
            regions: &self.regions,
            store: &self.store,
            det: &self.det,
            sigma: self.sigma,
            cost_model: &self.cost_model,
        };
        self.schedule.on_resolved(rid, &ctx);
        self.trace.gauge(
            "progress_estimate",
            self.resolved as f64 / self.total_regions.max(1) as f64,
        );

        if self.emitted_buf.is_empty() {
            return None;
        }
        let mut tuples = Vec::new();
        for cell in self.emitted_buf.drain(..) {
            stats.cells_emitted += 1;
            self.trace.point(Point::Emit {
                cell: u64::from(cell.cell_idx),
                n: cell.ids.len() as u64,
                proven_final: true,
            });
            for (i, &(ri, ti)) in cell.ids.iter().enumerate() {
                let oriented = cell.points.point(i);
                let values = self
                    .orders
                    .iter()
                    .zip(oriented)
                    .map(|(o, &v)| o.orient(v))
                    .collect();
                tuples.push(ResultTuple {
                    r_idx: self.row_ids.map_r(ri),
                    t_idx: self.row_ids.map_t(ti),
                    values,
                });
            }
        }
        stats.results_emitted += tuples.len() as u64;
        self.trace.counter("results_emitted", tuples.len() as u64);
        Some(ResultEvent {
            tuples,
            proven_final: true,
            progress_estimate: self.resolved as f64 / self.total_regions.max(1) as f64,
            elapsed: self.started.elapsed(),
        })
    }

    /// Closes the region loop: merges cell-store counters into `stats` and
    /// flags an early stop when regions were left unresolved.
    pub fn finalize(self, stats: &mut ExecStats) {
        let unresolved = self.total_regions - self.resolved;
        if unresolved > 0 {
            stats.cancelled = true;
            stats.regions_skipped = unresolved;
        } else {
            // All regions resolved ⇒ every live cell must have been
            // released.
            debug_assert_eq!(
                self.det.live_cells(),
                0,
                "cells left blocked after all regions resolved"
            );
        }
        let cell_stats = self.store.stats();
        // `+=`: worker-local pre-filter tests were already accumulated.
        stats.dominance_tests += cell_stats.dominance_tests;
        stats.dominance_pairs += cell_stats.dominance_pairs;
        stats.fdom_vertex_evals += cell_stats.fdom_vertex_evals;
        stats.tuples_inserted = cell_stats.tuples_inserted;
        stats.tuples_rejected_dominated = cell_stats.tuples_rejected_dominated;
        stats.tuples_rejected_dead_cell = cell_stats.tuples_rejected_dead_cell;
        stats.tuples_evicted = cell_stats.tuples_evicted;
        stats.comparable_cells_visited = cell_stats.comparable_cells_visited;
        stats.comparable_cells_max = cell_stats.comparable_cells_max;
        stats.tuples_fdom_filtered = cell_stats.tuples_fdom_filtered;
    }
}

/// Typed rejection from [`TaskSpawner::spawn_task`]: the spawner has shut
/// down and the job was **not** (and never will be) run. The region driver
/// treats this as a cancellation signal for the whole session — the pinned
/// behavior when an engine runtime is shut down under a live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnError;

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("task spawner is shut down; job was not run")
    }
}

impl std::error::Error for SpawnError {}

/// Something that can run `'static` jobs on worker threads. The
/// `progxe-runtime` crate implements this for its shared thread pool;
/// keeping the trait here lets [`RegionDriver`] stay pool-agnostic while
/// the whole region loop lives in one place.
pub trait TaskSpawner: Send + Sync {
    /// Enqueues a job for execution on some worker thread, or returns
    /// [`SpawnError`] if the spawner has shut down. `Ok` is a contract:
    /// an accepted job runs (and thus reports) exactly once.
    fn spawn_task(&self, job: Box<dyn FnOnce() + Send + 'static>) -> Result<(), SpawnError>;
}

/// How [`RegionDriver`] executes the tuple-level phase.
pub enum ExecutorBackend {
    /// Compute regions on the calling thread, one per step.
    Inline,
    /// Fan region work units out through a [`TaskSpawner`] with a bounded
    /// dispatch window of `2 × threads`.
    Pooled {
        /// Executes the work units (e.g. a shared thread pool handle).
        spawner: Arc<dyn TaskSpawner>,
        /// Worker count behind the spawner — sizes the dispatch window.
        threads: usize,
    },
}

impl std::fmt::Debug for ExecutorBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorBackend::Inline => f.write_str("Inline"),
            ExecutorBackend::Pooled { threads, .. } => f
                .debug_struct("Pooled")
                .field("threads", threads)
                .finish_non_exhaustive(),
        }
    }
}

/// Reorder buffer between workers and the committer: a `Mutex`/`Condvar`
/// channel keyed by dispatch sequence number.
struct ResultQueue {
    slots: Mutex<BTreeMap<u64, RegionBatch>>,
    ready: Condvar,
}

impl ResultQueue {
    fn new() -> Self {
        Self {
            slots: Mutex::new(BTreeMap::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, seq: u64, batch: RegionBatch) {
        let mut slots = self.slots.lock().expect("result queue poisoned");
        slots.insert(seq, batch);
        drop(slots);
        self.ready.notify_all();
    }

    /// Blocks until the batch for `seq` arrives. Every dispatched job is
    /// guaranteed to push exactly one entry (a [`DeliveryGuard`] reports
    /// even on worker panic), so this cannot deadlock.
    fn wait_take(&self, seq: u64) -> RegionBatch {
        let mut slots = self.slots.lock().expect("result queue poisoned");
        loop {
            if let Some(batch) = slots.remove(&seq) {
                return batch;
            }
            slots = self.ready.wait(slots).expect("result queue poisoned");
        }
    }

    /// Takes the batch for `seq` only if it has already been delivered.
    /// Used by the cancelled-run scavenge, which must never block on the
    /// shared pool.
    fn try_take(&self, seq: u64) -> Option<RegionBatch> {
        self.slots
            .lock()
            .expect("result queue poisoned")
            .remove(&seq)
    }
}

/// Ensures a dispatched work unit always reports: if the job unwinds before
/// delivering, `Drop` pushes an aborted batch so the committer wakes up and
/// treats the run as failed instead of deadlocking.
struct DeliveryGuard {
    queue: Arc<ResultQueue>,
    seq: u64,
    rid: u32,
    dims: usize,
    delivered: bool,
}

impl DeliveryGuard {
    fn deliver(mut self, batch: RegionBatch) {
        self.delivered = true;
        self.queue.push(self.seq, batch);
    }
}

impl Drop for DeliveryGuard {
    fn drop(&mut self) {
        if !self.delivered {
            self.queue
                .push(self.seq, RegionBatch::aborted(self.rid, self.dims));
        }
    }
}

/// Where the driver's tuple-level compute comes from.
///
/// Cloning is cheap (`Arc` bumps); pooled work units capture a clone.
#[derive(Clone)]
pub(crate) enum WorkSource {
    /// The batch pipeline: fully materialized filtered sources
    /// ([`RegionCtx`]).
    Query(Arc<RegionCtx>),
    /// Streaming ingestion: sealed stream partitions behind the shared
    /// ingest state ([`crate::ingest::IngestCtx`]); regions gate on cell
    /// readiness.
    Ingest(Arc<crate::ingest::IngestCtx>),
}

impl WorkSource {
    fn compute(&self, rid: u32, token: &CancellationToken) -> RegionBatch {
        match self {
            WorkSource::Query(ctx) => ctx.compute(rid, token),
            WorkSource::Ingest(ctx) => ctx.compute(rid, token),
        }
    }

    fn process_into(
        &self,
        rid: u32,
        store: &mut CellStore,
        token: &CancellationToken,
    ) -> (crate::tuple_level::TupleLevelStats, bool) {
        match self {
            WorkSource::Query(ctx) => ctx.process_into(rid, store, token),
            WorkSource::Ingest(ctx) => ctx.process_into(rid, store, token),
        }
    }

    fn out_dims(&self) -> usize {
        match self {
            WorkSource::Query(ctx) => ctx.maps().out_dims(),
            WorkSource::Ingest(ctx) => ctx.out_dims(),
        }
    }
}

/// Outcome of one [`RegionDriver::poll_next`] call.
#[derive(Debug)]
pub enum DriverPoll {
    /// A batch of proven-final results.
    Event(ResultEvent),
    /// Streaming ingestion only: the next scheduled region's input cells
    /// are not sealed yet — push more rows, advance a watermark, or close a
    /// source, then poll again.
    Stalled,
    /// The run is over (all regions resolved, or cancelled).
    Finished,
}

/// Internal outcome of one scheduling round.
enum Advance {
    /// Work happened (events may be queued); poll again.
    Progressed,
    /// Readiness-gated schedule is waiting for input (ingestion only).
    Stalled,
    /// Schedule exhausted or cancelled mid-region.
    Finished,
}

/// The one region-execution loop of the codebase, behind a
/// [`QuerySession`](crate::session::QuerySession) via [`SessionStep`] (batch
/// pipeline) or polled directly by an
/// [`IngestSession`](crate::ingest::IngestSession) (streaming pipeline).
///
/// Owns a [`Committer`] and advances the region loop, queueing a
/// [`ResultEvent`] whenever a resolution releases proven-final cells. Owns
/// no borrows: all query state was copied/`Arc`ed during
/// [`ProgXe::prepare`](crate::executor::ProgXe::prepare) (or the ingest
/// setup).
pub struct RegionDriver {
    start: Instant,
    token: CancellationToken,
    stats: ExecStats,
    committer: Option<Committer>,
    backend: ExecutorBackend,
    work: Option<WorkSource>,
    /// Whether pops go through the ingest readiness gate (streaming runs).
    gated: bool,
    /// Join-pair bound at which the inline backend switches from streaming
    /// insert to batch compute + local skyline pre-filter.
    prefilter_min_pairs: u64,
    queue: Arc<ResultQueue>,
    /// Dispatch sequence numbers of in-flight regions, oldest first
    /// (pooled backend only; always empty on inline).
    inflight: VecDeque<u64>,
    next_seq: u64,
    /// Dispatch-window size: 1 inline; `2 × threads` pooled — enough to
    /// keep workers busy while the committer blocks on the oldest batch,
    /// small enough to bound batch memory and stay close to the schedule's
    /// intent. Readiness-gated (streaming) runs force 1 on either backend:
    /// popping ahead of the commit frontier would interleave pops and
    /// commits differently per arrival schedule and break emission-order
    /// invariance.
    window: usize,
    ready: VecDeque<ResultEvent>,
    done: bool,
    /// Clone of the committer's trace handle, used for driver-side events
    /// (inline compute spans, the pooled arm's worker spans, cancellation).
    trace: Trace,
    /// Whether the `cancel` point was already recorded (once per session).
    cancel_noted: bool,
}

impl RegionDriver {
    /// Builds the driver over a prepared pipeline. `prefilter_min_pairs`
    /// comes from [`ProgXeConfig`](crate::config::ProgXeConfig) and only
    /// affects the inline backend (pool workers always pre-filter).
    pub fn new(
        prep: Prepared,
        token: CancellationToken,
        backend: ExecutorBackend,
        prefilter_min_pairs: usize,
    ) -> Self {
        let work = prep.ctx.map(WorkSource::Query);
        Self::from_parts(
            prep.committer,
            work,
            prep.stats,
            prep.started,
            token,
            backend,
            prefilter_min_pairs,
            false,
        )
    }

    /// Builds a readiness-gated driver for streaming ingestion. Pops stall
    /// until the ingest state seals the scheduled region's input cells, and
    /// the dispatch window is forced to 1 (see [`RegionDriver::window`]).
    pub(crate) fn for_ingest(
        committer: Committer,
        ctx: Arc<crate::ingest::IngestCtx>,
        stats: ExecStats,
        started: Instant,
        token: CancellationToken,
        backend: ExecutorBackend,
    ) -> Self {
        Self::from_parts(
            Some(committer),
            Some(WorkSource::Ingest(ctx)),
            stats,
            started,
            token,
            backend,
            // Streaming regions have pair bound 0 and always stream-insert
            // on the inline backend; the gate value is irrelevant.
            usize::MAX,
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        committer: Option<Committer>,
        work: Option<WorkSource>,
        stats: ExecStats,
        started: Instant,
        token: CancellationToken,
        backend: ExecutorBackend,
        prefilter_min_pairs: usize,
        gated: bool,
    ) -> Self {
        let window = if gated {
            1
        } else {
            match &backend {
                ExecutorBackend::Inline => 1,
                ExecutorBackend::Pooled { threads, .. } => threads.saturating_mul(2).max(1),
            }
        };
        let done = committer.is_none();
        let trace = committer
            .as_ref()
            .map(|c| c.trace().clone())
            .unwrap_or_default();
        // `usize::MAX` is the documented "filter disabled" sentinel; map it
        // to `u64::MAX` explicitly so a 32-bit `usize::MAX` (2^32−1, which
        // real pair bounds can exceed) still disables the filter.
        let prefilter_min_pairs = if prefilter_min_pairs == usize::MAX {
            u64::MAX
        } else {
            prefilter_min_pairs as u64
        };
        Self {
            start: started,
            token,
            stats,
            committer,
            backend,
            work,
            gated,
            prefilter_min_pairs,
            queue: Arc::new(ResultQueue::new()),
            inflight: VecDeque::new(),
            next_seq: 0,
            window,
            ready: VecDeque::new(),
            done,
            trace,
            cancel_noted: false,
        }
    }

    /// Pulls the next driver outcome: an event, a stall (gated runs only),
    /// or the end of the run. The streaming-ingestion session polls this
    /// directly; [`SessionStep::next_event`] wraps it for batch sessions.
    pub fn poll_next(&mut self) -> DriverPoll {
        loop {
            if self.token.is_cancelled() {
                if !self.cancel_noted {
                    self.cancel_noted = true;
                    self.trace.point(Point::Cancel);
                }
                return DriverPoll::Finished;
            }
            if let Some(event) = self.ready.pop_front() {
                return DriverPoll::Event(event);
            }
            if self.done {
                return DriverPoll::Finished;
            }
            match self.advance() {
                Advance::Progressed => continue,
                Advance::Stalled => return DriverPoll::Stalled,
                Advance::Finished => self.done = true,
            }
        }
    }

    /// One deterministic scheduling round. Inline: pop one region, compute
    /// it here (streaming or batch per the pre-filter gate), commit.
    /// Pooled: top the dispatch window up, then — unless dead-region
    /// discards already produced deliverable events — commit the oldest
    /// in-flight batch. Gated (ingestion) runs additionally stall when the
    /// scheduled region's input is not sealed yet.
    fn advance(&mut self) -> Advance {
        let Some(committer) = self.committer.as_mut() else {
            return Advance::Finished;
        };
        let work = self
            .work
            .as_ref()
            .expect("a committer implies a work source");
        let ready_gate: Option<Box<dyn Fn(u32) -> bool>> = match (self.gated, work) {
            (true, WorkSource::Ingest(ctx)) => {
                let ctx = Arc::clone(ctx);
                Some(Box::new(move |rid| ctx.is_ready(rid)))
            }
            _ => None,
        };
        let mut stalled = false;
        while self.inflight.len() < self.window {
            let rid = match committer.pop_gated(&mut self.stats, ready_gate.as_deref()) {
                Popped::Region(rid) => rid,
                Popped::Stalled => {
                    stalled = true;
                    break;
                }
                Popped::Exhausted => break,
            };
            if committer.region_box_is_dead(rid) {
                if let Some(event) = committer.discard_dead(rid, &mut self.stats) {
                    self.ready.push_back(event);
                    // Inline delivers the released cells before touching
                    // the next region (one region per step, like the
                    // pre-refactor sequential loop); the pooled arm keeps
                    // filling its window and delivers via the ready-check
                    // below, before blocking on a worker.
                    if matches!(self.backend, ExecutorBackend::Inline) {
                        return Advance::Progressed;
                    }
                }
                continue;
            }
            match &self.backend {
                ExecutorBackend::Inline => {
                    return if committer.pair_bound(rid) < self.prefilter_min_pairs {
                        // Small region: stream matches straight into the
                        // cell store, no batch materialization.
                        let token = &self.token;
                        match committer.process_and_commit(rid, &mut self.stats, |store| {
                            work.process_into(rid, store, token)
                        }) {
                            Some(Some(event)) => {
                                self.ready.push_back(event);
                                Advance::Progressed
                            }
                            Some(None) => Advance::Progressed,
                            None => Advance::Finished, // cancelled mid-region
                        }
                    } else {
                        // Large region: batch compute + bounded local
                        // skyline pre-filter before cell-store insertion.
                        let span = self.trace.span(Span::TuplePhase {
                            region_id: u64::from(rid),
                            pairs: committer.pair_bound(rid),
                        });
                        let batch = work.compute(rid, &self.token);
                        span.end();
                        if !batch.completed {
                            // Never committed, but its partial work is
                            // real: account it so cancelled-run stats
                            // reflect the pairs actually evaluated.
                            Self::absorb_partial_batch(&mut self.stats, &batch);
                            self.stats.cancelled = true;
                            Advance::Finished
                        } else {
                            if let Some(event) = committer.commit_batch(batch, &mut self.stats) {
                                self.ready.push_back(event);
                            }
                            Advance::Progressed
                        }
                    };
                }
                ExecutorBackend::Pooled { spawner, .. } => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let work = work.clone();
                    let token = self.token.clone();
                    let queue = Arc::clone(&self.queue);
                    let dims = work.out_dims();
                    let trace = self.trace.clone();
                    let pairs = committer.pair_bound(rid);
                    let spawned = spawner.spawn_task(Box::new(move || {
                        let guard = DeliveryGuard {
                            queue,
                            seq,
                            rid,
                            dims,
                            delivered: false,
                        };
                        // Declared after the guard so an unwinding compute
                        // still closes the span *before* the aborted batch
                        // is delivered (drop order is reverse declaration).
                        let span = trace.span(Span::TuplePhase {
                            region_id: u64::from(rid),
                            pairs,
                        });
                        let batch = work.compute(rid, &token);
                        span.end();
                        guard.deliver(batch);
                    }));
                    match spawned {
                        Ok(()) => self.inflight.push_back(seq),
                        Err(SpawnError) => {
                            // The spawner shut down under this live session
                            // (e.g. `EngineRuntime::shutdown` closed the
                            // shared pool). The rejected job never reports,
                            // so waiting on `seq` would deadlock; instead
                            // the run cancels: fire the token so earlier
                            // accepted jobs abort at their next check, and
                            // let `finalize` scavenge whatever they already
                            // delivered. The session surfaces this exactly
                            // like a user cancel — `stats.cancelled`.
                            progxe_obs::log::warn(
                                "task spawner shut down under a live session; cancelling the run",
                            );
                            self.token.cancel();
                            self.stats.cancelled = true;
                            return Advance::Finished;
                        }
                    }
                }
            }
        }
        if !self.ready.is_empty() {
            // Deliver discard-produced events before blocking on a worker.
            return Advance::Progressed;
        }
        let Some(seq) = self.inflight.pop_front() else {
            return if stalled {
                Advance::Stalled
            } else {
                Advance::Finished
            };
        };
        let batch = self.queue.wait_take(seq);
        if !batch.completed {
            // An incomplete batch has exactly two causes. If the shared
            // token fired, this is an ordinary cancellation: the region
            // stays unresolved and the run ends cancelled, never emitting
            // from partial state. Otherwise the worker died (a panicking
            // mapping function) and the DeliveryGuard reported for it —
            // propagate, matching the inline backend's behavior instead of
            // disguising a crash as a user-initiated cancel.
            if !self.token.is_cancelled() {
                panic!(
                    "progxe worker panicked while computing region {} \
                     (see stderr for the worker's panic message)",
                    batch.rid
                );
            }
            Self::absorb_partial_batch(&mut self.stats, &batch);
            self.stats.cancelled = true;
            return Advance::Finished;
        }
        if let Some(event) = committer.commit_batch(batch, &mut self.stats) {
            self.ready.push_back(event);
        }
        Advance::Progressed
    }

    /// Folds the work counters of a batch that will never be committed
    /// (token fired mid-region) into the run stats. The streaming path
    /// records its partial work the same way inside
    /// [`Committer::process_and_commit`]; skipping it here would
    /// under-report a cancelled run's actual cost.
    fn absorb_partial_batch(stats: &mut ExecStats, batch: &RegionBatch) {
        stats.tuple_time += batch.compute_time;
        stats.join_pairs_evaluated += batch.stats.pairs_examined;
        stats.join_matches += batch.stats.matches;
        // Today both filter counters are 0 on an incomplete batch (the
        // local filter only runs after a completed join); absorbed anyway
        // so the helper stays field-for-field consistent with commit_batch.
        stats.dominance_tests += batch.stats.local_dominance_tests;
        stats.dominance_pairs += batch.stats.local_dominance_tests;
        stats.fdom_vertex_evals += batch.stats.fdom_vertex_evals;
        stats.tuples_prefiltered += batch.stats.locally_pruned;
    }
}

impl SessionStep for RegionDriver {
    /// Pulls the next event, stepping the region loop as needed.
    fn next_event(&mut self) -> Option<ResultEvent> {
        match self.poll_next() {
            DriverPoll::Event(event) => Some(event),
            DriverPoll::Finished => None,
            DriverPoll::Stalled => {
                // Unreachable through QuerySession: only ingest drivers are
                // gated, and they are polled directly via `poll_next`.
                debug_assert!(false, "ungated driver stalled");
                None
            }
        }
    }

    fn stats_snapshot(&self) -> ExecStats {
        let mut stats = self.stats.clone();
        stats.total_time = self.start.elapsed();
        stats
    }

    /// Closes the session: fires the token for any in-flight workers
    /// (their regions are *skipped*, not awaited — abandoned queries must
    /// stop burning shared-pool CPU), merges cell-store counters into the
    /// stats, and flags an early stop (unresolved regions or undelivered
    /// events).
    fn finalize(mut self: Box<Self>) -> ExecStats {
        if !self.inflight.is_empty() {
            self.token.cancel();
        }
        // A `take(k)`-style early finish cancels the token and never polls
        // again, so the poll-loop observation point would miss it.
        if self.token.is_cancelled() && !self.cancel_noted {
            self.cancel_noted = true;
            self.trace.point(Point::Cancel);
        }
        let mut stats = std::mem::take(&mut self.stats);
        // Scavenge whatever in-flight batches have already been delivered:
        // their regions are skipped (never committed), but the work
        // happened and belongs in the cancelled run's counters. Strictly
        // non-blocking — a still-running worker's stats are forfeited
        // rather than stalling finish() behind the shared pool.
        for seq in self.inflight.drain(..) {
            if let Some(batch) = self.queue.try_take(seq) {
                Self::absorb_partial_batch(&mut stats, &batch);
            }
        }
        if let Some(committer) = self.committer.take() {
            if !self.ready.is_empty() || committer.unresolved() > 0 {
                stats.cancelled = true;
            }
            committer.finalize(&mut stats);
        }
        stats.total_time = self.start.elapsed();
        stats
    }
}

impl Drop for RegionDriver {
    /// A session dropped without `finish()` must not leave pool workers
    /// computing doomed regions on a *shared* pool: fire the token so
    /// in-flight jobs exit at their next check. The jobs own all the state
    /// they touch (`Arc`s of context, token, and reorder buffer), so no
    /// join is needed.
    fn drop(&mut self) {
        if !self.inflight.is_empty() {
            self.token.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProgXeConfig;
    use crate::executor::ProgXe;
    use crate::mapping::MapSet;
    use crate::session::QuerySession;
    use crate::source::SourceData;
    use progxe_skyline::Preference;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            let k = (lcg(&mut st) % keys as u64) as u32;
            s.push(&row, k);
        }
        s
    }

    /// A minimal spawner: one OS thread per job. Exercises the pooled
    /// code path without depending on the runtime crate.
    struct ThreadPerTask;
    impl TaskSpawner for ThreadPerTask {
        fn spawn_task(&self, job: Box<dyn FnOnce() + Send + 'static>) -> Result<(), SpawnError> {
            std::thread::spawn(job);
            Ok(())
        }
    }

    fn drive(
        config: &ProgXeConfig,
        r: &SourceData,
        t: &SourceData,
        maps: &MapSet,
        backend: ExecutorBackend,
    ) -> Vec<(u32, u32)> {
        let token = CancellationToken::new();
        let prep = ProgXe::new(config.clone())
            .prepare(&r.view(), &t.view(), maps, token.clone())
            .unwrap();
        let driver = RegionDriver::new(prep, token.clone(), backend, config.prefilter_min_pairs);
        let mut session = QuerySession::stepped("test", token, Box::new(driver));
        let mut ids = Vec::new();
        while let Some(event) = session.next_batch() {
            assert!(event.proven_final);
            ids.extend(event.tuples.iter().map(|x| (x.r_idx, x.t_idx)));
        }
        assert!(!session.finish().cancelled);
        ids.sort_unstable();
        ids
    }

    #[test]
    fn inline_streaming_and_batch_paths_agree() {
        let r = random_source(200, 2, 6, 1);
        let t = random_source(200, 2, 6, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let streaming = ProgXeConfig::default().with_prefilter_min_pairs(usize::MAX);
        let batch = ProgXeConfig::default().with_prefilter_min_pairs(0);
        assert_eq!(
            drive(&streaming, &r, &t, &maps, ExecutorBackend::Inline),
            drive(&batch, &r, &t, &maps, ExecutorBackend::Inline),
        );
    }

    #[test]
    fn pooled_backend_matches_inline_through_any_spawner() {
        let r = random_source(180, 2, 5, 3);
        let t = random_source(180, 2, 5, 4);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let config = ProgXeConfig::default();
        let inline = drive(&config, &r, &t, &maps, ExecutorBackend::Inline);
        let pooled = drive(
            &config,
            &r,
            &t,
            &maps,
            ExecutorBackend::Pooled {
                spawner: Arc::new(ThreadPerTask),
                threads: 3,
            },
        );
        assert!(!inline.is_empty());
        assert_eq!(inline, pooled);
    }

    #[test]
    fn inline_prefilter_prunes_and_counts() {
        // Anti-correlated-ish duplicates in one region: the batch path must
        // report pre-filter work in the stats.
        let r = random_source(300, 2, 2, 5);
        let t = random_source(300, 2, 2, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let config = ProgXeConfig::default().with_prefilter_min_pairs(0);
        let token = CancellationToken::new();
        let prep = ProgXe::new(config.clone())
            .prepare(&r.view(), &t.view(), &maps, token.clone())
            .unwrap();
        let driver = RegionDriver::new(
            prep,
            token.clone(),
            ExecutorBackend::Inline,
            config.prefilter_min_pairs,
        );
        let mut session = QuerySession::stepped("test", token, Box::new(driver));
        while session.next_batch().is_some() {}
        let stats = session.finish();
        assert!(
            stats.tuples_prefiltered > 0,
            "local pre-filter should prune on dense regions"
        );
    }
}
