//! Tuple-level processing of one region (Section III-B).
//!
//! For the chosen region `R_{a,b}`: evaluate the equi-join between the
//! tuples of `I^R_a` and `I^T_b` (hash join on the smaller side), apply the
//! mapping functions to each match, orient the output, and hand every mapped
//! tuple to a consumer — either the shared [`CellStore`] (streaming path,
//! [`process_region`]; small regions on the driver's `Inline` backend) or a
//! private batch buffer ([`RegionCtx::compute`]; pool workers always, and
//! large inline regions per
//! [`ProgXeConfig::prefilter_min_pairs`](crate::config::ProgXeConfig)).
//!
//! The batch split follows the paper's own decomposition: everything up
//! to the cell-restricted dominance insert is *pure* per-region work
//! ([`RegionCtx`] is `Send + Sync` and owns all inputs), while Algorithm 2's
//! blocker bookkeeping stays with the single ordered committer in
//! [`crate::driver`]. Batch producers additionally run a bounded local
//! skyline pre-filter over their own batch — sound because Pareto dominance
//! is transitive, so a tuple dominated inside its batch can never survive
//! the shared store either.
//!
//! Cancellation is checked *inside* the probe loop (every
//! [`CANCEL_CHECK_INTERVAL`] probe rows), so a `take(k)` consumer or a
//! timeout stops a huge region mid-flight instead of paying for the whole
//! join.

use crate::cells::CellStore;
use crate::fdom::DominanceModel;
use crate::fxhash::FxHashMap;
use crate::grid::{InputGrid, InputPartition};
use crate::lookahead::Region;
use crate::mapping::MapSet;
use crate::session::CancellationToken;
use crate::source::SourceView;
use progxe_skyline::{kernel, PointStore};
use std::time::{Duration, Instant};

/// Work items (probe rows + join matches) between cancellation-token
/// checks inside the join loop: bounds how far a cancelled region can
/// overshoot, even when single probe rows fan out into many matches.
pub const CANCEL_CHECK_INTERVAL: usize = 256;

/// Upper bound on the local pre-filter's comparison window. Tuples kept
/// while the window is full are simply passed through unfiltered (sound:
/// the committer's cell store re-checks everything), keeping worker-side
/// filtering at `O(matches × window)`.
const LOCAL_FILTER_WINDOW: usize = 256;

/// Work counters from processing one region.
#[derive(Debug, Clone, Copy, Default)]
pub struct TupleLevelStats {
    /// Join-condition probes (`n_R · n_T` upper bound; hash join probes
    /// only actual key matches, this counts pairs *examined*).
    pub pairs_examined: u64,
    /// Join matches produced and mapped.
    pub matches: u64,
    /// Pairwise dominance tests performed by the worker-local pre-filter
    /// (0 on the sequential path). The pre-filter runs on the batched
    /// kernels, so this advances at chunk granularity.
    pub local_dominance_tests: u64,
    /// Tuples dropped by the worker-local pre-filter before reaching the
    /// committer (0 on the sequential path).
    pub locally_pruned: u64,
    /// Vertex dot products evaluated while projecting batches into the
    /// flexible model's vertex space (0 under Pareto).
    pub fdom_vertex_evals: u64,
}

/// The shared join + map + orient loop. Calls `emit` for every join match
/// with `(r_row, t_row, oriented values)`. Returns the work counters and
/// whether the region ran to completion (`false` = cancelled mid-region).
///
/// Generic over the consumer (not `dyn`) so both call sites — streaming
/// insert and batch collection — keep `emit` inlinable in the hot loop.
/// Crate-visible: the [`crate::ingest`] work units run the same loop over
/// sealed stream partitions.
pub(crate) fn join_region<F: FnMut(u32, u32, &[f64])>(
    r_part: &InputPartition,
    t_part: &InputPartition,
    r_src: &SourceView<'_>,
    t_src: &SourceView<'_>,
    maps: &MapSet,
    token: &CancellationToken,
    mut emit: F,
) -> (TupleLevelStats, bool) {
    let mut stats = TupleLevelStats::default();
    // An already-cancelled token stops the region before any join work;
    // afterwards it is re-checked every CANCEL_CHECK_INTERVAL work items.
    if token.is_cancelled() {
        return (stats, false);
    }
    let orders = maps.preference().orders();
    let mut raw = Vec::with_capacity(maps.out_dims());
    let mut oriented = vec![0.0f64; maps.out_dims()];

    // Build the hash table over the smaller partition.
    let (build_rows, probe_rows, build_is_r) = if r_part.len() <= t_part.len() {
        (&r_part.tuples, &t_part.tuples, true)
    } else {
        (&t_part.tuples, &r_part.tuples, false)
    };
    let build_src: &SourceView<'_> = if build_is_r { r_src } else { t_src };
    let probe_src: &SourceView<'_> = if build_is_r { t_src } else { r_src };

    let mut table: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for &row in build_rows {
        table
            .entry(build_src.join_key_of(row as usize))
            .or_default()
            .push(row);
    }

    let mut since_check = 0usize;
    for (probed, &probe) in probe_rows.iter().enumerate() {
        since_check += 1;
        if since_check >= CANCEL_CHECK_INTERVAL {
            since_check = 0;
            if token.is_cancelled() {
                // Account only the work actually performed before the stop.
                stats.pairs_examined = probed as u64 * build_rows.len() as u64;
                return (stats, false);
            }
        }
        let key = probe_src.join_key_of(probe as usize);
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for &build in matches {
            since_check += 1;
            if since_check >= CANCEL_CHECK_INTERVAL {
                since_check = 0;
                if token.is_cancelled() {
                    stats.pairs_examined = (probed as u64 + 1) * build_rows.len() as u64;
                    return (stats, false);
                }
            }
            stats.matches += 1;
            let (r_row, t_row) = if build_is_r {
                (build, probe)
            } else {
                (probe, build)
            };
            maps.eval_into(
                r_src.attrs_of(r_row as usize),
                t_src.attrs_of(t_row as usize),
                &mut raw,
            );
            for (j, (&v, o)) in raw.iter().zip(orders).enumerate() {
                oriented[j] = o.orient(v);
            }
            emit(r_row, t_row, &oriented);
        }
    }
    // Account the full nested-pair count as "examined" for the cost model's
    // C_join = n_R·n_T bookkeeping (hash probing avoids most of it in
    // practice; the counter reports the logical join work of Equation 4).
    stats.pairs_examined = r_part.len() as u64 * t_part.len() as u64;
    (stats, true)
}

/// Joins one partition pair, maps the matches, and inserts them directly
/// into the shared cell store — the sequential path. Returns the work
/// counters and whether the region completed (`false` = cancelled
/// mid-region; the store then holds a *partial* insert set and the region
/// must **not** be resolved).
pub fn process_region(
    r_part: &InputPartition,
    t_part: &InputPartition,
    r_src: &SourceView<'_>,
    t_src: &SourceView<'_>,
    maps: &MapSet,
    store: &mut CellStore,
    token: &CancellationToken,
) -> (TupleLevelStats, bool) {
    join_region(r_part, t_part, r_src, t_src, maps, token, |r, t, o| {
        store.insert(r, t, o);
    })
}

/// Immutable, owned context shared by all tuple-level work units of one
/// query: filtered sources, grids, regions, and the mapping functions.
///
/// `Send + Sync` by construction (everything is owned; [`MapSet`] clones
/// are `Arc` bumps), so an `Arc<RegionCtx>` can be captured by `'static`
/// thread-pool jobs.
#[derive(Debug)]
pub struct RegionCtx {
    maps: MapSet,
    /// Filtered sources with dense join keys (push-through survivors).
    r_attrs: PointStore,
    r_keys: Vec<u32>,
    t_attrs: PointStore,
    t_keys: Vec<u32>,
    r_grid: InputGrid,
    t_grid: InputGrid,
    /// Shared with the committer (which owns the schedule over the same
    /// region vector) — an `Arc` slice so neither side copies it.
    regions: std::sync::Arc<[Region]>,
}

impl RegionCtx {
    /// Bundles the per-query immutable state. Called by the executor's
    /// pipeline setup; `maps` is a cheap clone (`Arc`-backed).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        maps: MapSet,
        r_attrs: PointStore,
        r_keys: Vec<u32>,
        t_attrs: PointStore,
        t_keys: Vec<u32>,
        r_grid: InputGrid,
        t_grid: InputGrid,
        regions: std::sync::Arc<[Region]>,
    ) -> Self {
        Self {
            maps,
            r_attrs,
            r_keys,
            t_attrs,
            t_keys,
            r_grid,
            t_grid,
            regions,
        }
    }

    /// The query's live regions (dense ids = indices).
    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The mapping functions + preference of this query.
    #[inline]
    pub fn maps(&self) -> &MapSet {
        &self.maps
    }

    /// Views over the filtered sources.
    fn views(&self) -> (SourceView<'_>, SourceView<'_>) {
        let r = SourceView::new(&self.r_attrs, &self.r_keys).expect("filtered arrays are parallel");
        let t = SourceView::new(&self.t_attrs, &self.t_keys).expect("filtered arrays are parallel");
        (r, t)
    }

    /// Runs region `rid` through the streaming sequential path, inserting
    /// into `store` directly. Returns the counters and the completion flag.
    pub(crate) fn process_into(
        &self,
        rid: u32,
        store: &mut CellStore,
        token: &CancellationToken,
    ) -> (TupleLevelStats, bool) {
        let region = &self.regions[rid as usize];
        let rp = &self.r_grid.partitions()[region.r_part as usize];
        let tp = &self.t_grid.partitions()[region.t_part as usize];
        let (r_view, t_view) = self.views();
        process_region(rp, tp, &r_view, &t_view, &self.maps, store, token)
    }

    /// One pure, parallelizable work unit: join + map + orient region `rid`
    /// and pre-filter the batch down to its local skyline. The returned
    /// batch is committed by the ordered committer; a batch with
    /// `completed == false` (cancelled mid-region) must be discarded whole.
    pub fn compute(&self, rid: u32, token: &CancellationToken) -> RegionBatch {
        let started = Instant::now();
        let region = &self.regions[rid as usize];
        let rp = &self.r_grid.partitions()[region.r_part as usize];
        let tp = &self.t_grid.partitions()[region.t_part as usize];
        let (r_view, t_view) = self.views();

        let mut ids: Vec<(u32, u32)> = Vec::new();
        let mut points = PointStore::new(self.maps.out_dims());
        let (mut stats, completed) =
            join_region(rp, tp, &r_view, &t_view, &self.maps, token, |r, t, o| {
                ids.push((r, t));
                points.push(o);
            });
        if completed {
            local_skyline_filter(&mut ids, &mut points, self.maps.dominance(), &mut stats);
        }
        RegionBatch {
            rid,
            ids,
            points,
            stats,
            completed,
            compute_time: started.elapsed(),
        }
    }
}

/// The output of one region work unit: mapped join results (oriented, local
/// skyline only) ready for ordered commit.
#[derive(Debug)]
pub struct RegionBatch {
    /// The region this batch belongs to.
    pub rid: u32,
    /// `(r_row, t_row)` of surviving tuples (filtered-source row ids).
    pub ids: Vec<(u32, u32)>,
    /// Oriented output values, parallel to `ids`.
    pub points: PointStore,
    /// Work counters of the unit.
    pub stats: TupleLevelStats,
    /// Whether the join ran to completion. `false` means the token fired
    /// mid-region: the batch is partial and must not be committed.
    pub completed: bool,
    /// Wall-clock time the worker spent computing this unit.
    pub compute_time: Duration,
}

impl RegionBatch {
    /// A placeholder for a work unit that did not run to completion
    /// (cancellation, or a failed worker). Committers must treat it as a
    /// mid-region stop: never commit it, leave the region unresolved.
    pub fn aborted(rid: u32, dims: usize) -> Self {
        Self {
            rid,
            ids: Vec::new(),
            points: PointStore::new(dims.max(1)),
            stats: TupleLevelStats::default(),
            completed: false,
            compute_time: Duration::ZERO,
        }
    }
}

/// Order-preserving bounded BNL filter: drops tuples dominated (under the
/// query's [`DominanceModel`], over oriented values) by another tuple of
/// the same batch. Sound as a pre-filter because the relation is a
/// transitive strict partial order — a tuple dominated inside its batch
/// can never belong to the final (flexible) skyline, and its dominator
/// (or a dominator of that) survives to reject whatever it would have
/// rejected. Bounded by [`LOCAL_FILTER_WINDOW`] so a worker never does
/// quadratic work on a huge region. Shared with the [`crate::ingest`]
/// batch path.
pub(crate) fn local_skyline_filter(
    ids: &mut Vec<(u32, u32)>,
    points: &mut PointStore,
    model: &DominanceModel,
    stats: &mut TupleLevelStats,
) {
    let n = ids.len();
    if n <= 1 {
        return;
    }
    // Kernel space for the whole batch: the oriented values themselves
    // under Pareto (no copy), or one up-front vertex projection under a
    // flexible model — after which every dominance decision is a flat
    // all-lowest Pareto kernel call (k compares per pair instead of k·d
    // multiplies).
    let (kd, projected) = match model {
        DominanceModel::Pareto => (points.dims(), None),
        DominanceModel::Flexible(f) => {
            let k = f.vertex_count();
            let mut buf = Vec::with_capacity(n * k);
            let mut tmp = Vec::with_capacity(k);
            for p in points.iter() {
                f.project_into(p, &mut tmp);
                buf.extend_from_slice(&tmp);
            }
            stats.fdom_vertex_evals += (n * k) as u64;
            (k, Some(buf))
        }
    };
    let kdata: &[f64] = projected.as_deref().unwrap_or(points.raw());
    let mut keep = vec![true; n];
    let mut window: Vec<u32> = Vec::new();
    let mut wpoints = PointStore::new(kd);
    let mut mask: Vec<bool> = Vec::new();
    for i in 0..n {
        let p = &kdata[i * kd..(i + 1) * kd];
        if kernel::any_dominates(kd, wpoints.raw(), p, &mut stats.local_dominance_tests) {
            keep[i] = false;
            continue;
        }
        mask.clear();
        mask.resize(window.len(), false);
        if kernel::dominated_mask(
            kd,
            wpoints.raw(),
            p,
            &mut mask,
            &mut stats.local_dominance_tests,
        ) > 0
        {
            let mut w = 0;
            while w < window.len() {
                if mask[w] {
                    keep[window[w] as usize] = false;
                    mask.swap_remove(w);
                    window.swap_remove(w);
                    wpoints.swap_remove(w);
                } else {
                    w += 1;
                }
            }
        }
        if window.len() < LOCAL_FILTER_WINDOW {
            window.push(i as u32);
            wpoints.push(p);
        }
    }
    let survivors = keep.iter().filter(|&&k| k).count();
    if survivors == n {
        return;
    }
    // Compact survivors in place, preserving order — no reallocation.
    let mut next = 0usize;
    ids.retain(|_| {
        let k = keep[next];
        next += 1;
        k
    });
    points.compact(&keep);
    stats.locally_pruned += (n - survivors) as u64;
}

// Compile-time guarantee that work units can cross thread boundaries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RegionCtx>();
    assert_send_sync::<RegionBatch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureConfig;
    use crate::grid::InputGrid;
    use crate::output_grid::OutputGrid;
    use crate::source::SourceData;
    use progxe_skyline::Preference;

    fn one_partition(src: &SourceData) -> InputPartition {
        let grid = InputGrid::build(&src.view(), 1, SignatureConfig::Exact, 16);
        grid.partitions()[0].clone()
    }

    fn tracked_store(grid: OutputGrid) -> CellStore {
        let mut store = CellStore::new(grid.clone());
        let lo = grid.cell_of(&vec![f64::NEG_INFINITY; grid.dims()]);
        let mut hi = lo;
        for h in hi.iter_mut().take(grid.dims()) {
            *h = grid.cells_per_dim() - 1;
        }
        for c in grid.iter_box(lo, hi) {
            store.track(c);
        }
        store
    }

    fn run(
        rp: &InputPartition,
        tp: &InputPartition,
        r: &SourceData,
        t: &SourceData,
        maps: &MapSet,
        store: &mut CellStore,
    ) -> TupleLevelStats {
        let (stats, completed) = process_region(
            rp,
            tp,
            &r.view(),
            &t.view(),
            maps,
            store,
            &CancellationToken::new(),
        );
        assert!(completed);
        stats
    }

    #[test]
    fn equi_join_produces_only_matching_pairs() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0), (&[2.0], 1), (&[3.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[10.0], 0), (&[20.0], 2)]);
        let rp = one_partition(&r);
        let tp = one_partition(&t);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut store = tracked_store(OutputGrid::new(vec![0.0], vec![40.0], 8));
        let stats = run(&rp, &tp, &r, &t, &maps, &mut store);
        // Matching pairs: (r0,t0) and (r2,t0) — but 11 dominates 13 in 1-d,
        // so only one tuple survives.
        assert_eq!(stats.matches, 2);
        assert_eq!(stats.pairs_examined, 6);
        assert_eq!(store.live_tuples(), 1);
    }

    #[test]
    fn mapped_values_are_oriented() {
        use progxe_skyline::Order;
        let r = SourceData::from_rows(1, &[(&[3.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[4.0], 0)]);
        let rp = one_partition(&r);
        let tp = one_partition(&t);
        let maps = MapSet::pairwise_sum(1, Preference::new(vec![Order::Highest]));
        // Oriented output = -(3+4) = -7.
        let mut store = tracked_store(OutputGrid::new(vec![-10.0], vec![0.0], 8));
        run(&rp, &tp, &r, &t, &maps, &mut store);
        assert_eq!(store.live_tuples(), 1);
        let (_, cell) = store.iter().find(|(_, c)| !c.is_empty()).unwrap();
        assert_eq!(cell.points().point(0), &[-7.0]);
    }

    #[test]
    fn build_side_selection_is_transparent() {
        // Asymmetric sizes exercise both build directions; ids must stay
        // (r, t) ordered either way.
        let r = SourceData::from_rows(1, &[(&[1.0], 5)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 5), (&[2.0], 5), (&[3.0], 5), (&[4.0], 5)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut store = tracked_store(OutputGrid::new(vec![0.0], vec![10.0], 8));
        let rp = one_partition(&r);
        let tp = one_partition(&t);
        run(&rp, &tp, &r, &t, &maps, &mut store);
        let (_, cell) = store.iter().find(|(_, c)| !c.is_empty()).unwrap();
        assert_eq!(
            cell.ids(),
            &[(0, 0)],
            "r_idx=0, t_idx=0 regardless of build side"
        );

        // Mirrored: big R, small T.
        let mut store2 = tracked_store(OutputGrid::new(vec![0.0], vec![10.0], 8));
        run(&tp, &rp, &t, &r, &maps, &mut store2);
        let (_, cell2) = store2.iter().find(|(_, c)| !c.is_empty()).unwrap();
        assert_eq!(cell2.ids(), &[(0, 0)]);
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_probe() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0), (&[2.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 0), (&[2.0], 0)]);
        let rp = one_partition(&r);
        let tp = one_partition(&t);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut store = tracked_store(OutputGrid::new(vec![0.0], vec![10.0], 8));
        let token = CancellationToken::new();
        token.cancel();
        let (stats, completed) =
            process_region(&rp, &tp, &r.view(), &t.view(), &maps, &mut store, &token);
        assert!(!completed);
        assert_eq!(stats.matches, 0);
        assert_eq!(store.live_tuples(), 0);
    }

    #[test]
    fn local_filter_keeps_exact_skyline_in_order() {
        let pref = DominanceModel::Pareto;
        let mut ids: Vec<(u32, u32)> = (0..5).map(|i| (i, i)).collect();
        let mut points = PointStore::from_rows(
            2,
            [
                [5.0, 5.0], // dominated by (1,1) later
                [0.5, 7.0], // survives (best dim 0)
                [1.0, 1.0], // survives, dominates 0 and 4
                [7.0, 0.5], // survives (best dim 1)
                [3.0, 3.0], // dominated
            ],
        );
        let mut stats = TupleLevelStats::default();
        local_skyline_filter(&mut ids, &mut points, &pref, &mut stats);
        assert_eq!(ids, vec![(1, 1), (2, 2), (3, 3)], "order preserved");
        assert_eq!(stats.locally_pruned, 2);
        assert!(stats.local_dominance_tests > 0);
    }

    #[test]
    fn local_filter_keeps_equal_tuples() {
        let pref = DominanceModel::Pareto;
        let mut ids = vec![(0, 0), (1, 1)];
        let mut points = PointStore::from_rows(1, [[3.0], [3.0]]);
        let mut stats = TupleLevelStats::default();
        local_skyline_filter(&mut ids, &mut points, &pref, &mut stats);
        assert_eq!(ids.len(), 2, "equal tuples are incomparable");
    }

    #[test]
    fn local_filter_prunes_more_under_a_flexible_model() {
        use crate::fdom::{DominanceModel, FDominance, WeightConstraint};
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.45),
                WeightConstraint::at_most(2, 0, 0.55),
            ],
        )
        .unwrap();
        let model = DominanceModel::flexible(fdom);
        // Pareto-incomparable pair where the second is F-dominated
        // (vertex scores {4.9, 4.1} vs {5.1, 5.9}).
        let mut ids = vec![(0, 0), (1, 1)];
        let mut points = PointStore::from_rows(2, [[0.5, 8.5], [9.5, 1.5]]);
        let mut stats = TupleLevelStats::default();
        local_skyline_filter(&mut ids, &mut points, &model, &mut stats);
        assert_eq!(ids, vec![(0, 0)], "F-dominated batch member dropped");
        assert_eq!(stats.locally_pruned, 1);
    }
}
