//! Tuple-level processing of one region (Section III-B).
//!
//! For the chosen region `R_{a,b}`: evaluate the equi-join between the
//! tuples of `I^R_a` and `I^T_b` (hash join on the smaller side), apply the
//! mapping functions to each match, orient the output, and insert it into
//! the cell store — which performs the cell-restricted dominance
//! maintenance.

use crate::cells::CellStore;
use crate::fxhash::FxHashMap;
use crate::grid::InputPartition;
use crate::mapping::MapSet;
use crate::source::SourceView;

/// Work counters from processing one region.
#[derive(Debug, Clone, Copy, Default)]
pub struct TupleLevelStats {
    /// Join-condition probes (`n_R · n_T` upper bound; hash join probes
    /// only actual key matches, this counts pairs *examined*).
    pub pairs_examined: u64,
    /// Join matches produced and mapped.
    pub matches: u64,
}

/// Joins one partition pair, maps the matches, and inserts them.
pub fn process_region(
    r_part: &InputPartition,
    t_part: &InputPartition,
    r_src: &SourceView<'_>,
    t_src: &SourceView<'_>,
    maps: &MapSet,
    store: &mut CellStore,
) -> TupleLevelStats {
    let mut stats = TupleLevelStats::default();
    let orders = maps.preference().orders();
    let mut raw = Vec::with_capacity(maps.out_dims());
    let mut oriented = vec![0.0f64; maps.out_dims()];

    // Build the hash table over the smaller partition.
    let (build_rows, probe_rows, build_is_r) = if r_part.len() <= t_part.len() {
        (&r_part.tuples, &t_part.tuples, true)
    } else {
        (&t_part.tuples, &r_part.tuples, false)
    };
    let build_src: &SourceView<'_> = if build_is_r { r_src } else { t_src };
    let probe_src: &SourceView<'_> = if build_is_r { t_src } else { r_src };

    let mut table: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for &row in build_rows {
        table
            .entry(build_src.join_key_of(row as usize))
            .or_default()
            .push(row);
    }

    for &probe in probe_rows {
        let key = probe_src.join_key_of(probe as usize);
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for &build in matches {
            stats.matches += 1;
            let (r_row, t_row) = if build_is_r {
                (build, probe)
            } else {
                (probe, build)
            };
            maps.eval_into(
                r_src.attrs_of(r_row as usize),
                t_src.attrs_of(t_row as usize),
                &mut raw,
            );
            for (j, (&v, o)) in raw.iter().zip(orders).enumerate() {
                oriented[j] = o.orient(v);
            }
            store.insert(r_row, t_row, &oriented);
        }
    }
    // Account the full nested-pair count as "examined" for the cost model's
    // C_join = n_R·n_T bookkeeping (hash probing avoids most of it in
    // practice; the counter reports the logical join work of Equation 4).
    stats.pairs_examined = r_part.len() as u64 * t_part.len() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureConfig;
    use crate::grid::InputGrid;
    use crate::output_grid::OutputGrid;
    use crate::source::SourceData;
    use progxe_skyline::Preference;

    fn one_partition(src: &SourceData) -> InputPartition {
        let grid = InputGrid::build(&src.view(), 1, SignatureConfig::Exact, 16);
        grid.partitions()[0].clone()
    }

    fn tracked_store(grid: OutputGrid) -> CellStore {
        let mut store = CellStore::new(grid.clone());
        let lo = grid.cell_of(&vec![f64::NEG_INFINITY; grid.dims()]);
        let mut hi = lo;
        for h in hi.iter_mut().take(grid.dims()) {
            *h = grid.cells_per_dim() - 1;
        }
        for c in grid.iter_box(lo, hi) {
            store.track(c);
        }
        store
    }

    #[test]
    fn equi_join_produces_only_matching_pairs() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0), (&[2.0], 1), (&[3.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[10.0], 0), (&[20.0], 2)]);
        let rp = one_partition(&r);
        let tp = one_partition(&t);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut store = tracked_store(OutputGrid::new(vec![0.0], vec![40.0], 8));
        let stats = process_region(&rp, &tp, &r.view(), &t.view(), &maps, &mut store);
        // Matching pairs: (r0,t0) and (r2,t0) — but 11 dominates 13 in 1-d,
        // so only one tuple survives.
        assert_eq!(stats.matches, 2);
        assert_eq!(stats.pairs_examined, 6);
        assert_eq!(store.live_tuples(), 1);
    }

    #[test]
    fn mapped_values_are_oriented() {
        use progxe_skyline::Order;
        let r = SourceData::from_rows(1, &[(&[3.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[4.0], 0)]);
        let rp = one_partition(&r);
        let tp = one_partition(&t);
        let maps = MapSet::pairwise_sum(1, Preference::new(vec![Order::Highest]));
        // Oriented output = -(3+4) = -7.
        let mut store = tracked_store(OutputGrid::new(vec![-10.0], vec![0.0], 8));
        process_region(&rp, &tp, &r.view(), &t.view(), &maps, &mut store);
        assert_eq!(store.live_tuples(), 1);
        let (_, cell) = store.iter().find(|(_, c)| !c.is_empty()).unwrap();
        assert_eq!(cell.points().point(0), &[-7.0]);
    }

    #[test]
    fn build_side_selection_is_transparent() {
        // Asymmetric sizes exercise both build directions; ids must stay
        // (r, t) ordered either way.
        let r = SourceData::from_rows(1, &[(&[1.0], 5)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 5), (&[2.0], 5), (&[3.0], 5), (&[4.0], 5)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut store = tracked_store(OutputGrid::new(vec![0.0], vec![10.0], 8));
        let rp = one_partition(&r);
        let tp = one_partition(&t);
        process_region(&rp, &tp, &r.view(), &t.view(), &maps, &mut store);
        let (_, cell) = store.iter().find(|(_, c)| !c.is_empty()).unwrap();
        assert_eq!(
            cell.ids(),
            &[(0, 0)],
            "r_idx=0, t_idx=0 regardless of build side"
        );

        // Mirrored: big R, small T.
        let mut store2 = tracked_store(OutputGrid::new(vec![0.0], vec![10.0], 8));
        process_region(&tp, &rp, &t.view(), &r.view(), &maps, &mut store2);
        let (_, cell2) = store2.iter().find(|(_, c)| !c.is_empty()).unwrap();
        assert_eq!(cell2.ids(), &[(0, 0)]);
    }
}
