//! Output-space look-ahead (Section III-A).
//!
//! For every pair of input partitions whose join signatures overlap, the
//! mapping functions are evaluated over the partition *bounds* to obtain the
//! output region the pair's join results must fall into. Region-level
//! dominance reasoning then prunes work before a single tuple is joined:
//!
//! * a region whose lower-bound point is dominated by the **pessimistic
//!   skyline** — the skyline of upper-bound points of *guaranteed-populated*
//!   regions — can never contribute a result and is discarded (Example 2);
//! * an output cell whose best corner is dominated by the pessimistic
//!   skyline is marked "non-contributing" from the start (Example 3).
//!
//! Exact signatures make "overlap" a population *guarantee*; with Bloom
//! signatures the executor skips region pruning (the guarantee is gone) but
//! keeps every other mechanism.

use crate::cells::CellStore;
use crate::grid::InputGrid;
use crate::mapping::MapSet;
use crate::output_grid::{Coord, OutputGrid, MAX_DIMS};
use progxe_skyline::{bnl::BnlWindow, kernel, Preference};

/// An output region `R_{a,b}`: the mapped image of input partition pair
/// `[I^R_a, I^T_b]`. All bounds are *oriented* (lower is better).
#[derive(Debug, Clone)]
pub struct Region {
    /// Dense region id (index into the live-region vector).
    pub id: u32,
    /// Index of the R-side partition in its grid.
    pub r_part: u32,
    /// Index of the T-side partition in its grid.
    pub t_part: u32,
    /// Oriented continuous lower-bound point (`LOWER(R_{a,b})`).
    pub lo: Vec<f64>,
    /// Oriented continuous upper-bound point (`UPPER(R_{a,b})`).
    pub hi: Vec<f64>,
    /// Inclusive cell box lower corner.
    pub cell_lo: Coord,
    /// Inclusive cell box upper corner.
    pub cell_hi: Coord,
    /// Tuple count of the R-side partition (`n^R_a`).
    pub n_r: u32,
    /// Tuple count of the T-side partition (`n^T_b`).
    pub n_t: u32,
    /// Whether the region is guaranteed to produce at least one join result
    /// (exact signatures only).
    pub guaranteed: bool,
}

impl Region {
    /// Total output cells in the region's box (`PartitionCount` in Eq. 2).
    pub fn partition_count(&self, grid: &OutputGrid) -> u64 {
        grid.box_volume(&self.cell_lo, &self.cell_hi)
    }
}

/// Result of the look-ahead phase.
#[derive(Debug)]
pub struct Lookahead {
    /// The output grid spanning all candidate regions.
    pub grid: OutputGrid,
    /// Live regions after abstraction-level pruning, densely re-numbered.
    pub regions: Vec<Region>,
    /// Partition pairs rejected by signatures ("guaranteed to not generate
    /// any join result").
    pub pairs_rejected_by_signature: usize,
    /// Candidate regions pruned by region-level dominance (Example 2).
    pub regions_pruned: usize,
    /// Pessimistic-skyline points: oriented upper bounds of guaranteed
    /// regions, used later to pre-mark dominated cells.
    pub pessimistic_skyline: Vec<Vec<f64>>,
}

/// Runs the look-ahead phase over two partitioned inputs.
pub fn run_lookahead(
    r_grid: &InputGrid,
    t_grid: &InputGrid,
    maps: &MapSet,
    output_cells_per_dim: u16,
) -> Lookahead {
    let out_dims = maps.out_dims();
    assert!(out_dims <= MAX_DIMS);
    let orders = maps.preference().orders().to_vec();

    // 1. Enumerate join-compatible partition pairs and map their bounds.
    struct Candidate {
        r_part: u32,
        t_part: u32,
        lo: Vec<f64>,
        hi: Vec<f64>,
        n_r: u32,
        n_t: u32,
        guaranteed: bool,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut rejected = 0usize;
    let mut raw_lo = Vec::with_capacity(out_dims);
    let mut raw_hi = Vec::with_capacity(out_dims);
    for rp in r_grid.partitions() {
        for tp in t_grid.partitions() {
            if !rp.signature.overlaps(&tp.signature) {
                rejected += 1;
                continue;
            }
            maps.eval_bounds_into(&rp.lo, &rp.hi, &tp.lo, &tp.hi, &mut raw_lo, &mut raw_hi);
            // Orient: negation for HIGHEST dims swaps the interval ends.
            let mut lo = Vec::with_capacity(out_dims);
            let mut hi = Vec::with_capacity(out_dims);
            for j in 0..out_dims {
                let a = orders[j].orient(raw_lo[j]);
                let b = orders[j].orient(raw_hi[j]);
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            candidates.push(Candidate {
                r_part: rp.id,
                t_part: tp.id,
                lo,
                hi,
                n_r: rp.len() as u32,
                n_t: tp.len() as u32,
                guaranteed: rp.signature.is_exact() && tp.signature.is_exact(),
            });
        }
    }

    // Degenerate input: no joinable pairs at all.
    if candidates.is_empty() {
        return Lookahead {
            grid: OutputGrid::new(vec![0.0; out_dims], vec![1.0; out_dims], 1),
            regions: Vec::new(),
            pairs_rejected_by_signature: rejected,
            regions_pruned: 0,
            pessimistic_skyline: Vec::new(),
        };
    }

    // 2. Global output bounding box → output grid.
    let mut g_lo = candidates[0].lo.clone();
    let mut g_hi = candidates[0].hi.clone();
    for c in &candidates[1..] {
        for j in 0..out_dims {
            g_lo[j] = g_lo[j].min(c.lo[j]);
            g_hi[j] = g_hi[j].max(c.hi[j]);
        }
    }
    let grid = OutputGrid::new(g_lo, g_hi, output_cells_per_dim);

    // 3. Pessimistic skyline over guaranteed regions' upper bounds
    //    (Figure 3). Tags carry the owning candidate so a region is never
    //    pruned by its own upper bound.
    let pref = Preference::all_lowest(out_dims);
    let mut pes: BnlWindow<usize> = BnlWindow::new(pref);
    for (i, c) in candidates.iter().enumerate() {
        if c.guaranteed {
            pes.offer(&c.hi, i);
        }
    }

    // 4. Prune candidates dominated by another guaranteed region
    //    (Example 2: UPPER(R_{1,3}) ≺ LOWER(R_{3,1}) ⇒ discard R_{3,1}).
    //    The window is flattened once so each candidate runs one batched
    //    many-vs-one pass. No owner exclusion is needed: a region's own
    //    upper bound can never *strictly* dominate its own lower bound
    //    (`lo[j] ≤ hi[j]` by construction rules out any `hi[j] < lo[j]`,
    //    and NaN bounds compare as ties), so dropping the old
    //    `owner != i` guard is behavior-preserving.
    let mut pes_flat: Vec<f64> = Vec::new();
    for (p, _) in pes.iter() {
        pes_flat.extend_from_slice(p);
    }
    let mut regions = Vec::with_capacity(candidates.len());
    let mut pruned = 0usize;
    let mut pairs = 0u64;
    for c in candidates.iter() {
        if kernel::any_dominates(out_dims, &pes_flat, &c.lo, &mut pairs) {
            pruned += 1;
            continue;
        }
        let (cell_lo, cell_hi) = grid.box_of(&c.lo, &c.hi);
        regions.push(Region {
            id: regions.len() as u32,
            r_part: c.r_part,
            t_part: c.t_part,
            lo: c.lo.clone(),
            hi: c.hi.clone(),
            cell_lo,
            cell_hi,
            n_r: c.n_r,
            n_t: c.n_t,
            guaranteed: c.guaranteed,
        });
    }

    let pessimistic_skyline: Vec<Vec<f64>> = pes.iter().map(|(p, _)| p.to_vec()).collect();
    Lookahead {
        grid,
        regions,
        pairs_rejected_by_signature: rejected,
        regions_pruned: pruned,
        pessimistic_skyline,
    }
}

/// Tracks every cell of every live region's box and pre-marks cells whose
/// best corner is dominated by the pessimistic skyline (Example 3). Returns
/// the number of cells pre-marked dead.
pub fn track_cells(lookahead: &Lookahead, store: &mut CellStore) -> usize {
    let mut pre_marked = 0usize;
    for region in &lookahead.regions {
        for coord in lookahead.grid.iter_box(region.cell_lo, region.cell_hi) {
            store.track(coord);
        }
    }
    // Mark after tracking so shared cells are processed exactly once. The
    // pessimistic skyline is flattened into one dense batch so each corner
    // runs a single many-vs-one kernel pass; the corner buffer is reused
    // across cells.
    if !lookahead.pessimistic_skyline.is_empty() {
        let d = lookahead.grid.dims();
        let mut pes_flat: Vec<f64> = Vec::with_capacity(lookahead.pessimistic_skyline.len() * d);
        for p in &lookahead.pessimistic_skyline {
            pes_flat.extend_from_slice(p);
        }
        let mut corner = Vec::with_capacity(d);
        let mut pairs = 0u64;
        for idx in 0..store.len() as u32 {
            store
                .grid()
                .lower_corner_into(store.cell(idx).coord(), &mut corner);
            if kernel::any_dominates(d, &pes_flat, &corner, &mut pairs) {
                store.mark_dead(idx);
                pre_marked += 1;
            }
        }
        store.note_dominance_pairs(pairs);
    }
    pre_marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureConfig;
    use crate::source::SourceData;

    fn setup(
        r_rows: &[(&[f64], u32)],
        t_rows: &[(&[f64], u32)],
        per_dim: usize,
        sig: SignatureConfig,
    ) -> (SourceData, SourceData, InputGrid, InputGrid) {
        let r = SourceData::from_rows(r_rows[0].0.len(), r_rows);
        let t = SourceData::from_rows(t_rows[0].0.len(), t_rows);
        let domain = 16;
        let rg = InputGrid::build(&r.view(), per_dim, sig, domain);
        let tg = InputGrid::build(&t.view(), per_dim, sig, domain);
        (r, t, rg, tg)
    }

    #[test]
    fn signature_rejects_incompatible_pairs() {
        let (_r, _t, rg, tg) = setup(
            &[(&[1.0, 1.0], 0), (&[99.0, 99.0], 1)],
            &[(&[1.0, 1.0], 2), (&[99.0, 99.0], 3)],
            2,
            SignatureConfig::Exact,
        );
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let la = run_lookahead(&rg, &tg, &maps, 8);
        assert!(la.regions.is_empty());
        assert_eq!(la.pairs_rejected_by_signature, 4);
    }

    #[test]
    fn regions_cover_joinable_pairs() {
        let (_r, _t, rg, tg) = setup(
            &[(&[1.0, 1.0], 0), (&[99.0, 99.0], 0)],
            &[(&[1.0, 1.0], 0)],
            2,
            SignatureConfig::Exact,
        );
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let la = run_lookahead(&rg, &tg, &maps, 8);
        // Low R-partition × T survives; the high one is dominated by it:
        // UPPER(low×T) = (2+2, 2+2)=(4,4)… actually low partition is a
        // single point (1,1): upper (2,2) dominates lower (100,100).
        assert_eq!(la.regions.len() + la.regions_pruned, 2);
        assert_eq!(la.regions_pruned, 1, "dominated region pruned");
    }

    #[test]
    fn region_bounds_enclose_actual_outputs() {
        let rows_r: Vec<(Vec<f64>, u32)> = (0..20)
            .map(|i| (vec![(i * 5) as f64, (100 - i * 5) as f64], (i % 4) as u32))
            .collect();
        let rows_t: Vec<(Vec<f64>, u32)> = (0..20)
            .map(|i| {
                (
                    vec![(i * 4) as f64 + 1.0, (i * 3) as f64 + 2.0],
                    (i % 4) as u32,
                )
            })
            .collect();
        let r_refs: Vec<(&[f64], u32)> = rows_r.iter().map(|(v, k)| (v.as_slice(), *k)).collect();
        let t_refs: Vec<(&[f64], u32)> = rows_t.iter().map(|(v, k)| (v.as_slice(), *k)).collect();
        let (r, t, rg, tg) = setup(&r_refs, &t_refs, 3, SignatureConfig::Exact);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let la = run_lookahead(&rg, &tg, &maps, 16);

        // Every actual join output must fall inside its region's bounds.
        let mut out = Vec::new();
        for region in &la.regions {
            let rp = &rg.partitions()[region.r_part as usize];
            let tp = &tg.partitions()[region.t_part as usize];
            for &ri in &rp.tuples {
                for &ti in &tp.tuples {
                    if r.view().join_key_of(ri as usize) != t.view().join_key_of(ti as usize) {
                        continue;
                    }
                    maps.eval_into(
                        r.view().attrs_of(ri as usize),
                        t.view().attrs_of(ti as usize),
                        &mut out,
                    );
                    for j in 0..2 {
                        assert!(
                            region.lo[j] <= out[j] && out[j] <= region.hi[j],
                            "output {out:?} escapes region [{:?}, {:?}]",
                            region.lo,
                            region.hi
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bloom_disables_guarantees_and_pruning() {
        let (_r, _t, rg, tg) = setup(
            &[(&[1.0, 1.0], 0), (&[99.0, 99.0], 0)],
            &[(&[1.0, 1.0], 0)],
            2,
            SignatureConfig::Bloom { bits: 256 },
        );
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let la = run_lookahead(&rg, &tg, &maps, 8);
        assert_eq!(la.regions_pruned, 0, "no pruning without guarantees");
        assert!(la.regions.iter().all(|r| !r.guaranteed));
        assert!(la.pessimistic_skyline.is_empty());
    }

    #[test]
    fn track_cells_marks_dominated_cells_dead() {
        // Region A = (1,0)×T has bounds [(2,1), (2,80)]; region C =
        // (99,20)×T has bounds [(100,21), (100,100)]. C's lower bound is
        // *not* dominated by UPPER(A) = (2,80) (21 < 80), so C survives
        // region pruning — but C's cells with corner y > 80 are dominated
        // and must be pre-marked (the paper's Example 3).
        let r = SourceData::from_rows(2, &[(&[1.0, 0.0], 0), (&[99.0, 20.0], 0)]);
        let t = SourceData::from_rows(2, &[(&[1.0, 1.0], 0), (&[1.0, 80.0], 0)]);
        let rg = InputGrid::build(&r.view(), 2, SignatureConfig::Exact, 1);
        let tg = InputGrid::build(&t.view(), 1, SignatureConfig::Exact, 1);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let la = run_lookahead(&rg, &tg, &maps, 16);
        assert_eq!(la.regions.len(), 2, "neither region fully pruned");
        let mut store = CellStore::new(la.grid.clone());
        let marked = track_cells(&la, &mut store);
        assert!(!store.is_empty());
        assert!(
            marked >= 2,
            "expected dominated cells pre-marked, got {marked}"
        );
    }

    #[test]
    fn empty_sources_produce_empty_lookahead() {
        let r = SourceData::new(2);
        let rg = InputGrid::build(&r.view(), 2, SignatureConfig::Exact, 1);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let la = run_lookahead(&rg, &rg, &maps, 8);
        assert!(la.regions.is_empty());
    }

    #[test]
    fn highest_preference_orients_bounds() {
        use progxe_skyline::Order;
        let (_r, _t, rg, tg) = setup(
            &[(&[10.0, 20.0], 0)],
            &[(&[1.0, 2.0], 0)],
            1,
            SignatureConfig::Exact,
        );
        let maps = MapSet::pairwise_sum(2, Preference::new(vec![Order::Lowest, Order::Highest]));
        let la = run_lookahead(&rg, &tg, &maps, 8);
        assert_eq!(la.regions.len(), 1);
        let region = &la.regions[0];
        // Raw output is (11, 22); dim 1 oriented = -22.
        assert!(region.lo[0] <= 11.0 && 11.0 <= region.hi[0]);
        assert!(region.lo[1] <= -22.0 && -22.0 <= region.hi[1]);
    }
}
