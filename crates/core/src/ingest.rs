//! Streaming source ingestion: progressive execution over incrementally
//! arriving inputs.
//!
//! The batch pipeline ([`crate::executor::ProgXe`]) demands both sources
//! fully materialized before `prepare()`. In the paper's motivating
//! federated/web setting, inputs arrive in batches over the network — and
//! the first skyline results should be emitted long before the slowest
//! source finishes. This module makes first-result latency bounded by
//! *data arrival*, not data completeness:
//!
//! * [`IngestSession`] accepts per-source row batches
//!   ([`push`](IngestSession::push)), optional per-dimension
//!   [watermarks](IngestSession::set_watermark) ("all future rows of this
//!   source are ≥ these values"), and a [`close`](IngestSession::close)
//!   signal per source.
//! * The input grids are built from **declared bounds**
//!   ([`StreamSpec`]), so the cell a row lands in — and with it the entire
//!   region/EL-graph/blocker structure — is fixed up front and independent
//!   of arrival order. Cells fill incrementally; a cell **seals** once its
//!   source closed or a watermark passed the cell's slice, guaranteeing it
//!   can receive no more rows.
//! * A region becomes **ready** when both of its input cells are sealed.
//!   The [`RegionDriver`] runs with a
//!   readiness gate: the schedule *stalls* on its next region until that
//!   region is ready (it never skips ahead to a different ready region).
//!   Stalling preserves ProgOrder's pop order exactly, so the commit
//!   sequence — and with it Algorithm 2's blocker bookkeeping and the
//!   emitted result stream — is **bit-identical** to the all-at-once run,
//!   for every arrival schedule, on both the Inline and Pooled backends.
//!
//! ## Why emission stays safe and schedule-independent
//!
//! Soundness is inherited unchanged: the committer resolves a region only
//! after its (complete, sealed) tuples are in the cell store, and cells
//! release only when every potentially-contributing region resolved — the
//! paper's Principle 1. Schedule-independence holds because every input to
//! the scheduling decision is a deterministic function of the *commit
//! history*, never of arrival timing: region geometry comes from declared
//! bounds, region tuple counts are pinned to zero (sizes are unknowable
//! before arrival), sealed partitions present their rows sorted by caller
//! row id, and a stalled pop re-offers the identical region later. The
//! price is head-of-line blocking — a not-yet-ready region parks ready
//! ones behind it — which is the deliberate trade recorded in ROADMAP.md.

use crate::cells::CellStore;
use crate::config::{ProgXeConfig, SignatureConfig};
use crate::cost::CostModel;
use crate::driver::{Committer, CommitterParts, DriverPoll, ExecutorBackend, RegionDriver, RowIds};
use crate::error::{Error, Result};
use crate::fxhash::FxHashMap;
use crate::grid::{GridGeometry, InputPartition};
use crate::lookahead::Region;
use crate::mapping::MapSet;
use crate::output_grid::{OutputGrid, MAX_DIMS};
use crate::progdetermine::ProgDetermine;
use crate::session::{CancellationToken, ResultEvent};
use crate::signature::JoinSignature;
use crate::source::SourceView;
use crate::stats::ExecStats;
use crate::tuple_level::{join_region, local_skyline_filter, RegionBatch, TupleLevelStats};
use progxe_obs::{Histogram, Point, Recorder, Span, Trace};
use progxe_skyline::PointStore;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Upper bound on `r_cells × t_cells` for a streaming session. The
/// streaming pipeline enumerates *every* potential cell pair up front
/// (signatures and emptiness are unknown before arrival), and the EL-graph
/// build is quadratic in the region count — this cap keeps session setup
/// well under a second. Lower `input_partitions_per_dim` to stay inside it
/// at higher dimensionality.
pub const MAX_STREAM_REGIONS: usize = 16_384;

/// Benefit-model selectivity used when
/// [`ProgXeConfig::selectivity_hint`] is unset on a streaming session. The
/// batch pipeline estimates σ from the observed join-key domain, which a
/// streaming session cannot know up front. The value only feeds the
/// (count-free) rank constant, so it shifts no scheduling decision.
const STREAM_DEFAULT_SIGMA: f64 = 0.01;

/// Declared shape of one streaming source: attribute dimensionality plus
/// per-dimension value bounds. The bounds fix the input-grid geometry
/// before any row arrives; rows outside them are rejected
/// ([`IngestError::OutOfBounds`]) because they could land in a cell whose
/// output region was not provisioned.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl StreamSpec {
    /// Declares a source whose rows lie inside `[lo, hi]` per dimension.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        if lo.is_empty() || lo.len() != hi.len() {
            return Err(Error::InvalidConfig(
                "stream spec bounds must be non-empty and parallel",
            ));
        }
        for (l, h) in lo.iter().zip(&hi) {
            if !l.is_finite() || !h.is_finite() || l > h {
                return Err(Error::InvalidConfig(
                    "stream spec bounds must be finite with lo <= hi",
                ));
            }
        }
        Ok(Self { lo, hi })
    }

    /// Attribute dimensionality.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Declared per-dimension lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Declared per-dimension upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }
}

/// Which streaming source an ingest operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceId {
    /// The left (R) source.
    R,
    /// The right (T) source.
    T,
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SourceId::R => "R",
            SourceId::T => "T",
        })
    }
}

impl From<SourceId> for progxe_obs::Source {
    fn from(id: SourceId) -> Self {
        match id {
            SourceId::R => progxe_obs::Source::R,
            SourceId::T => progxe_obs::Source::T,
        }
    }
}

/// Typed ingestion failures. Every error is *atomic*: the offending call
/// mutates nothing, so session state (cell contents, seals, readiness)
/// stays exactly as before the call.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A pushed row's attribute count disagrees with the source's declared
    /// dimensionality.
    Arity {
        /// The source addressed.
        source: SourceId,
        /// Declared dimensionality.
        expected: usize,
        /// Attributes in the offending row.
        got: usize,
    },
    /// A pushed row lies outside the source's declared bounds (or has a
    /// non-finite attribute).
    OutOfBounds {
        /// The source addressed.
        source: SourceId,
        /// Offending dimension.
        dim: usize,
        /// Offending value.
        value: f64,
    },
    /// A pushed row arrived *below* the source's declared watermark — the
    /// producer broke its ordering promise. Admitting the row could land it
    /// in an already-sealed cell and corrupt region readiness, so the whole
    /// batch is rejected instead.
    RowBelowWatermark {
        /// The source addressed.
        source: SourceId,
        /// Dimension where the promise broke.
        dim: usize,
        /// The declared watermark in that dimension.
        watermark: f64,
        /// The offending row value.
        value: f64,
    },
    /// A watermark update moved backwards in some dimension.
    WatermarkRetreat {
        /// The source addressed.
        source: SourceId,
        /// Offending dimension.
        dim: usize,
        /// Previously declared watermark.
        from: f64,
        /// Attempted (lower) watermark.
        to: f64,
    },
    /// A watermark vector's length disagrees with the source
    /// dimensionality, or a component is NaN.
    BadWatermark {
        /// The source addressed.
        source: SourceId,
    },
    /// A row id was pushed twice for the same source. Row ids are the
    /// caller's stable identities; duplicates would make results ambiguous.
    DuplicateRow {
        /// The source addressed.
        source: SourceId,
        /// The duplicated id.
        row_id: u32,
    },
    /// Rows or watermarks were pushed to a source after `close(source)`.
    SourceClosed(SourceId),
    /// Rows or watermarks were pushed after the session's cancellation
    /// token fired. A long-lived (subscription-style) session whose
    /// consumer is gone must not keep accumulating input — the producer
    /// needs a typed signal to stop feeding it.
    Cancelled,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Arity {
                source,
                expected,
                got,
            } => write!(
                f,
                "ingest arity mismatch on source {source}: declared {expected} \
                 attribute dimension(s), row has {got}"
            ),
            IngestError::OutOfBounds { source, dim, value } => write!(
                f,
                "row value {value} escapes source {source}'s declared bounds in dimension {dim}"
            ),
            IngestError::RowBelowWatermark {
                source,
                dim,
                watermark,
                value,
            } => write!(
                f,
                "watermark regression on source {source}: row value {value} in dimension {dim} \
                 is below the declared watermark {watermark}"
            ),
            IngestError::WatermarkRetreat {
                source,
                dim,
                from,
                to,
            } => write!(
                f,
                "watermark retreat on source {source}: dimension {dim} cannot move from {from} \
                 back to {to}"
            ),
            IngestError::BadWatermark { source } => write!(
                f,
                "watermark for source {source} must match its dimensionality and be NaN-free"
            ),
            IngestError::DuplicateRow { source, row_id } => {
                write!(f, "row id {row_id} pushed twice on source {source}")
            }
            IngestError::SourceClosed(source) => {
                write!(f, "source {source} is closed")
            }
            IngestError::Cancelled => {
                write!(f, "session is cancelled; it accepts no further input")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Outcome of one [`IngestSession::poll`] call.
#[derive(Debug)]
pub enum IngestPoll {
    /// A batch of proven-final results (never retracted).
    Batch(ResultEvent),
    /// The next scheduled region is still waiting for input: push more
    /// rows, advance a watermark, or close a source, then poll again.
    NeedInput,
    /// The query finished (all regions resolved) or was cancelled.
    Complete,
}

/// One sealed input cell: its member rows frozen in canonical (row-id)
/// order, ready for lock-free joining.
pub(crate) struct SealedPart {
    /// Local partition view (tuples are 0..n local indices).
    part: InputPartition,
    attrs: PointStore,
    keys: Vec<u32>,
    /// Caller row id per local index.
    rows: Vec<u32>,
}

impl SealedPart {
    fn view(&self) -> SourceView<'_> {
        SourceView::new(&self.attrs, &self.keys).expect("sealed arrays are parallel")
    }
}

/// Mutable per-source ingestion state.
struct SourceState {
    dims: usize,
    spec: StreamSpec,
    geo: GridGeometry,
    /// Arrival-ordered row store (attrs ∥ keys ∥ caller ids).
    attrs: PointStore,
    keys: Vec<u32>,
    ids: Vec<u32>,
    /// Row-store indices per grid cell (arrival order; sorted by caller id
    /// at seal time).
    buckets: Vec<Vec<u32>>,
    /// `Some` once the cell sealed (closed source, or watermark passed the
    /// cell's slice in some dimension).
    sealed: Vec<Option<Arc<SealedPart>>>,
    /// Count of sealed cells (= number of `Some` entries above).
    sealed_count: usize,
    watermark: Vec<f64>,
    closed: bool,
    seen: FxHashMap<u32, ()>,
    /// Next auto-assigned row id (callers may also pass explicit ids).
    auto_id: u32,
}

impl SourceState {
    fn new(spec: StreamSpec, per_dim: usize) -> Self {
        let dims = spec.dims();
        let geo = GridGeometry::from_bounds(spec.lo(), spec.hi(), per_dim);
        let cells = geo.cell_count().expect("cell count validated at open");
        Self {
            dims,
            spec,
            geo,
            attrs: PointStore::new(dims),
            keys: Vec::new(),
            ids: Vec::new(),
            buckets: vec![Vec::new(); cells],
            sealed: (0..cells).map(|_| None).collect(),
            sealed_count: 0,
            watermark: vec![f64::NEG_INFINITY; dims],
            closed: false,
            seen: FxHashMap::default(),
            auto_id: 0,
        }
    }

    /// Whether cell `cell` can provably receive no more rows.
    fn cell_is_final(&self, cell: usize) -> bool {
        if self.closed {
            return true;
        }
        // A watermark seals every slice strictly below its own slot:
        // future rows are ≥ the watermark in *every* dimension and
        // `GridGeometry::slot` is monotone in the value, so one passed
        // dimension suffices. Deciding with `slot(watermark)` — the same
        // arithmetic that places rows — rather than comparing against a
        // recomputed slice boundary keeps sealing and placement consistent
        // at floating-point boundary values (a row admitted by the
        // watermark check can never land in a sealed cell). The top slice
        // only seals on close, since `slot` clamps into it.
        (0..self.dims)
            .any(|d| self.geo.slot(d, self.watermark[d]) > self.geo.slot_of_linear(cell, d))
    }

    /// Freezes one cell into a [`SealedPart`] (rows sorted by caller id,
    /// making the partition content independent of arrival order).
    fn seal_cell(&mut self, cell: usize) {
        debug_assert!(self.sealed[cell].is_none());
        let mut members = std::mem::take(&mut self.buckets[cell]);
        members.sort_unstable_by_key(|&idx| self.ids[idx as usize]);
        let n = members.len();
        let mut attrs = PointStore::with_capacity(self.dims, n);
        let mut keys = Vec::with_capacity(n);
        let mut rows = Vec::with_capacity(n);
        for &idx in &members {
            attrs.push(self.attrs.point(idx as usize));
            keys.push(self.keys[idx as usize]);
            rows.push(self.ids[idx as usize]);
        }
        let (lo, hi) = self.geo.slice_bounds(cell);
        let part = InputPartition {
            id: cell as u32,
            tuples: (0..n as u32).collect(),
            lo,
            hi,
            // The streaming join never consults signatures (pair pruning
            // needs full-source knowledge); an empty exact signature keeps
            // the partition type uniform.
            signature: JoinSignature::empty(SignatureConfig::Exact, 0),
        };
        self.sealed[cell] = Some(Arc::new(SealedPart {
            part,
            attrs,
            keys,
            rows,
        }));
        self.sealed_count += 1;
    }
}

/// Shared mutable ingestion state: both sources plus region readiness.
struct IngestInner {
    r: SourceState,
    t: SourceState,
    t_cells: usize,
    /// Per-region readiness flag (`rid = r_cell · t_cells + t_cell`).
    ready: Vec<bool>,
    regions_unlocked: usize,
    tuples_ingested: u64,
    /// The session's trace handle (ingest-side events: batch spans, seal
    /// points).
    trace: Trace,
    /// Arrival instant of the last accepted batch (either source).
    last_batch_at: Option<Instant>,
    /// Inter-arrival time between accepted batches.
    interarrival: Histogram,
}

impl IngestInner {
    fn source(&mut self, id: SourceId) -> &mut SourceState {
        match id {
            SourceId::R => &mut self.r,
            SourceId::T => &mut self.t,
        }
    }

    /// Seals every cell of `side` that became final, then unlocks regions
    /// whose opposite cell is already sealed.
    fn reseal(&mut self, side: SourceId) {
        let newly: Vec<usize> = {
            let src = self.source(side);
            (0..src.sealed.len())
                .filter(|&c| src.sealed[c].is_none() && src.cell_is_final(c))
                .collect()
        };
        for &cell in &newly {
            self.source(side).seal_cell(cell);
            self.trace.point(Point::Seal {
                source: side.into(),
                cell: cell as u64,
            });
        }
        for &cell in &newly {
            match side {
                SourceId::R => {
                    for t_cell in 0..self.t_cells {
                        if self.t.sealed[t_cell].is_some() {
                            self.unlock(cell * self.t_cells + t_cell);
                        }
                    }
                }
                SourceId::T => {
                    for r_cell in 0..self.r.sealed.len() {
                        if self.r.sealed[r_cell].is_some() {
                            self.unlock(r_cell * self.t_cells + cell);
                        }
                    }
                }
            }
        }
    }

    fn unlock(&mut self, rid: usize) {
        if !self.ready[rid] {
            self.ready[rid] = true;
            self.regions_unlocked += 1;
        }
    }

    /// Validates a whole batch, then applies it — atomically: a batch with
    /// any bad row changes nothing.
    fn push_batch(
        &mut self,
        side: SourceId,
        rows: &[(u32, &[f64], u32)],
    ) -> std::result::Result<(), IngestError> {
        let src = self.source(side);
        if src.closed {
            return Err(IngestError::SourceClosed(side));
        }
        let mut batch_ids: FxHashMap<u32, ()> = FxHashMap::default();
        for &(id, attrs, _key) in rows {
            if attrs.len() != src.dims {
                return Err(IngestError::Arity {
                    source: side,
                    expected: src.dims,
                    got: attrs.len(),
                });
            }
            for (d, &v) in attrs.iter().enumerate() {
                if !v.is_finite() || v < src.spec.lo()[d] || v > src.spec.hi()[d] {
                    return Err(IngestError::OutOfBounds {
                        source: side,
                        dim: d,
                        value: v,
                    });
                }
                if v < src.watermark[d] {
                    return Err(IngestError::RowBelowWatermark {
                        source: side,
                        dim: d,
                        watermark: src.watermark[d],
                        value: v,
                    });
                }
            }
            if src.seen.contains_key(&id) || batch_ids.insert(id, ()).is_some() {
                return Err(IngestError::DuplicateRow {
                    source: side,
                    row_id: id,
                });
            }
        }
        // Validation passed: the batch is accepted. The span covers the apply
        // loop only, so failed batches leave no trace events behind.
        let span = self.trace.span(Span::IngestBatch {
            source: side.into(),
            rows: rows.len() as u64,
        });
        let src = self.source(side);
        for &(id, attrs, key) in rows {
            let idx = src.ids.len() as u32;
            src.attrs.push(attrs);
            src.keys.push(key);
            src.ids.push(id);
            src.seen.insert(id, ());
            let cell = src.geo.linear_of(attrs);
            debug_assert!(
                src.sealed[cell].is_none(),
                "watermark check admitted a row into a sealed cell"
            );
            src.buckets[cell].push(idx);
        }
        src.auto_id = src.auto_id.max(
            rows.iter()
                .map(|r| r.0.saturating_add(1))
                .max()
                .unwrap_or(0),
        );
        self.tuples_ingested += rows.len() as u64;
        span.end();
        let now = Instant::now();
        if let Some(prev) = self.last_batch_at {
            self.interarrival
                .record(now.saturating_duration_since(prev));
        }
        self.last_batch_at = Some(now);
        Ok(())
    }

    fn set_watermark(
        &mut self,
        side: SourceId,
        wm: &[f64],
    ) -> std::result::Result<(), IngestError> {
        let src = self.source(side);
        if src.closed {
            return Err(IngestError::SourceClosed(side));
        }
        if wm.len() != src.dims || wm.iter().any(|v| v.is_nan()) {
            return Err(IngestError::BadWatermark { source: side });
        }
        for (d, (&new, &old)) in wm.iter().zip(&src.watermark).enumerate() {
            if new < old {
                return Err(IngestError::WatermarkRetreat {
                    source: side,
                    dim: d,
                    from: old,
                    to: new,
                });
            }
        }
        src.watermark.copy_from_slice(wm);
        self.reseal(side);
        Ok(())
    }

    fn close(&mut self, side: SourceId) {
        let src = self.source(side);
        if src.closed {
            return; // idempotent
        }
        src.closed = true;
        self.reseal(side);
    }
}

/// The compute-side context of a streaming session: regions plus the
/// shared ingest state. `Send + Sync`; pooled work units capture it in an
/// `Arc` exactly like the batch pipeline's
/// [`RegionCtx`](crate::tuple_level::RegionCtx).
pub struct IngestCtx {
    maps: MapSet,
    regions: Arc<[Region]>,
    inner: Arc<Mutex<IngestInner>>,
}

impl IngestCtx {
    /// Whether both input cells of `rid` are sealed — the driver's
    /// readiness gate.
    pub fn is_ready(&self, rid: u32) -> bool {
        self.inner.lock().expect("ingest state poisoned").ready[rid as usize]
    }

    /// Output dimensionality of the query.
    pub fn out_dims(&self) -> usize {
        self.maps.out_dims()
    }

    /// The two sealed partitions of a ready region. Holds the state lock
    /// only long enough to clone two `Arc`s; the join itself is lock-free.
    fn sealed_pair(&self, rid: u32) -> (Arc<SealedPart>, Arc<SealedPart>) {
        let region = &self.regions[rid as usize];
        let inner = self.inner.lock().expect("ingest state poisoned");
        let rp = inner.r.sealed[region.r_part as usize]
            .as_ref()
            .expect("region popped before its R cell sealed")
            .clone();
        let tp = inner.t.sealed[region.t_part as usize]
            .as_ref()
            .expect("region popped before its T cell sealed")
            .clone();
        (rp, tp)
    }

    /// Streaming-insert path: joins the sealed pair straight into the cell
    /// store, emitting **caller row ids**.
    pub(crate) fn process_into(
        &self,
        rid: u32,
        store: &mut CellStore,
        token: &CancellationToken,
    ) -> (TupleLevelStats, bool) {
        let (rp, tp) = self.sealed_pair(rid);
        join_region(
            &rp.part,
            &tp.part,
            &rp.view(),
            &tp.view(),
            &self.maps,
            token,
            |r, t, o| {
                store.insert(rp.rows[r as usize], tp.rows[t as usize], o);
            },
        )
    }

    /// Batch path (pool workers): join + map + orient + bounded local
    /// skyline pre-filter, ids already translated to caller row ids.
    pub(crate) fn compute(&self, rid: u32, token: &CancellationToken) -> RegionBatch {
        let started = Instant::now();
        let (rp, tp) = self.sealed_pair(rid);
        let mut ids: Vec<(u32, u32)> = Vec::new();
        let mut points = PointStore::new(self.maps.out_dims());
        let (mut stats, completed) = join_region(
            &rp.part,
            &tp.part,
            &rp.view(),
            &tp.view(),
            &self.maps,
            token,
            |r, t, o| {
                ids.push((rp.rows[r as usize], tp.rows[t as usize]));
                points.push(o);
            },
        );
        if completed {
            local_skyline_filter(&mut ids, &mut points, self.maps.dominance(), &mut stats);
        }
        RegionBatch {
            rid,
            ids,
            points,
            stats,
            completed,
            compute_time: started.elapsed(),
        }
    }
}

/// A progressive query over two incrementally arriving sources.
///
/// Obtain one from [`IngestSession::open`] (Inline backend) or
/// [`IngestSession::open_with_backend`] (e.g. the runtime crate's pooled
/// backend). Feed it with [`push`](Self::push) /
/// [`set_watermark`](Self::set_watermark) / [`close`](Self::close), and
/// interleave [`poll`](Self::poll) calls to drain proven-final result
/// batches as regions unlock. Emitted `r_idx`/`t_idx` are the caller's row
/// ids.
///
/// Dropping the session — with or without calling `finish` — fires its
/// [`CancellationToken`], so in-flight pooled workers stop even when the
/// session is simply abandoned (same contract as
/// [`QuerySession`](crate::session::QuerySession)).
#[must_use = "an ingest session does no work until it is polled"]
pub struct IngestSession {
    driver: RegionDriver,
    inner: Arc<Mutex<IngestInner>>,
    token: CancellationToken,
    emitted: u64,
    /// High-water mark enforcing monotone, `[0, 1]`-clamped progress.
    last_progress: f64,
    /// Fires `token` on drop (`IngestSession` itself must stay
    /// `Drop`-free: `finish` partially moves out of `self`).
    _drop_cancel: crate::session::DropCancel,
}

impl IngestSession {
    /// Opens an inline (single-threaded) streaming session.
    pub fn open(
        config: &ProgXeConfig,
        maps: &MapSet,
        r_spec: StreamSpec,
        t_spec: StreamSpec,
    ) -> Result<IngestSession> {
        Self::open_with_backend(
            config,
            maps,
            r_spec,
            t_spec,
            ExecutorBackend::Inline,
            CancellationToken::new(),
        )
    }

    /// Opens a streaming session on an explicit executor backend with a
    /// caller-provided cancellation token. The `progxe-runtime` crate uses
    /// this to run ingestion over its shared thread pool.
    pub fn open_with_backend(
        config: &ProgXeConfig,
        maps: &MapSet,
        r_spec: StreamSpec,
        t_spec: StreamSpec,
        backend: ExecutorBackend,
        token: CancellationToken,
    ) -> Result<IngestSession> {
        Self::open_observed(config, maps, r_spec, t_spec, backend, token, None)
    }

    /// Like [`IngestSession::open_with_backend`], but attaches a
    /// [`Recorder`] so the session emits trace events: `lookahead` /
    /// `ingest_batch` spans, `seal` / `stall` points, and the driver-side
    /// span taxonomy shared with materialized execution.
    pub fn open_observed(
        config: &ProgXeConfig,
        maps: &MapSet,
        r_spec: StreamSpec,
        t_spec: StreamSpec,
        backend: ExecutorBackend,
        token: CancellationToken,
        recorder: Option<Arc<dyn Recorder>>,
    ) -> Result<IngestSession> {
        config.validate()?;
        let out_dims = maps.out_dims();
        if out_dims > MAX_DIMS {
            return Err(Error::TooManyDimensions {
                dims: out_dims,
                max: MAX_DIMS,
            });
        }
        let started = Instant::now();
        let trace = Trace::from_recorder(recorder, started);
        let lookahead_span = trace.span(Span::Lookahead);
        let per_dim = config.input_partitions_per_dim;
        let r_geo = GridGeometry::from_bounds(r_spec.lo(), r_spec.hi(), per_dim);
        let t_geo = GridGeometry::from_bounds(t_spec.lo(), t_spec.hi(), per_dim);
        let (Some(r_cells), Some(t_cells)) = (r_geo.cell_count(), t_geo.cell_count()) else {
            return Err(Error::InvalidConfig(
                "streaming grid cell count overflows; reduce input_partitions_per_dim",
            ));
        };
        let total_regions = r_cells
            .checked_mul(t_cells)
            .filter(|&n| n <= MAX_STREAM_REGIONS);
        if total_regions.is_none() {
            return Err(Error::InvalidConfig(
                "streaming session would create too many potential regions; \
                 reduce input_partitions_per_dim (see ingest::MAX_STREAM_REGIONS)",
            ));
        }

        // ── All potential regions from the declared geometry ─────────────
        // Every cell pair is provisioned: emptiness and join signatures are
        // unknowable before arrival, and a region missing here could later
        // deliver a tuple into a cell another region already released —
        // exactly the false positive Principle 1 forbids.
        let orders = maps.preference().orders().to_vec();
        let mut candidates: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(r_cells * t_cells);
        let mut raw_lo = Vec::with_capacity(out_dims);
        let mut raw_hi = Vec::with_capacity(out_dims);
        for r_cell in 0..r_cells {
            let (r_lo, r_hi) = r_geo.slice_bounds(r_cell);
            for t_cell in 0..t_cells {
                let (t_lo, t_hi) = t_geo.slice_bounds(t_cell);
                maps.eval_bounds_into(&r_lo, &r_hi, &t_lo, &t_hi, &mut raw_lo, &mut raw_hi);
                let mut lo = Vec::with_capacity(out_dims);
                let mut hi = Vec::with_capacity(out_dims);
                for j in 0..out_dims {
                    let a = orders[j].orient(raw_lo[j]);
                    let b = orders[j].orient(raw_hi[j]);
                    lo.push(a.min(b));
                    hi.push(a.max(b));
                }
                candidates.push((lo, hi));
            }
        }
        let mut g_lo = candidates[0].0.clone();
        let mut g_hi = candidates[0].1.clone();
        for (lo, hi) in &candidates[1..] {
            for j in 0..out_dims {
                g_lo[j] = g_lo[j].min(lo[j]);
                g_hi[j] = g_hi[j].max(hi[j]);
            }
        }
        let grid = OutputGrid::new(g_lo, g_hi, config.output_cells_per_dim as u16);
        let regions: Arc<[Region]> = candidates
            .into_iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                let (cell_lo, cell_hi) = grid.box_of(&lo, &hi);
                Region {
                    id: i as u32,
                    r_part: (i / t_cells) as u32,
                    t_part: (i % t_cells) as u32,
                    lo,
                    hi,
                    cell_lo,
                    cell_hi,
                    // Counts are unknowable before arrival; zero pins the
                    // benefit/cost rank to geometry + commit state only,
                    // which is what keeps the schedule arrival-independent.
                    n_r: 0,
                    n_t: 0,
                    guaranteed: false,
                }
            })
            .collect();

        // ── Cell tracking + blocker counts (Algorithm 2; blocker geometry
        // switches to vertex projections under a flexible model) ─────────
        let mut store = CellStore::with_model(grid.clone(), maps.dominance().clone());
        for region in regions.iter() {
            for coord in grid.iter_box(region.cell_lo, region.cell_hi) {
                store.track(coord);
            }
        }
        let det = ProgDetermine::new(&store, &regions);

        let mut stats = ExecStats {
            threads_used: match &backend {
                ExecutorBackend::Inline => 1,
                ExecutorBackend::Pooled { threads, .. } => *threads,
            },
            regions_created: regions.len(),
            cells_tracked: store.len(),
            partitions_r: r_cells,
            partitions_t: t_cells,
            ..ExecStats::default()
        };
        stats.lookahead_time = started.elapsed();
        lookahead_span.end();
        trace.counter("regions_created", stats.regions_created as u64);

        let sigma = config.selectivity_hint.unwrap_or(STREAM_DEFAULT_SIGMA);
        let cost_model = CostModel {
            sigma,
            cells_per_dim: config.output_cells_per_dim as u16,
            dims: out_dims,
        };
        let committer = Committer::new(
            CommitterParts {
                regions: Arc::clone(&regions),
                out_dims,
                row_ids: RowIds::Identity,
                store,
                det,
                orders,
                sigma,
                cost_model,
                started,
                trace: trace.clone(),
            },
            config.ordering,
        );

        let inner = Arc::new(Mutex::new(IngestInner {
            r: SourceState::new(r_spec, per_dim),
            t: SourceState::new(t_spec, per_dim),
            t_cells,
            ready: vec![false; regions.len()],
            regions_unlocked: 0,
            tuples_ingested: 0,
            trace,
            last_batch_at: None,
            interarrival: Histogram::default(),
        }));
        let ctx = Arc::new(IngestCtx {
            maps: maps.clone(),
            regions,
            inner: Arc::clone(&inner),
        });
        let driver =
            RegionDriver::for_ingest(committer, ctx, stats, started, token.clone(), backend);
        Ok(IngestSession {
            driver,
            inner,
            _drop_cancel: crate::session::DropCancel(token.clone()),
            token,
            emitted: 0,
            last_progress: 0.0,
        })
    }

    /// Pushes a batch of `(attrs, join_key)` rows, auto-assigning
    /// consecutive row ids per source (the arrival position, matching the
    /// row-id convention of a materialized table). Returns the first
    /// assigned id. Atomic: a batch with any invalid row changes nothing.
    pub fn push(
        &mut self,
        source: SourceId,
        rows: &[(&[f64], u32)],
    ) -> std::result::Result<u32, IngestError> {
        if self.token.is_cancelled() {
            return Err(IngestError::Cancelled);
        }
        let base = {
            let inner = self.inner.lock().expect("ingest state poisoned");
            match source {
                SourceId::R => inner.r.auto_id,
                SourceId::T => inner.t.auto_id,
            }
        };
        let with_ids: Vec<(u32, &[f64], u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, &(attrs, key))| (base + i as u32, attrs, key))
            .collect();
        self.push_with_ids(source, &with_ids)?;
        Ok(base)
    }

    /// Pushes a batch of `(row_id, attrs, join_key)` rows with
    /// caller-chosen stable row ids. Results reference these ids, and the
    /// emission order of the whole session depends only on the id/attr/key
    /// content — never on how rows were batched or interleaved. Atomic: a
    /// batch with any invalid row changes nothing.
    pub fn push_with_ids(
        &mut self,
        source: SourceId,
        rows: &[(u32, &[f64], u32)],
    ) -> std::result::Result<(), IngestError> {
        if self.token.is_cancelled() {
            return Err(IngestError::Cancelled);
        }
        self.inner
            .lock()
            .expect("ingest state poisoned")
            .push_batch(source, rows)
    }

    /// Declares that every future row of `source` is ≥ `watermark` in every
    /// dimension. Cells whose slice lies strictly below the watermark in
    /// some dimension seal immediately, unlocking their regions. Watermarks
    /// must be monotone per dimension.
    pub fn set_watermark(
        &mut self,
        source: SourceId,
        watermark: &[f64],
    ) -> std::result::Result<(), IngestError> {
        if self.token.is_cancelled() {
            return Err(IngestError::Cancelled);
        }
        self.inner
            .lock()
            .expect("ingest state poisoned")
            .set_watermark(source, watermark)
    }

    /// Declares `source` complete: all of its cells seal, and every region
    /// whose opposite cell is sealed unlocks. Idempotent.
    pub fn close(&mut self, source: SourceId) {
        self.inner
            .lock()
            .expect("ingest state poisoned")
            .close(source);
    }

    /// Pulls the next result batch, advancing the readiness-gated region
    /// loop as far as the ingested data allows.
    ///
    /// Progress estimates are normalized exactly like
    /// [`QuerySession::next_batch`](crate::session::QuerySession::next_batch):
    /// clamped to `[0, 1]` and monotone across the session.
    pub fn poll(&mut self) -> IngestPoll {
        if self.token.is_cancelled() {
            return IngestPoll::Complete;
        }
        match self.driver.poll_next() {
            DriverPoll::Event(mut event) => {
                event.normalize_progress(&mut self.last_progress);
                self.emitted += event.tuples.len() as u64;
                IngestPoll::Batch(event)
            }
            DriverPoll::Stalled => IngestPoll::NeedInput,
            DriverPoll::Finished => IngestPoll::Complete,
        }
    }

    /// Drains every batch that is currently deliverable (stops at the
    /// first stall or at completion).
    pub fn drain_ready(&mut self) -> Vec<ResultEvent> {
        let mut out = Vec::new();
        while let IngestPoll::Batch(event) = self.poll() {
            out.push(event);
        }
        out
    }

    /// Total tuples delivered so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// A shareable handle to this session's cancellation flag.
    pub fn cancel_token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// Requests cancellation: `poll` returns [`IngestPoll::Complete`] from
    /// then on, remaining regions are skipped, and in-flight pool workers
    /// stop at their next token check. Safe at any time — including on a
    /// session whose sources were never closed.
    pub fn cancel(&mut self) {
        self.token.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// A snapshot of the statistics accumulated so far (mid-ingest safe).
    pub fn stats_snapshot(&self) -> ExecStats {
        let mut stats = crate::session::SessionStep::stats_snapshot(&self.driver);
        self.fold_ingest_counters(&mut stats);
        stats
    }

    /// Consumes the session and returns its statistics. Unresolved regions
    /// (sources never closed, or an early cancel) flag
    /// [`ExecStats::cancelled`].
    pub fn finish(self) -> ExecStats {
        let inner = self.inner;
        let mut stats = crate::session::SessionStep::finalize(Box::new(self.driver));
        let guard = inner.lock().expect("ingest state poisoned");
        stats.tuples_ingested = guard.tuples_ingested;
        stats.regions_unlocked = guard.regions_unlocked;
        stats.batch_interarrival.merge(&guard.interarrival);
        stats
    }

    fn fold_ingest_counters(&self, stats: &mut ExecStats) {
        let inner = self.inner.lock().expect("ingest state poisoned");
        stats.tuples_ingested = inner.tuples_ingested;
        stats.regions_unlocked = inner.regions_unlocked;
        stats.batch_interarrival.merge(&inner.interarrival);
    }
}

impl std::fmt::Debug for IngestSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestSession")
            .field("emitted", &self.emitted)
            .field("cancelled", &self.token.is_cancelled())
            .finish_non_exhaustive()
    }
}

// Compile-time guarantee that pooled ingest work units can cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IngestCtx>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ProgXe;
    use crate::source::SourceData;
    use progxe_skyline::Preference;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_rows(n: usize, dims: usize, keys: u32, seed: u64) -> Vec<(Vec<f64>, u32)> {
        let mut st = seed;
        (0..n)
            .map(|_| {
                let row: Vec<f64> = (0..dims)
                    .map(|_| (lcg(&mut st) % 1000) as f64 / 10.0)
                    .collect();
                let k = (lcg(&mut st) % keys as u64) as u32;
                (row, k)
            })
            .collect()
    }

    fn spec(dims: usize) -> StreamSpec {
        StreamSpec::new(vec![0.0; dims], vec![100.0; dims]).unwrap()
    }

    fn batch_oracle(
        rows_r: &[(Vec<f64>, u32)],
        rows_t: &[(Vec<f64>, u32)],
        maps: &MapSet,
    ) -> Vec<(u32, u32)> {
        let mut r = SourceData::new(rows_r[0].0.len());
        for (a, k) in rows_r {
            r.push(a, *k);
        }
        let mut t = SourceData::new(rows_t[0].0.len());
        for (a, k) in rows_t {
            t.push(a, *k);
        }
        let out = ProgXe::new(ProgXeConfig::default())
            .run_collect(&r.view(), &t.view(), maps)
            .unwrap();
        let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        ids.sort_unstable();
        ids
    }

    fn drain_all(session: &mut IngestSession) -> Vec<(u32, u32)> {
        session
            .drain_ready()
            .iter()
            .flat_map(|e| e.tuples.iter().map(|t| (t.r_idx, t.t_idx)))
            .collect()
    }

    #[test]
    fn all_at_once_matches_batch_engine_result_set() {
        let rows_r = random_rows(150, 2, 5, 1);
        let rows_t = random_rows(150, 2, 5, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session =
            IngestSession::open(&ProgXeConfig::default(), &maps, spec(2), spec(2)).unwrap();
        let r_refs: Vec<(&[f64], u32)> = rows_r.iter().map(|(a, k)| (a.as_slice(), *k)).collect();
        let t_refs: Vec<(&[f64], u32)> = rows_t.iter().map(|(a, k)| (a.as_slice(), *k)).collect();
        session.push(SourceId::R, &r_refs).unwrap();
        session.push(SourceId::T, &t_refs).unwrap();
        session.close(SourceId::R);
        session.close(SourceId::T);
        let mut ids = drain_all(&mut session);
        assert!(matches!(session.poll(), IngestPoll::Complete));
        let stats = session.finish();
        assert!(!stats.cancelled);
        assert_eq!(stats.tuples_ingested, 300);
        assert!(stats.regions_unlocked > 0);
        ids.sort_unstable();
        assert_eq!(ids, batch_oracle(&rows_r, &rows_t, &maps));
    }

    #[test]
    fn results_flow_before_sources_finish_under_watermarks() {
        // Sorted-by-sum arrival with watermarks: the low cells seal early,
        // so proven-final results must emerge before either close().
        let mut rows_r = random_rows(300, 2, 3, 3);
        let mut rows_t = random_rows(300, 2, 3, 4);
        let by_min = |a: &(Vec<f64>, u32)| a.0.iter().cloned().fold(f64::INFINITY, f64::min);
        rows_r.sort_by(|a, b| by_min(a).total_cmp(&by_min(b)));
        rows_t.sort_by(|a, b| by_min(a).total_cmp(&by_min(b)));
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session =
            IngestSession::open(&ProgXeConfig::default(), &maps, spec(2), spec(2)).unwrap();

        // Push 80% first: the suffix minimum (the tightest sound watermark)
        // then clears the first grid-slice boundary, sealing the low cells.
        let half = 240;
        for side in [SourceId::R, SourceId::T] {
            let rows = if side == SourceId::R {
                &rows_r
            } else {
                &rows_t
            };
            let refs: Vec<(&[f64], u32)> = rows[..half]
                .iter()
                .map(|(a, k)| (a.as_slice(), *k))
                .collect();
            session.push(side, &refs).unwrap();
            // Everything still to come is ≥ the per-dim min of the suffix.
            let mut wm = vec![f64::INFINITY; 2];
            for (a, _) in &rows[half..] {
                for d in 0..2 {
                    wm[d] = wm[d].min(a[d]);
                }
            }
            session.set_watermark(side, &wm).unwrap();
        }
        let mut ids = drain_all(&mut session);
        assert!(
            !ids.is_empty(),
            "watermarks must unlock results before close"
        );

        for side in [SourceId::R, SourceId::T] {
            let rows = if side == SourceId::R {
                &rows_r
            } else {
                &rows_t
            };
            let refs: Vec<(&[f64], u32)> = rows[half..]
                .iter()
                .map(|(a, k)| (a.as_slice(), *k))
                .collect();
            session.push(side, &refs).unwrap();
            session.close(side);
        }
        ids.extend(drain_all(&mut session));
        assert!(matches!(session.poll(), IngestPoll::Complete));
        assert!(!session.finish().cancelled);
        ids.sort_unstable();
        // `push` auto-ids are arrival positions — which match row indices
        // of the (sorted) vectors the oracle materializes.
        assert_eq!(ids.len(), batch_oracle(&rows_r, &rows_t, &maps).len());
        assert_eq!(ids, batch_oracle(&rows_r, &rows_t, &maps));
    }

    #[test]
    fn typed_errors_leave_the_session_usable() {
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session =
            IngestSession::open(&ProgXeConfig::default(), &maps, spec(2), spec(2)).unwrap();

        // Arity.
        assert!(matches!(
            session.push(SourceId::R, &[(&[1.0][..], 0)]),
            Err(IngestError::Arity {
                expected: 2,
                got: 1,
                ..
            })
        ));
        // Out of declared bounds / non-finite.
        assert!(matches!(
            session.push(SourceId::R, &[(&[1.0, 200.0][..], 0)]),
            Err(IngestError::OutOfBounds { dim: 1, .. })
        ));
        assert!(matches!(
            session.push(SourceId::R, &[(&[f64::NAN, 1.0][..], 0)]),
            Err(IngestError::OutOfBounds { dim: 0, .. })
        ));
        // Watermark regression: declare wm then push below it.
        session.set_watermark(SourceId::R, &[50.0, 0.0]).unwrap();
        assert!(matches!(
            session.push(SourceId::R, &[(&[10.0, 5.0][..], 0)]),
            Err(IngestError::RowBelowWatermark { dim: 0, watermark, .. }) if watermark == 50.0
        ));
        // Watermark retreat.
        assert!(matches!(
            session.set_watermark(SourceId::R, &[40.0, 0.0]),
            Err(IngestError::WatermarkRetreat { dim: 0, .. })
        ));
        // Duplicate row ids.
        session
            .push_with_ids(SourceId::T, &[(7, &[1.0, 1.0][..], 0)])
            .unwrap();
        assert!(matches!(
            session.push_with_ids(SourceId::T, &[(7, &[2.0, 2.0][..], 0)]),
            Err(IngestError::DuplicateRow { row_id: 7, .. })
        ));
        // Closed source.
        session.close(SourceId::T);
        assert!(matches!(
            session.push(SourceId::T, &[(&[1.0, 1.0][..], 0)]),
            Err(IngestError::SourceClosed(SourceId::T))
        ));

        // The session still runs to a correct result afterwards.
        session.push(SourceId::R, &[(&[60.0, 1.0][..], 0)]).unwrap();
        session.close(SourceId::R);
        let ids = drain_all(&mut session);
        assert!(matches!(session.poll(), IngestPoll::Complete));
        assert!(!session.finish().cancelled);
        // R row (auto id 0 of R) joins T row id 7 on key 0.
        assert_eq!(ids, vec![(0, 7)]);
    }

    #[test]
    fn poll_needs_input_until_data_arrives() {
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut session = IngestSession::open(
            &ProgXeConfig::default(),
            &maps,
            StreamSpec::new(vec![0.0], vec![10.0]).unwrap(),
            StreamSpec::new(vec![0.0], vec![10.0]).unwrap(),
        )
        .unwrap();
        assert!(matches!(session.poll(), IngestPoll::NeedInput));
        session.push(SourceId::R, &[(&[1.0][..], 0)]).unwrap();
        assert!(matches!(session.poll(), IngestPoll::NeedInput));
        session.close(SourceId::R);
        session.push(SourceId::T, &[(&[2.0][..], 0)]).unwrap();
        session.close(SourceId::T);
        let ids = drain_all(&mut session);
        assert_eq!(ids, vec![(0, 0)]);
        assert!(!session.finish().cancelled);
    }

    #[test]
    fn cancel_on_never_closed_source_finishes_cleanly() {
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session =
            IngestSession::open(&ProgXeConfig::default(), &maps, spec(2), spec(2)).unwrap();
        session.push(SourceId::R, &[(&[1.0, 1.0][..], 0)]).unwrap();
        assert!(matches!(session.poll(), IngestPoll::NeedInput));
        session.cancel();
        assert!(matches!(session.poll(), IngestPoll::Complete));
        let stats = session.finish();
        assert!(stats.cancelled);
        assert!(stats.regions_skipped > 0);
    }

    #[test]
    fn cancelled_session_rejects_further_input_with_a_typed_error() {
        // Long-lived (subscription-style) sessions stay open across many
        // pushes; once their token fires — unsubscribe, disconnect — the
        // producer must get a typed stop signal instead of feeding a
        // session nobody will ever drain.
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session =
            IngestSession::open(&ProgXeConfig::default(), &maps, spec(2), spec(2)).unwrap();
        session.push(SourceId::R, &[(&[1.0, 1.0][..], 0)]).unwrap();
        // Fire the token through a shared handle, the way a watchdog
        // thread would.
        session.cancel_token().cancel();
        assert!(matches!(
            session.push(SourceId::R, &[(&[2.0, 2.0][..], 0)]),
            Err(IngestError::Cancelled)
        ));
        assert!(matches!(
            session.push_with_ids(SourceId::T, &[(0, &[2.0, 2.0][..], 0)]),
            Err(IngestError::Cancelled)
        ));
        assert!(matches!(
            session.set_watermark(SourceId::R, &[5.0, 5.0]),
            Err(IngestError::Cancelled)
        ));
        assert!(matches!(session.poll(), IngestPoll::Complete));
        let stats = session.finish();
        assert!(stats.cancelled, "open-source cancel must flag the stats");
        // The rejected batches never entered the session.
        assert_eq!(stats.tuples_ingested, 1);
    }

    #[test]
    fn watermark_on_a_float_slice_boundary_never_swallows_rows() {
        // Regression: sealing used to compare the watermark against a
        // *recomputed* slice boundary (lo + (s+1)·width), which at float
        // boundaries can sit below the exact value — sealing slot 0 while
        // `slot()` still placed a legal watermark-equal row into it,
        // silently dropping the row from every join. Sealing now uses
        // `slot(watermark)` itself, so admitted rows can never land in a
        // sealed cell.
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let config = ProgXeConfig::default().with_input_partitions(10);
        let lo = 0.1f64;
        let hi = 1.1f64;
        let boundary = lo + (hi - lo) / 10.0; // fl(0.2) = 0.19999999999999998
        let s = || StreamSpec::new(vec![lo], vec![hi]).unwrap();
        let mut session = IngestSession::open(&config, &maps, s(), s()).unwrap();
        session.set_watermark(SourceId::R, &[boundary]).unwrap();
        // Legal (== watermark) row exactly on the computed boundary.
        session.push(SourceId::R, &[(&[boundary][..], 0)]).unwrap();
        session.close(SourceId::R);
        session.push(SourceId::T, &[(&[0.5][..], 0)]).unwrap();
        session.close(SourceId::T);
        let ids = drain_all(&mut session);
        assert_eq!(ids, vec![(0, 0)], "boundary row must survive to the join");
        assert!(!session.finish().cancelled);
    }

    #[test]
    fn max_row_id_does_not_overflow_auto_ids() {
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session =
            IngestSession::open(&ProgXeConfig::default(), &maps, spec(2), spec(2)).unwrap();
        session
            .push_with_ids(SourceId::R, &[(u32::MAX, &[1.0, 1.0][..], 0)])
            .unwrap();
        // A later auto-id push saturates instead of wrapping to 0 and
        // colliding; the collision surfaces as a typed error, not a panic.
        assert!(matches!(
            session.push(SourceId::R, &[(&[2.0, 2.0][..], 0)]),
            Err(IngestError::DuplicateRow {
                row_id: u32::MAX,
                ..
            })
        ));
    }

    #[test]
    fn open_rejects_oversized_streaming_grids() {
        let maps = MapSet::pairwise_sum(4, Preference::all_lowest(4));
        let err = IngestSession::open(
            &ProgXeConfig::default().with_input_partitions(8),
            &maps,
            spec(4),
            spec(4),
        );
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn stream_spec_validation() {
        assert!(StreamSpec::new(vec![], vec![]).is_err());
        assert!(StreamSpec::new(vec![0.0], vec![0.0, 1.0]).is_err());
        assert!(StreamSpec::new(vec![2.0], vec![1.0]).is_err());
        assert!(StreamSpec::new(vec![f64::NAN], vec![1.0]).is_err());
        assert!(StreamSpec::new(vec![0.0], vec![f64::INFINITY]).is_err());
        let s = StreamSpec::new(vec![0.0, 1.0], vec![5.0, 1.0]).unwrap();
        assert_eq!(s.dims(), 2);
    }
}
