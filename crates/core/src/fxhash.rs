//! A minimal Fx-style hasher for integer-keyed maps on hot paths.
//!
//! The executor keys hash maps by join values and packed cell coordinates —
//! small integers for which SipHash (std's default) is needlessly slow. This
//! is the well-known `FxHash` multiply-rotate scheme (as used in rustc),
//! implemented locally to keep the dependency set to the approved list.
//! HashDoS resistance is irrelevant here: keys are derived from data we
//! generate or grid geometry, not adversarial input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher specialized for small integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as u32)));
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Sanity: the hasher should not collapse a small integer range.
        let mut hashes: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            hashes.insert(h.finish());
        }
        assert!(hashes.len() > 9_990);
    }

    #[test]
    fn byte_writes_work() {
        let mut h = FxHasher::default();
        h.write(b"hello world, this is more than eight bytes");
        assert_ne!(h.finish(), 0);
    }
}
