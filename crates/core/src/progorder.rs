//! The ProgOrder priority queue (Section IV-D, Algorithm 1).
//!
//! Root regions of the EL-Graph are ranked by
//! `rank(R) = Benefit(R) / Cost(R)` (Equation 8) and processed best-first.
//! Rank updates use lazy invalidation: each region carries a generation
//! counter; re-ranking pushes a fresh entry and stale pops are skipped.
//! This keeps the queue `O(log n)` per operation without decrease-key.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry {
    rank: f64,
    generation: u32,
    region: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on rank; deterministic tie-break on region id (lower id
        // first) so runs are reproducible.
        self.rank
            .total_cmp(&other.rank)
            .then_with(|| other.region.cmp(&self.region))
    }
}

/// Max-priority queue over region ranks with lazy re-ranking.
#[derive(Debug)]
pub struct ProgOrderQueue {
    heap: BinaryHeap<Entry>,
    generation: Vec<u32>,
    queued: Vec<bool>,
}

impl ProgOrderQueue {
    /// Creates an empty queue for `n` regions.
    pub fn new(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            generation: vec![0; n],
            queued: vec![false; n],
        }
    }

    /// Inserts a region with its current rank (idempotent per generation).
    pub fn push(&mut self, region: u32, rank: f64) {
        let idx = region as usize;
        self.generation[idx] += 1;
        self.queued[idx] = true;
        self.heap.push(Entry {
            rank,
            generation: self.generation[idx],
            region,
        });
    }

    /// Re-ranks a region already in the queue (Algorithm 1 line 13). The
    /// previous entry becomes stale and is skipped on pop.
    ///
    /// Also serves the readiness-gated schedule's *stall*: a just-popped
    /// region whose input cells are not sealed yet is pushed back at its
    /// unchanged rank. Rank and the id tie-break being equal, it wins the
    /// next pop again (unless a genuinely better region arrived meanwhile),
    /// so stalls never reorder the schedule.
    pub fn update(&mut self, region: u32, rank: f64) {
        self.push(region, rank);
    }

    /// Whether the region currently has a live entry.
    pub fn contains(&self, region: u32) -> bool {
        self.queued[region as usize]
    }

    /// Pops the best-ranked live region, skipping stale entries.
    pub fn pop(&mut self) -> Option<u32> {
        self.pop_entry().map(|(region, _)| region)
    }

    /// Pops the best-ranked live region together with the rank it was
    /// queued under (which may be stale relative to the current benefit
    /// model — the executor rechecks dirty regions on pop).
    pub fn pop_entry(&mut self) -> Option<(u32, f64)> {
        while let Some(e) = self.heap.pop() {
            let idx = e.region as usize;
            if self.queued[idx] && e.generation == self.generation[idx] {
                self.queued[idx] = false;
                return Some((e.region, e.rank));
            }
        }
        None
    }

    /// True when no live entry remains.
    pub fn is_empty(&mut self) -> bool {
        // Drain stale prefix so the answer is accurate.
        while let Some(e) = self.heap.peek() {
            let idx = e.region as usize;
            if self.queued[idx] && e.generation == self.generation[idx] {
                return false;
            }
            self.heap.pop();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_rank_order() {
        let mut q = ProgOrderQueue::new(3);
        q.push(0, 1.0);
        q.push(1, 5.0);
        q.push(2, 3.0);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn update_supersedes_old_entry() {
        let mut q = ProgOrderQueue::new(2);
        q.push(0, 10.0);
        q.push(1, 5.0);
        q.update(0, 1.0); // demote region 0
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_on_region_id() {
        let mut q = ProgOrderQueue::new(3);
        q.push(2, 1.0);
        q.push(0, 1.0);
        q.push(1, 1.0);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn contains_tracks_membership() {
        let mut q = ProgOrderQueue::new(1);
        assert!(!q.contains(0));
        q.push(0, 1.0);
        assert!(q.contains(0));
        q.pop();
        assert!(!q.contains(0));
    }

    #[test]
    fn is_empty_skips_stale_entries() {
        let mut q = ProgOrderQueue::new(1);
        q.push(0, 1.0);
        q.update(0, 2.0);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some(0));
        assert!(q.is_empty());
    }

    #[test]
    fn stalled_pop_requeue_preserves_pop_position() {
        let mut q = ProgOrderQueue::new(3);
        q.push(0, 1.0);
        q.push(1, 5.0);
        q.push(2, 3.0);
        // Park the winner (a stalled gated pop) and pop again: same winner.
        let (top, rank) = q.pop_entry().unwrap();
        assert_eq!(top, 1);
        q.update(top, rank);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    fn nan_free_ranks_assumed_but_zero_ok() {
        let mut q = ProgOrderQueue::new(2);
        q.push(0, 0.0);
        q.push(1, -1.0);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
    }
}
