//! Join-value signatures per input partition (Section III-A).
//!
//! "To avoid tuple-level comparison, we maintain for each partition the
//! signature of the list of join domain values of the tuples contained in
//! the partition. These signatures can be efficiently maintained by either
//! Bloom Filter or a bit vector."
//!
//! The *exact* bitset realization guarantees that overlapping signatures
//! imply at least one join result — the property region-level dominance
//! pruning relies on ("guaranteed to be populated"). The Bloom realization
//! trades that guarantee for O(bits) memory independent of the join domain;
//! overlap then only means "may join", and the executor must weaken its
//! pruning accordingly.

use crate::config::SignatureConfig;

/// Signature of the join-domain values present in one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinSignature {
    /// Exact membership bitset over the join domain `0..domain_size`.
    Exact(BitSet),
    /// Bloom filter: 2 hash probes per value.
    Bloom(BitSet),
}

impl JoinSignature {
    /// Creates an empty signature of the configured kind for a join domain
    /// of `domain_size` values.
    pub fn empty(config: SignatureConfig, domain_size: usize) -> Self {
        match config {
            SignatureConfig::Exact => JoinSignature::Exact(BitSet::new(domain_size)),
            SignatureConfig::Bloom { bits } => JoinSignature::Bloom(BitSet::new(bits.max(64))),
        }
    }

    /// Registers a join value.
    pub fn insert(&mut self, value: u32) {
        match self {
            JoinSignature::Exact(bits) => bits.set(value as usize),
            JoinSignature::Bloom(bits) => {
                let (h1, h2) = bloom_hashes(value, bits.capacity());
                bits.set(h1);
                bits.set(h2);
            }
        }
    }

    /// Whether the value may be present. Exact signatures answer precisely;
    /// Bloom signatures may report false positives.
    pub fn maybe_contains(&self, value: u32) -> bool {
        match self {
            JoinSignature::Exact(bits) => bits.get(value as usize),
            JoinSignature::Bloom(bits) => {
                let (h1, h2) = bloom_hashes(value, bits.capacity());
                bits.get(h1) && bits.get(h2)
            }
        }
    }

    /// Whether two partitions may share a join value. For exact signatures
    /// a `true` answer is a *guarantee* that at least one join pair exists.
    pub fn overlaps(&self, other: &JoinSignature) -> bool {
        match (self, other) {
            (JoinSignature::Exact(a), JoinSignature::Exact(b)) => a.intersects(b),
            (JoinSignature::Bloom(a), JoinSignature::Bloom(b)) => a.intersects(b),
            // Mixed kinds cannot arise from one executor run; conservatively
            // report overlap so no join results are ever lost.
            _ => true,
        }
    }

    /// True when overlap answers are exact (no false positives).
    pub fn is_exact(&self) -> bool {
        matches!(self, JoinSignature::Exact(_))
    }
}

fn bloom_hashes(value: u32, capacity: usize) -> (usize, usize) {
    // Two independent multiplicative hashes; capacity is ≥ 64.
    let v = value as u64;
    let h1 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
    let h2 = v.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 17;
    (h1 as usize % capacity, h2 as usize % capacity)
}

/// A plain fixed-capacity bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates a bitset able to hold `capacity` bits (all clear).
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64).max(1)],
            capacity: capacity.max(1),
        }
    }

    /// Bit capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= capacity`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i` (out-of-range reads return `false`).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// True when any bit is set in both sets.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get() {
        let mut b = BitSet::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert!(!b.get(500), "out of range reads are false");
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn bitset_intersects() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(70);
        b.set(71);
        assert!(!a.intersects(&b));
        b.set(70);
        assert!(a.intersects(&b));
    }

    #[test]
    fn exact_signature_is_precise() {
        let mut a = JoinSignature::empty(SignatureConfig::Exact, 1000);
        let mut b = JoinSignature::empty(SignatureConfig::Exact, 1000);
        a.insert(5);
        a.insert(999);
        b.insert(6);
        assert!(!a.overlaps(&b));
        b.insert(999);
        assert!(a.overlaps(&b));
        assert!(a.maybe_contains(5));
        assert!(!a.maybe_contains(6));
        assert!(a.is_exact());
    }

    #[test]
    fn bloom_signature_has_no_false_negatives() {
        let mut s = JoinSignature::empty(SignatureConfig::Bloom { bits: 256 }, 0);
        for v in 0..50 {
            s.insert(v * 17);
        }
        for v in 0..50 {
            assert!(s.maybe_contains(v * 17), "false negative at {}", v * 17);
        }
        assert!(!s.is_exact());
    }

    #[test]
    fn bloom_overlap_superset_of_true_overlap() {
        let mut a = JoinSignature::empty(SignatureConfig::Bloom { bits: 1024 }, 0);
        let mut b = JoinSignature::empty(SignatureConfig::Bloom { bits: 1024 }, 0);
        a.insert(42);
        b.insert(42);
        assert!(a.overlaps(&b), "shared value must overlap");
    }

    #[test]
    fn empty_signatures_do_not_overlap_exact() {
        let a = JoinSignature::empty(SignatureConfig::Exact, 64);
        let b = JoinSignature::empty(SignatureConfig::Exact, 64);
        assert!(!a.overlaps(&b));
    }
}
