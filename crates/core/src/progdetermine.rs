//! Progressive result determination (Section V, Algorithm 2).
//!
//! Decides *when* the tuples of an output cell are safe to emit. The paper's
//! Principle 1 requires, for a cell `O_h`:
//!
//! 1. all tuples mapping to `O_h` have been generated and compared;
//! 2. every cell that would fully dominate `O_h` is guaranteed empty;
//! 3. no future tuple can land in a cell that partially dominates `O_h`.
//!
//! The paper maintains per-cell lists (`RegCount`, `Dom`, `DomBy`,
//! `Dependent`, `Dependence`) and then replaces them by dedicated counts.
//! We realize the counts per *region* (see DESIGN.md §5.1): an unresolved
//! region `R'` **blocks** cell `c` iff `R'` could still deliver a tuple into
//! some cell `a ⪯ c` — geometrically iff `R'.cell_lo ⪯ c`, since the box
//! cell `aᵢ = min(cᵢ, R'.cell_hiᵢ)` then witnesses the dominator. A single
//! per-cell counter therefore covers all three conditions: condition 2's
//! "populated full dominator" case instead *kills* the cell the moment it is
//! observed (handled in [`crate::cells`]).
//!
//! When the last blocker of a live, non-dead cell resolves, its surviving
//! tuples are final skyline members — they are emitted immediately.
//!
//! ## Flexible skylines (F-dominance)
//!
//! Under a flexible model (see [`crate::fdom`]) the geometric blocker test
//! above is **incomplete**: an F-dominator may come from a region whose box
//! is Pareto-incomparable to the cell (trade-offs are exactly what weight
//! constraints permit). The blocker relation is therefore strengthened:
//! region `R'` blocks cell `c` iff a tuple of `R'` could *weakly
//! F-dominate* some tuple of `c` — conservatively, iff
//! `vₖ·LOWER(R') ≤ vₖ·upper_corner(c)` at **every** vertex `vₖ` of the
//! weight polytope (weights are non-negative, so the box corners bound the
//! dot products). Component-wise `≤` between vertex projections is exactly
//! weak F-dominance, so blocker counting stays a dominance count — just in
//! projection space. Every Pareto blocker is an F-blocker (unit-vector
//! reasoning), so cells emit no earlier than under Pareto: emission stays
//! no-retraction, merely later. On release the cell's survivors pass
//! [`CellStore::filter_emitted`], which removes F-dominated tuples; by the
//! strengthened counts no unresolved region can still deliver an
//! F-dominator for anything emitted.

use crate::cells::CellStore;
use crate::lookahead::Region;
use crate::output_grid::weak_leq;
use progxe_skyline::PointStore;

/// A batch of tuples proven final, emitted from one cell.
#[derive(Debug)]
pub struct EmittedCell {
    /// Index of the emitting cell in the [`CellStore`].
    pub cell_idx: u32,
    /// `(r_idx, t_idx)` of each emitted tuple.
    pub ids: Vec<(u32, u32)>,
    /// Oriented output values, parallel to `ids`.
    pub points: PointStore,
}

/// Precomputed vertex projections realizing the flexible blocker relation:
/// region `rid` blocks cell `c` iff
/// `region_proj[rid·k ..][j] ≤ cell_proj[c·k ..][j]` for every vertex `j`.
#[derive(Debug)]
struct FdomBlockerIndex {
    /// Vertices of the weight polytope.
    k: usize,
    /// `regions × k` projections of each region's oriented lower bound.
    region_proj: Vec<f64>,
    /// `cells × k` projections of each cell's oriented upper corner.
    cell_proj: Vec<f64>,
}

impl FdomBlockerIndex {
    #[inline]
    fn blocks(&self, rid: u32, cell_idx: u32) -> bool {
        let r = &self.region_proj[rid as usize * self.k..(rid as usize + 1) * self.k];
        let c = &self.cell_proj[cell_idx as usize * self.k..(cell_idx as usize + 1) * self.k];
        r.iter().zip(c).all(|(x, y)| x <= y)
    }
}

/// Leaf size of the blocker-count tree: below this, points are tested
/// directly.
const DOM_TREE_LEAF: usize = 16;

/// Static spatial index over region projections answering *dominance
/// counts* — `|{r : proj(r) ⪯ q component-wise}|` — without touching every
/// region per cell. A balanced kd-tree (median split, cycling coordinate)
/// whose nodes carry the subtree's bounding box and size: a query prunes
/// subtrees whose box minimum already violates `⪯ q`, counts subtrees whose
/// box maximum satisfies it wholesale, and only descends through straddling
/// nodes. This is the generalization of the Pareto dense prefix-sum trick
/// to arbitrary (projection-space) coordinates, replacing the PR 5
/// `O(regions × cells × vertices)` double loop.
///
/// Exactness: leaves test the same `x ≤ y` predicate as
/// [`FdomBlockerIndex::blocks`]; subtree-wide counting is only taken when
/// the box maximum (`all ≤ q`) proves it, and subtrees containing any NaN
/// projection never take that shortcut (NaN compares un-≤, so such regions
/// must count as non-blocking — the leaf test gets them right).
#[derive(Debug)]
struct DomCountTree {
    k: usize,
    /// Region projections permuted into tree order (`n × k`).
    pts: Vec<f64>,
    nodes: Vec<DomTreeNode>,
    /// Per-node bounding boxes: `lo` then `hi`, `2k` values per node.
    bbox: Vec<f64>,
    /// Per-node "subtree contains a NaN projection" flag.
    has_nan: Vec<bool>,
}

#[derive(Debug)]
struct DomTreeNode {
    start: u32,
    end: u32,
    /// `u32::MAX` marks a leaf.
    left: u32,
    right: u32,
}

impl DomCountTree {
    fn build(k: usize, src: &[f64]) -> Self {
        let n = src.len() / k;
        let mut tree = Self {
            k,
            pts: Vec::with_capacity(src.len()),
            nodes: Vec::new(),
            bbox: Vec::new(),
            has_nan: Vec::new(),
        };
        if n == 0 {
            return tree;
        }
        let mut idx: Vec<u32> = (0..n as u32).collect();
        tree.build_node(src, &mut idx, 0, 0);
        // Materialize points in tree order so leaves scan contiguously.
        for &r in &idx {
            let row = &src[r as usize * k..(r as usize + 1) * k];
            tree.pts.extend_from_slice(row);
        }
        tree
    }

    /// Builds the subtree over `idx[..]` (a sub-slice whose first element
    /// sits at `base` in the final permutation); returns its node id.
    fn build_node(&mut self, src: &[f64], idx: &mut [u32], base: usize, depth: usize) -> u32 {
        let k = self.k;
        let ni = self.nodes.len() as u32;
        self.nodes.push(DomTreeNode {
            start: base as u32,
            end: (base + idx.len()) as u32,
            left: u32::MAX,
            right: u32::MAX,
        });
        // Bounding box + NaN flag over the range.
        let lo_at = self.bbox.len();
        self.bbox
            .extend_from_slice(&src[idx[0] as usize * k..(idx[0] as usize + 1) * k]);
        self.bbox
            .extend_from_slice(&src[idx[0] as usize * k..(idx[0] as usize + 1) * k]);
        let mut nan = false;
        for &r in idx.iter() {
            let row = &src[r as usize * k..(r as usize + 1) * k];
            for (j, &v) in row.iter().enumerate() {
                nan |= v.is_nan();
                self.bbox[lo_at + j] = self.bbox[lo_at + j].min(v);
                self.bbox[lo_at + k + j] = self.bbox[lo_at + k + j].max(v);
            }
        }
        self.has_nan.push(nan);
        if idx.len() > DOM_TREE_LEAF {
            let dim = depth % k;
            let mid = idx.len() / 2;
            idx.select_nth_unstable_by(mid, |&a, &b| {
                src[a as usize * k + dim].total_cmp(&src[b as usize * k + dim])
            });
            let (lo_half, hi_half) = idx.split_at_mut(mid);
            let left = self.build_node(src, lo_half, base, depth + 1);
            let right = self.build_node(src, hi_half, base + mid, depth + 1);
            self.nodes[ni as usize].left = left;
            self.nodes[ni as usize].right = right;
        }
        ni
    }

    /// Counts stored points `p` with `p ⪯ q` component-wise. `ops` advances
    /// by nodes visited plus leaf points tested (the measured counterpart
    /// of the naive loop's `regions` per query).
    fn count_dominated(&self, q: &[f64], ops: &mut u64) -> u32 {
        if self.nodes.is_empty() {
            return 0;
        }
        self.count_node(0, q, ops)
    }

    fn count_node(&self, ni: u32, q: &[f64], ops: &mut u64) -> u32 {
        *ops += 1;
        let k = self.k;
        let node = &self.nodes[ni as usize];
        let bb = &self.bbox[ni as usize * 2 * k..(ni as usize + 1) * 2 * k];
        let (lo, hi) = bb.split_at(k);
        if lo.iter().zip(q).any(|(l, qv)| l > qv) {
            return 0;
        }
        if !self.has_nan[ni as usize] && hi.iter().zip(q).all(|(h, qv)| h <= qv) {
            return node.end - node.start;
        }
        if node.left == u32::MAX {
            let mut c = 0u32;
            for r in node.start..node.end {
                *ops += 1;
                let p = &self.pts[r as usize * k..(r as usize + 1) * k];
                if p.iter().zip(q).all(|(x, y)| x <= y) {
                    c += 1;
                }
            }
            return c;
        }
        self.count_node(node.left, q, ops) + self.count_node(node.right, q, ops)
    }
}

/// Count-based progressive-determination state.
#[derive(Debug)]
pub struct ProgDetermine {
    /// Blocker count per tracked cell (parallel to the cell store).
    blockers: Vec<u32>,
    /// Cells not yet emitted or confirmed dead, scanned at each resolution.
    live: Vec<u32>,
    /// Flexible-model blocker geometry (`None` under Pareto). The same
    /// projections decide both the initial counts and every decrement, so
    /// the two can never disagree.
    fdom: Option<FdomBlockerIndex>,
    /// Work (tree nodes visited + leaf points tested) spent computing the
    /// initial flexible blocker counts; `0` under Pareto. The retired naive
    /// loop costs `regions × cells` — benches assert this stays far below.
    flexible_blocker_ops: u64,
    emitted_cells: usize,
    emitted_tuples: usize,
}

/// Dense-grid size up to which blocker counts are computed by prefix sums.
const DENSE_PREFIX_BUDGET: u64 = 8 << 20;

impl ProgDetermine {
    /// Computes initial blocker counts.
    ///
    /// `blockers(c) = |{R : R.cell_lo ⪯ c}|` is a d-dimensional dominance
    /// count, so for moderate grids it is computed in `O(k^d · d + R)` by
    /// scattering each region's box corner into a dense grid and running a
    /// prefix sum along every dimension — instead of the naive
    /// `O(cells × regions)` double loop (kept as a fallback for very fine
    /// grids).
    pub fn new(store: &CellStore, regions: &[Region]) -> Self {
        // Flexible model: blockers are counted in vertex-projection space
        // (see the module docs) — the dense-prefix trick below is
        // coordinate-Pareto-specific and does not apply.
        if let Some(fdom) = store.model().as_flexible() {
            let k = fdom.vertex_count();
            let mut region_proj = Vec::with_capacity(regions.len() * k);
            let mut buf = Vec::with_capacity(k);
            for (i, region) in regions.iter().enumerate() {
                // `blocks()` is indexed by `region.id` (that is what
                // `resolve_region` receives), so the slice must be densely
                // id-ordered — enforced here in release builds too, since a
                // mismatch would silently corrupt blocker counts.
                assert_eq!(
                    region.id as usize, i,
                    "ProgDetermine requires regions in dense id order"
                );
                fdom.project_into(&region.lo, &mut buf);
                region_proj.extend_from_slice(&buf);
            }
            let mut cell_proj = Vec::with_capacity(store.len() * k);
            let mut corner = Vec::new();
            for (_, cell) in store.iter() {
                store.grid().upper_corner_into(cell.coord(), &mut corner);
                fdom.project_into(&corner, &mut buf);
                cell_proj.extend_from_slice(&buf);
            }
            let index = FdomBlockerIndex {
                k,
                region_proj,
                cell_proj,
            };
            // Initial counts are dominance counts in projection space;
            // answer each cell's query through a kd-tree over the region
            // projections instead of the retired `regions × cells × k`
            // double loop. Decrements in `resolve_region` still use
            // `index.blocks` — the tree and the predicate share the same
            // projections, so the counts cannot disagree.
            let tree = DomCountTree::build(k, &index.region_proj);
            let mut blockers = vec![0u32; store.len()];
            let mut ops = 0u64;
            for (idx, _) in store.iter() {
                let q = &index.cell_proj[idx as usize * k..(idx as usize + 1) * k];
                blockers[idx as usize] = tree.count_dominated(q, &mut ops);
            }
            let live: Vec<u32> = store
                .iter()
                .filter(|(_, c)| !c.is_dead())
                .map(|(i, _)| i)
                .collect();
            return Self {
                blockers,
                live,
                fdom: Some(index),
                flexible_blocker_ops: ops,
                emitted_cells: 0,
                emitted_tuples: 0,
            };
        }

        let grid = store.grid();
        let dims = grid.dims();
        let k = grid.cells_per_dim() as u64;
        let volume = k.checked_pow(dims as u32);
        let mut blockers = vec![0u32; store.len()];
        match volume {
            Some(v) if v <= DENSE_PREFIX_BUDGET => {
                let k = k as usize;
                let mut dense = vec![0u32; v as usize];
                let linear = |coord: &crate::output_grid::Coord| -> usize {
                    let mut idx = 0usize;
                    for d in (0..dims).rev() {
                        idx = idx * k + coord[d] as usize;
                    }
                    idx
                };
                for region in regions {
                    dense[linear(&region.cell_lo)] += 1;
                }
                // Prefix-sum along each dimension: after dimension `d`'s
                // pass, dense[c] counts regions with lo ⪯ c on dims 0..=d.
                let mut stride = 1usize;
                for _ in 0..dims {
                    #[allow(clippy::manual_is_multiple_of)] // `% k > 0` reads as "coord_d > 0"
                    for i in 0..dense.len() {
                        if (i / stride) % k > 0 {
                            dense[i] += dense[i - stride];
                        }
                    }
                    stride *= k;
                }
                for (idx, cell) in store.iter() {
                    blockers[idx as usize] = dense[linear(cell.coord())];
                }
            }
            _ => {
                for region in regions {
                    for (idx, cell) in store.iter() {
                        if weak_leq(&region.cell_lo, cell.coord(), dims) {
                            blockers[idx as usize] += 1;
                        }
                    }
                }
            }
        }
        let live: Vec<u32> = store
            .iter()
            .filter(|(_, c)| !c.is_dead())
            .map(|(i, _)| i)
            .collect();
        Self {
            blockers,
            live,
            fdom: None,
            flexible_blocker_ops: 0,
            emitted_cells: 0,
            emitted_tuples: 0,
        }
    }

    /// Current blocker count of a cell (diagnostics / benefit model).
    #[inline]
    pub fn blockers_of(&self, cell_idx: u32) -> u32 {
        self.blockers[cell_idx as usize]
    }

    /// Work spent on the initial flexible blocker counts (kd-tree node
    /// visits plus leaf point tests); `0` under Pareto. Benches compare
    /// this against the `regions × cells` cost of the retired naive loop.
    pub fn flexible_blocker_ops(&self) -> u64 {
        self.flexible_blocker_ops
    }

    /// Cells emitted so far.
    pub fn emitted_cells(&self) -> usize {
        self.emitted_cells
    }

    /// Tuples emitted so far.
    pub fn emitted_tuples(&self) -> usize {
        self.emitted_tuples
    }

    /// Cells still awaiting blockers (diagnostics).
    pub fn live_cells(&self) -> usize {
        self.live.len()
    }

    /// Resolves one region — processed *or* discarded — decrementing the
    /// blocker count of every cell it blocks. Cells whose count reaches
    /// zero are finalized: dead cells are dropped, all others emit their
    /// surviving tuples into `out`.
    ///
    /// Must be called exactly once per region, *after* the region's tuples
    /// (if any) have been inserted into `store`.
    pub fn resolve_region(
        &mut self,
        region: &Region,
        store: &mut CellStore,
        out: &mut Vec<EmittedCell>,
    ) {
        let dims = store.grid().dims();
        let mut i = 0;
        while i < self.live.len() {
            let idx = self.live[i];
            let cell = store.cell(idx);
            // Dead cells can be retired regardless of their counts.
            if cell.is_dead() {
                self.live.swap_remove(i);
                continue;
            }
            // The decrement predicate must be *identical* to the one the
            // initial counts were computed with.
            let blocks = match &self.fdom {
                Some(index) => index.blocks(region.id, idx),
                None => weak_leq(&region.cell_lo, cell.coord(), dims),
            };
            if !blocks {
                i += 1;
                continue;
            }
            let count = &mut self.blockers[idx as usize];
            debug_assert!(*count > 0, "blocker underflow on cell {idx}");
            *count -= 1;
            if *count == 0 {
                self.live.swap_remove(i);
                let (mut ids, mut points) = store.take_emitted(idx);
                // Flexible model: drop F-dominated survivors (no-op under
                // Pareto). Everything that could still F-dominate them is
                // already in the store — that is what the strengthened
                // blocker counts guarantee.
                store.filter_emitted(&mut ids, &mut points);
                if !ids.is_empty() {
                    self.emitted_cells += 1;
                    self.emitted_tuples += ids.len();
                    out.push(EmittedCell {
                        cell_idx: idx,
                        ids,
                        points,
                    });
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_grid::{Coord, OutputGrid, MAX_DIMS};

    fn coord(x: u16, y: u16) -> Coord {
        let mut c: Coord = [0; MAX_DIMS];
        c[0] = x;
        c[1] = y;
        c
    }

    /// Region with the given inclusive cell box (other fields immaterial).
    fn region(id: u32, lo: (u16, u16), hi: (u16, u16)) -> Region {
        Region {
            id,
            r_part: 0,
            t_part: 0,
            lo: vec![lo.0 as f64, lo.1 as f64],
            hi: vec![hi.0 as f64 + 1.0, hi.1 as f64 + 1.0],
            cell_lo: coord(lo.0, lo.1),
            cell_hi: coord(hi.0, hi.1),
            n_r: 1,
            n_t: 1,
            guaranteed: true,
        }
    }

    fn store_with_regions(regions: &[Region]) -> CellStore {
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut store = CellStore::new(grid.clone());
        for r in regions {
            for c in grid.iter_box(r.cell_lo, r.cell_hi) {
                store.track(c);
            }
        }
        store
    }

    #[test]
    fn initial_blockers_count_shadowing_regions() {
        // Region A at (0,0)-(1,1); region B at (2,2)-(3,3). A's shadow
        // covers B's cells; B's shadow does not reach A's.
        let a = region(0, (0, 0), (1, 1));
        let b = region(1, (2, 2), (3, 3));
        let store = store_with_regions(&[a.clone(), b.clone()]);
        let det = ProgDetermine::new(&store, &[a, b]);
        let a_cell = store.find(&coord(0, 0)).unwrap();
        let b_cell = store.find(&coord(2, 2)).unwrap();
        assert_eq!(det.blockers_of(a_cell), 1, "A's cells blocked only by A");
        assert_eq!(det.blockers_of(b_cell), 2, "B's cells blocked by both");
    }

    #[test]
    fn cells_emit_when_last_blocker_resolves() {
        // B sits directly "above" A in dim 1, sharing dim-0 columns: A's
        // cells can partially (not fully) dominate B's, so B's cells stay
        // alive but must wait for both regions.
        let a = region(0, (0, 0), (1, 1));
        let b = region(1, (0, 3), (1, 4));
        let regions = [a.clone(), b.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        let b_cell = store.find(&coord(0, 3)).unwrap();
        assert_eq!(det.blockers_of(b_cell), 2, "blocked by A and B");

        // A's tuple does not dominate B's (trade-off in dim 0).
        assert!(store.insert(0, 0, &[0.9, 0.5]));
        assert!(store.insert(1, 1, &[0.5, 3.5]));
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        // A's own cells emit now (blockers 1→0); B's cells drop to 1.
        assert!(out.iter().any(|e| e.ids.contains(&(0, 0))));
        assert_eq!(det.blockers_of(b_cell), 1);
        assert!(!out.iter().any(|e| e.ids.contains(&(1, 1))), "B not ready");

        out.clear();
        det.resolve_region(&b, &mut store, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ids, vec![(1, 1)]);
    }

    #[test]
    fn dead_region_box_never_emits_dominated_tuples() {
        let a = region(0, (0, 0), (1, 1));
        let b = region(1, (2, 2), (3, 3));
        let regions = [a.clone(), b.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        // A's tuple fully dominates B's whole box; B's tuple is rejected.
        assert!(store.insert(0, 0, &[0.5, 0.5]));
        assert!(!store.insert(1, 1, &[2.5, 2.4]));
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        assert!(out.iter().any(|e| e.ids.contains(&(0, 0))));
        out.clear();
        det.resolve_region(&b, &mut store, &mut out);
        assert!(out.is_empty(), "B's box is dead — nothing to emit");
    }

    #[test]
    fn non_overlapping_regions_emit_independently() {
        // A at rows 0-1, cols 0-1; B shares no shadow: place B down-left?
        // In 2-d any two boxes interact unless separated on both axes in
        // opposite directions: put A at (0,8)-(1,9), B at (8,0)-(9,1).
        let a = region(0, (0, 8), (1, 9));
        let b = region(1, (8, 0), (9, 1));
        let regions = [a.clone(), b.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        let a_cell = store.find(&coord(0, 8)).unwrap();
        let b_cell = store.find(&coord(8, 0)).unwrap();
        assert_eq!(det.blockers_of(a_cell), 1);
        assert_eq!(det.blockers_of(b_cell), 1);

        assert!(store.insert(7, 7, &[8.5, 0.5])); // B's box
        let mut out = Vec::new();
        det.resolve_region(&b, &mut store, &mut out);
        assert_eq!(out.len(), 1, "B emits immediately, before A resolves");
        assert_eq!(out[0].ids, vec![(7, 7)]);
    }

    #[test]
    fn dead_cells_never_emit() {
        let a = region(0, (0, 0), (9, 9));
        let regions = [a.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        assert!(store.insert(0, 0, &[0.5, 0.5]));
        assert!(!store.insert(1, 1, &[5.5, 5.5]), "killed by full dominance");
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        let all: Vec<(u32, u32)> = out.iter().flat_map(|e| e.ids.iter().copied()).collect();
        assert_eq!(all, vec![(0, 0)]);
    }

    #[test]
    fn flexible_model_blocks_across_pareto_incomparable_boxes() {
        use crate::fdom::{DominanceModel, FDominance, WeightConstraint};
        use crate::output_grid::OutputGrid;
        // A at cells (0,8)-(1,9), B at (8,0)-(9,1): Pareto-independent
        // (each emits without waiting for the other — see
        // `non_overlapping_regions_emit_independently`). Under weights
        // confined to w₀ ∈ [0.45, 0.55] a tuple of A *can* F-dominate a
        // tuple of B — (0.5, 8.5) scores {4.9, 4.1} at the two vertices
        // against (9.5, 1.5)'s {5.1, 5.9} — so under the flexible model
        // B's cells must additionally wait for A.
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.45),
                WeightConstraint::at_most(2, 0, 0.55),
            ],
        )
        .unwrap();
        let a = region(0, (0, 8), (1, 9));
        let b = region(1, (8, 0), (9, 1));
        let regions = [a.clone(), b.clone()];
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut store = CellStore::with_model(grid.clone(), DominanceModel::flexible(fdom));
        for r in &regions {
            for c in grid.iter_box(r.cell_lo, r.cell_hi) {
                store.track(c);
            }
        }
        let mut det = ProgDetermine::new(&store, &regions);
        let b_cell = store.find(&coord(8, 0)).unwrap();
        assert_eq!(
            det.blockers_of(b_cell),
            2,
            "flexible model: A must block B's best cell"
        );

        // B's tuple is F-dominated by A's; emission must reflect that.
        assert!(store.insert(0, 0, &[0.5, 8.5])); // region A's box
        assert!(store.insert(1, 1, &[9.5, 1.5])); // region B's box
        let mut out = Vec::new();
        det.resolve_region(&b, &mut store, &mut out);
        assert!(out.is_empty(), "B's cells still wait for A");
        det.resolve_region(&a, &mut store, &mut out);
        let emitted: Vec<(u32, u32)> = out.iter().flat_map(|e| e.ids.iter().copied()).collect();
        assert!(emitted.contains(&(0, 0)), "A's tuple is F-optimal");
        assert!(
            !emitted.contains(&(1, 1)),
            "B's tuple is F-dominated by A's and must be filtered"
        );
    }

    #[test]
    fn dense_prefix_blockers_match_brute_force() {
        // Pseudo-random overlapping regions; dense prefix counts must equal
        // the definition |{R : R.cell_lo ⪯ c}| for every tracked cell.
        let mut regions = Vec::new();
        let mut x: u64 = 12345;
        let mut next = |m: u16| -> u16 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % m as u64) as u16
        };
        for id in 0..17u32 {
            let lo = (next(8), next(8));
            let hi = (lo.0 + next(3), lo.1 + next(3));
            regions.push(region(id, lo, hi));
        }
        let store = store_with_regions(&regions);
        let det = ProgDetermine::new(&store, &regions);
        for (idx, cell) in store.iter() {
            let expected = regions
                .iter()
                .filter(|r| crate::output_grid::weak_leq(&r.cell_lo, cell.coord(), 2))
                .count() as u32;
            assert_eq!(
                det.blockers_of(idx),
                expected,
                "cell {:?}",
                &cell.coord()[..2]
            );
        }
    }

    #[test]
    fn dom_count_tree_matches_brute_force() {
        // Pseudo-random point sets (coarse grid → plenty of ties and
        // duplicates) across dims and sizes spanning the leaf threshold.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % 16) as f64 * 0.25
        };
        for k in [1usize, 2, 3, 5] {
            for n in [0usize, 1, 7, 16, 17, 64, 257] {
                let pts: Vec<f64> = (0..n * k).map(|_| next()).collect();
                let tree = DomCountTree::build(k, &pts);
                for _ in 0..40 {
                    let q: Vec<f64> = (0..k).map(|_| next()).collect();
                    let expected = pts
                        .chunks_exact(k.max(1))
                        .filter(|p| p.iter().zip(&q).all(|(a, b)| a <= b))
                        .count() as u32;
                    let mut ops = 0u64;
                    assert_eq!(
                        tree.count_dominated(&q, &mut ops),
                        expected,
                        "k={k} n={n} q={q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn dom_count_tree_treats_nan_points_as_non_blocking() {
        // A NaN projection never satisfies `x <= y`, so such points must
        // not be swept up by the whole-subtree shortcut.
        let k = 2;
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push(i as f64 * 0.1);
            pts.push(if i % 7 == 0 { f64::NAN } else { 1.0 });
        }
        let tree = DomCountTree::build(k, &pts);
        let q = [100.0, 100.0];
        let expected = pts
            .chunks_exact(k)
            .filter(|p| p.iter().zip(&q).all(|(a, b)| a <= b))
            .count() as u32;
        let mut ops = 0;
        assert_eq!(tree.count_dominated(&q, &mut ops), expected);
    }

    #[test]
    fn flexible_blocker_ops_beat_naive_loop() {
        use crate::fdom::{DominanceModel, FDominance, WeightConstraint};
        use crate::output_grid::OutputGrid;
        // Many regions × many cells: the kd-tree must do asymptotically
        // less work than the retired regions × cells double loop while
        // producing identical counts (checked against `index.blocks` via
        // the definition).
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.3),
                WeightConstraint::at_most(2, 0, 0.7),
            ],
        )
        .unwrap();
        let mut x: u64 = 7;
        let mut next = |m: u16| -> u16 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % m as u64) as u16
        };
        let mut regions = Vec::new();
        for id in 0..200u32 {
            let lo = (next(9), next(9));
            regions.push(region(id, lo, (lo.0 + next(2), lo.1 + next(2))));
        }
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut store = CellStore::with_model(grid.clone(), DominanceModel::flexible(fdom));
        for r in &regions {
            for c in grid.iter_box(r.cell_lo, r.cell_hi) {
                store.track(c);
            }
        }
        let det = ProgDetermine::new(&store, &regions);
        let naive_ops = regions.len() as u64 * store.len() as u64;
        assert!(
            det.flexible_blocker_ops() < naive_ops / 2,
            "tree ops {} not beating naive {}",
            det.flexible_blocker_ops(),
            naive_ops
        );
        // Counts must equal the decrement predicate's brute-force totals.
        let index = det.fdom.as_ref().unwrap();
        for (idx, _) in store.iter() {
            let expected = (0..regions.len() as u32)
                .filter(|&rid| index.blocks(rid, idx))
                .count() as u32;
            assert_eq!(det.blockers_of(idx), expected, "cell {idx}");
        }
    }

    #[test]
    fn emitted_counters_accumulate() {
        let a = region(0, (0, 0), (0, 0));
        let regions = [a.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        store.insert(0, 0, &[0.2, 0.3]);
        store.insert(1, 1, &[0.3, 0.2]);
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        assert_eq!(det.emitted_cells(), 1);
        assert_eq!(det.emitted_tuples(), 2);
        assert_eq!(det.live_cells(), 0);
    }
}
