//! Progressive result determination (Section V, Algorithm 2).
//!
//! Decides *when* the tuples of an output cell are safe to emit. The paper's
//! Principle 1 requires, for a cell `O_h`:
//!
//! 1. all tuples mapping to `O_h` have been generated and compared;
//! 2. every cell that would fully dominate `O_h` is guaranteed empty;
//! 3. no future tuple can land in a cell that partially dominates `O_h`.
//!
//! The paper maintains per-cell lists (`RegCount`, `Dom`, `DomBy`,
//! `Dependent`, `Dependence`) and then replaces them by dedicated counts.
//! We realize the counts per *region* (see DESIGN.md §5.1): an unresolved
//! region `R'` **blocks** cell `c` iff `R'` could still deliver a tuple into
//! some cell `a ⪯ c` — geometrically iff `R'.cell_lo ⪯ c`, since the box
//! cell `aᵢ = min(cᵢ, R'.cell_hiᵢ)` then witnesses the dominator. A single
//! per-cell counter therefore covers all three conditions: condition 2's
//! "populated full dominator" case instead *kills* the cell the moment it is
//! observed (handled in [`crate::cells`]).
//!
//! When the last blocker of a live, non-dead cell resolves, its surviving
//! tuples are final skyline members — they are emitted immediately.
//!
//! ## Flexible skylines (F-dominance)
//!
//! Under a flexible model (see [`crate::fdom`]) the geometric blocker test
//! above is **incomplete**: an F-dominator may come from a region whose box
//! is Pareto-incomparable to the cell (trade-offs are exactly what weight
//! constraints permit). The blocker relation is therefore strengthened:
//! region `R'` blocks cell `c` iff a tuple of `R'` could *weakly
//! F-dominate* some tuple of `c` — conservatively, iff
//! `vₖ·LOWER(R') ≤ vₖ·upper_corner(c)` at **every** vertex `vₖ` of the
//! weight polytope (weights are non-negative, so the box corners bound the
//! dot products). Component-wise `≤` between vertex projections is exactly
//! weak F-dominance, so blocker counting stays a dominance count — just in
//! projection space. Every Pareto blocker is an F-blocker (unit-vector
//! reasoning), so cells emit no earlier than under Pareto: emission stays
//! no-retraction, merely later. On release the cell's survivors pass
//! [`CellStore::filter_emitted`], which removes F-dominated tuples; by the
//! strengthened counts no unresolved region can still deliver an
//! F-dominator for anything emitted.

use crate::cells::CellStore;
use crate::lookahead::Region;
use crate::output_grid::weak_leq;
use progxe_skyline::PointStore;

/// A batch of tuples proven final, emitted from one cell.
#[derive(Debug)]
pub struct EmittedCell {
    /// Index of the emitting cell in the [`CellStore`].
    pub cell_idx: u32,
    /// `(r_idx, t_idx)` of each emitted tuple.
    pub ids: Vec<(u32, u32)>,
    /// Oriented output values, parallel to `ids`.
    pub points: PointStore,
}

/// Precomputed vertex projections realizing the flexible blocker relation:
/// region `rid` blocks cell `c` iff
/// `region_proj[rid·k ..][j] ≤ cell_proj[c·k ..][j]` for every vertex `j`.
#[derive(Debug)]
struct FdomBlockerIndex {
    /// Vertices of the weight polytope.
    k: usize,
    /// `regions × k` projections of each region's oriented lower bound.
    region_proj: Vec<f64>,
    /// `cells × k` projections of each cell's oriented upper corner.
    cell_proj: Vec<f64>,
}

impl FdomBlockerIndex {
    #[inline]
    fn blocks(&self, rid: u32, cell_idx: u32) -> bool {
        let r = &self.region_proj[rid as usize * self.k..(rid as usize + 1) * self.k];
        let c = &self.cell_proj[cell_idx as usize * self.k..(cell_idx as usize + 1) * self.k];
        r.iter().zip(c).all(|(x, y)| x <= y)
    }
}

/// Count-based progressive-determination state.
#[derive(Debug)]
pub struct ProgDetermine {
    /// Blocker count per tracked cell (parallel to the cell store).
    blockers: Vec<u32>,
    /// Cells not yet emitted or confirmed dead, scanned at each resolution.
    live: Vec<u32>,
    /// Flexible-model blocker geometry (`None` under Pareto). The same
    /// projections decide both the initial counts and every decrement, so
    /// the two can never disagree.
    fdom: Option<FdomBlockerIndex>,
    emitted_cells: usize,
    emitted_tuples: usize,
}

/// Dense-grid size up to which blocker counts are computed by prefix sums.
const DENSE_PREFIX_BUDGET: u64 = 8 << 20;

impl ProgDetermine {
    /// Computes initial blocker counts.
    ///
    /// `blockers(c) = |{R : R.cell_lo ⪯ c}|` is a d-dimensional dominance
    /// count, so for moderate grids it is computed in `O(k^d · d + R)` by
    /// scattering each region's box corner into a dense grid and running a
    /// prefix sum along every dimension — instead of the naive
    /// `O(cells × regions)` double loop (kept as a fallback for very fine
    /// grids).
    pub fn new(store: &CellStore, regions: &[Region]) -> Self {
        // Flexible model: blockers are counted in vertex-projection space
        // (see the module docs) — the dense-prefix trick below is
        // coordinate-Pareto-specific and does not apply.
        if let Some(fdom) = store.model().as_flexible() {
            let k = fdom.vertex_count();
            let mut region_proj = Vec::with_capacity(regions.len() * k);
            let mut buf = Vec::with_capacity(k);
            for (i, region) in regions.iter().enumerate() {
                // `blocks()` is indexed by `region.id` (that is what
                // `resolve_region` receives), so the slice must be densely
                // id-ordered — enforced here in release builds too, since a
                // mismatch would silently corrupt blocker counts.
                assert_eq!(
                    region.id as usize, i,
                    "ProgDetermine requires regions in dense id order"
                );
                fdom.project_into(&region.lo, &mut buf);
                region_proj.extend_from_slice(&buf);
            }
            let mut cell_proj = Vec::with_capacity(store.len() * k);
            for (_, cell) in store.iter() {
                let corner = store.grid().upper_corner(cell.coord());
                fdom.project_into(&corner, &mut buf);
                cell_proj.extend_from_slice(&buf);
            }
            let index = FdomBlockerIndex {
                k,
                region_proj,
                cell_proj,
            };
            let mut blockers = vec![0u32; store.len()];
            for region in regions {
                for (idx, _) in store.iter() {
                    if index.blocks(region.id, idx) {
                        blockers[idx as usize] += 1;
                    }
                }
            }
            let live: Vec<u32> = store
                .iter()
                .filter(|(_, c)| !c.is_dead())
                .map(|(i, _)| i)
                .collect();
            return Self {
                blockers,
                live,
                fdom: Some(index),
                emitted_cells: 0,
                emitted_tuples: 0,
            };
        }

        let grid = store.grid();
        let dims = grid.dims();
        let k = grid.cells_per_dim() as u64;
        let volume = k.checked_pow(dims as u32);
        let mut blockers = vec![0u32; store.len()];
        match volume {
            Some(v) if v <= DENSE_PREFIX_BUDGET => {
                let k = k as usize;
                let mut dense = vec![0u32; v as usize];
                let linear = |coord: &crate::output_grid::Coord| -> usize {
                    let mut idx = 0usize;
                    for d in (0..dims).rev() {
                        idx = idx * k + coord[d] as usize;
                    }
                    idx
                };
                for region in regions {
                    dense[linear(&region.cell_lo)] += 1;
                }
                // Prefix-sum along each dimension: after dimension `d`'s
                // pass, dense[c] counts regions with lo ⪯ c on dims 0..=d.
                let mut stride = 1usize;
                for _ in 0..dims {
                    #[allow(clippy::manual_is_multiple_of)] // `% k > 0` reads as "coord_d > 0"
                    for i in 0..dense.len() {
                        if (i / stride) % k > 0 {
                            dense[i] += dense[i - stride];
                        }
                    }
                    stride *= k;
                }
                for (idx, cell) in store.iter() {
                    blockers[idx as usize] = dense[linear(cell.coord())];
                }
            }
            _ => {
                for region in regions {
                    for (idx, cell) in store.iter() {
                        if weak_leq(&region.cell_lo, cell.coord(), dims) {
                            blockers[idx as usize] += 1;
                        }
                    }
                }
            }
        }
        let live: Vec<u32> = store
            .iter()
            .filter(|(_, c)| !c.is_dead())
            .map(|(i, _)| i)
            .collect();
        Self {
            blockers,
            live,
            fdom: None,
            emitted_cells: 0,
            emitted_tuples: 0,
        }
    }

    /// Current blocker count of a cell (diagnostics / benefit model).
    #[inline]
    pub fn blockers_of(&self, cell_idx: u32) -> u32 {
        self.blockers[cell_idx as usize]
    }

    /// Cells emitted so far.
    pub fn emitted_cells(&self) -> usize {
        self.emitted_cells
    }

    /// Tuples emitted so far.
    pub fn emitted_tuples(&self) -> usize {
        self.emitted_tuples
    }

    /// Cells still awaiting blockers (diagnostics).
    pub fn live_cells(&self) -> usize {
        self.live.len()
    }

    /// Resolves one region — processed *or* discarded — decrementing the
    /// blocker count of every cell it blocks. Cells whose count reaches
    /// zero are finalized: dead cells are dropped, all others emit their
    /// surviving tuples into `out`.
    ///
    /// Must be called exactly once per region, *after* the region's tuples
    /// (if any) have been inserted into `store`.
    pub fn resolve_region(
        &mut self,
        region: &Region,
        store: &mut CellStore,
        out: &mut Vec<EmittedCell>,
    ) {
        let dims = store.grid().dims();
        let mut i = 0;
        while i < self.live.len() {
            let idx = self.live[i];
            let cell = store.cell(idx);
            // Dead cells can be retired regardless of their counts.
            if cell.is_dead() {
                self.live.swap_remove(i);
                continue;
            }
            // The decrement predicate must be *identical* to the one the
            // initial counts were computed with.
            let blocks = match &self.fdom {
                Some(index) => index.blocks(region.id, idx),
                None => weak_leq(&region.cell_lo, cell.coord(), dims),
            };
            if !blocks {
                i += 1;
                continue;
            }
            let count = &mut self.blockers[idx as usize];
            debug_assert!(*count > 0, "blocker underflow on cell {idx}");
            *count -= 1;
            if *count == 0 {
                self.live.swap_remove(i);
                let (mut ids, mut points) = store.take_emitted(idx);
                // Flexible model: drop F-dominated survivors (no-op under
                // Pareto). Everything that could still F-dominate them is
                // already in the store — that is what the strengthened
                // blocker counts guarantee.
                store.filter_emitted(&mut ids, &mut points);
                if !ids.is_empty() {
                    self.emitted_cells += 1;
                    self.emitted_tuples += ids.len();
                    out.push(EmittedCell {
                        cell_idx: idx,
                        ids,
                        points,
                    });
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_grid::{Coord, OutputGrid, MAX_DIMS};

    fn coord(x: u16, y: u16) -> Coord {
        let mut c: Coord = [0; MAX_DIMS];
        c[0] = x;
        c[1] = y;
        c
    }

    /// Region with the given inclusive cell box (other fields immaterial).
    fn region(id: u32, lo: (u16, u16), hi: (u16, u16)) -> Region {
        Region {
            id,
            r_part: 0,
            t_part: 0,
            lo: vec![lo.0 as f64, lo.1 as f64],
            hi: vec![hi.0 as f64 + 1.0, hi.1 as f64 + 1.0],
            cell_lo: coord(lo.0, lo.1),
            cell_hi: coord(hi.0, hi.1),
            n_r: 1,
            n_t: 1,
            guaranteed: true,
        }
    }

    fn store_with_regions(regions: &[Region]) -> CellStore {
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut store = CellStore::new(grid.clone());
        for r in regions {
            for c in grid.iter_box(r.cell_lo, r.cell_hi) {
                store.track(c);
            }
        }
        store
    }

    #[test]
    fn initial_blockers_count_shadowing_regions() {
        // Region A at (0,0)-(1,1); region B at (2,2)-(3,3). A's shadow
        // covers B's cells; B's shadow does not reach A's.
        let a = region(0, (0, 0), (1, 1));
        let b = region(1, (2, 2), (3, 3));
        let store = store_with_regions(&[a.clone(), b.clone()]);
        let det = ProgDetermine::new(&store, &[a, b]);
        let a_cell = store.find(&coord(0, 0)).unwrap();
        let b_cell = store.find(&coord(2, 2)).unwrap();
        assert_eq!(det.blockers_of(a_cell), 1, "A's cells blocked only by A");
        assert_eq!(det.blockers_of(b_cell), 2, "B's cells blocked by both");
    }

    #[test]
    fn cells_emit_when_last_blocker_resolves() {
        // B sits directly "above" A in dim 1, sharing dim-0 columns: A's
        // cells can partially (not fully) dominate B's, so B's cells stay
        // alive but must wait for both regions.
        let a = region(0, (0, 0), (1, 1));
        let b = region(1, (0, 3), (1, 4));
        let regions = [a.clone(), b.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        let b_cell = store.find(&coord(0, 3)).unwrap();
        assert_eq!(det.blockers_of(b_cell), 2, "blocked by A and B");

        // A's tuple does not dominate B's (trade-off in dim 0).
        assert!(store.insert(0, 0, &[0.9, 0.5]));
        assert!(store.insert(1, 1, &[0.5, 3.5]));
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        // A's own cells emit now (blockers 1→0); B's cells drop to 1.
        assert!(out.iter().any(|e| e.ids.contains(&(0, 0))));
        assert_eq!(det.blockers_of(b_cell), 1);
        assert!(!out.iter().any(|e| e.ids.contains(&(1, 1))), "B not ready");

        out.clear();
        det.resolve_region(&b, &mut store, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ids, vec![(1, 1)]);
    }

    #[test]
    fn dead_region_box_never_emits_dominated_tuples() {
        let a = region(0, (0, 0), (1, 1));
        let b = region(1, (2, 2), (3, 3));
        let regions = [a.clone(), b.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        // A's tuple fully dominates B's whole box; B's tuple is rejected.
        assert!(store.insert(0, 0, &[0.5, 0.5]));
        assert!(!store.insert(1, 1, &[2.5, 2.4]));
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        assert!(out.iter().any(|e| e.ids.contains(&(0, 0))));
        out.clear();
        det.resolve_region(&b, &mut store, &mut out);
        assert!(out.is_empty(), "B's box is dead — nothing to emit");
    }

    #[test]
    fn non_overlapping_regions_emit_independently() {
        // A at rows 0-1, cols 0-1; B shares no shadow: place B down-left?
        // In 2-d any two boxes interact unless separated on both axes in
        // opposite directions: put A at (0,8)-(1,9), B at (8,0)-(9,1).
        let a = region(0, (0, 8), (1, 9));
        let b = region(1, (8, 0), (9, 1));
        let regions = [a.clone(), b.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        let a_cell = store.find(&coord(0, 8)).unwrap();
        let b_cell = store.find(&coord(8, 0)).unwrap();
        assert_eq!(det.blockers_of(a_cell), 1);
        assert_eq!(det.blockers_of(b_cell), 1);

        assert!(store.insert(7, 7, &[8.5, 0.5])); // B's box
        let mut out = Vec::new();
        det.resolve_region(&b, &mut store, &mut out);
        assert_eq!(out.len(), 1, "B emits immediately, before A resolves");
        assert_eq!(out[0].ids, vec![(7, 7)]);
    }

    #[test]
    fn dead_cells_never_emit() {
        let a = region(0, (0, 0), (9, 9));
        let regions = [a.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        assert!(store.insert(0, 0, &[0.5, 0.5]));
        assert!(!store.insert(1, 1, &[5.5, 5.5]), "killed by full dominance");
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        let all: Vec<(u32, u32)> = out.iter().flat_map(|e| e.ids.iter().copied()).collect();
        assert_eq!(all, vec![(0, 0)]);
    }

    #[test]
    fn flexible_model_blocks_across_pareto_incomparable_boxes() {
        use crate::fdom::{DominanceModel, FDominance, WeightConstraint};
        use crate::output_grid::OutputGrid;
        // A at cells (0,8)-(1,9), B at (8,0)-(9,1): Pareto-independent
        // (each emits without waiting for the other — see
        // `non_overlapping_regions_emit_independently`). Under weights
        // confined to w₀ ∈ [0.45, 0.55] a tuple of A *can* F-dominate a
        // tuple of B — (0.5, 8.5) scores {4.9, 4.1} at the two vertices
        // against (9.5, 1.5)'s {5.1, 5.9} — so under the flexible model
        // B's cells must additionally wait for A.
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.45),
                WeightConstraint::at_most(2, 0, 0.55),
            ],
        )
        .unwrap();
        let a = region(0, (0, 8), (1, 9));
        let b = region(1, (8, 0), (9, 1));
        let regions = [a.clone(), b.clone()];
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 10);
        let mut store = CellStore::with_model(grid.clone(), DominanceModel::flexible(fdom));
        for r in &regions {
            for c in grid.iter_box(r.cell_lo, r.cell_hi) {
                store.track(c);
            }
        }
        let mut det = ProgDetermine::new(&store, &regions);
        let b_cell = store.find(&coord(8, 0)).unwrap();
        assert_eq!(
            det.blockers_of(b_cell),
            2,
            "flexible model: A must block B's best cell"
        );

        // B's tuple is F-dominated by A's; emission must reflect that.
        assert!(store.insert(0, 0, &[0.5, 8.5])); // region A's box
        assert!(store.insert(1, 1, &[9.5, 1.5])); // region B's box
        let mut out = Vec::new();
        det.resolve_region(&b, &mut store, &mut out);
        assert!(out.is_empty(), "B's cells still wait for A");
        det.resolve_region(&a, &mut store, &mut out);
        let emitted: Vec<(u32, u32)> = out.iter().flat_map(|e| e.ids.iter().copied()).collect();
        assert!(emitted.contains(&(0, 0)), "A's tuple is F-optimal");
        assert!(
            !emitted.contains(&(1, 1)),
            "B's tuple is F-dominated by A's and must be filtered"
        );
    }

    #[test]
    fn dense_prefix_blockers_match_brute_force() {
        // Pseudo-random overlapping regions; dense prefix counts must equal
        // the definition |{R : R.cell_lo ⪯ c}| for every tracked cell.
        let mut regions = Vec::new();
        let mut x: u64 = 12345;
        let mut next = |m: u16| -> u16 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % m as u64) as u16
        };
        for id in 0..17u32 {
            let lo = (next(8), next(8));
            let hi = (lo.0 + next(3), lo.1 + next(3));
            regions.push(region(id, lo, hi));
        }
        let store = store_with_regions(&regions);
        let det = ProgDetermine::new(&store, &regions);
        for (idx, cell) in store.iter() {
            let expected = regions
                .iter()
                .filter(|r| crate::output_grid::weak_leq(&r.cell_lo, cell.coord(), 2))
                .count() as u32;
            assert_eq!(
                det.blockers_of(idx),
                expected,
                "cell {:?}",
                &cell.coord()[..2]
            );
        }
    }

    #[test]
    fn emitted_counters_accumulate() {
        let a = region(0, (0, 0), (0, 0));
        let regions = [a.clone()];
        let mut store = store_with_regions(&regions);
        let mut det = ProgDetermine::new(&store, &regions);
        store.insert(0, 0, &[0.2, 0.3]);
        store.insert(1, 1, &[0.3, 0.2]);
        let mut out = Vec::new();
        det.resolve_region(&a, &mut store, &mut out);
        assert_eq!(det.emitted_cells(), 1);
        assert_eq!(det.emitted_tuples(), 2);
        assert_eq!(det.live_cells(), 0);
    }
}
