//! Output-space geometry: cells, coordinates, and dominance predicates.
//!
//! The mapped output space is cut into a uniform grid ("each region is
//! composed of a set of output partitions", Section III-A). All geometry
//! here operates in the *oriented* output space: every output dimension is
//! transformed so that smaller is better, which lets dominance reasoning be
//! direction-agnostic throughout the executor.
//!
//! Cells are half-open boxes `[c·δ, (c+1)·δ)` identified by integer
//! coordinates. Two cell-level relations drive the framework:
//!
//! * `a` **fully dominates** `b` iff `a[i] + 1 ≤ b[i]` for every dimension:
//!   every point of `a` strictly dominates every point of `b`, so a single
//!   tuple landing in `a` kills `b` outright.
//! * `a` **partially dominates** `b` iff `a[i] ≤ b[i]` everywhere, `a ≠ b`,
//!   and not full: tuples in `a` *may* dominate tuples in `b`. Because
//!   `a ≤ b` without full dominance forces `a[j] = b[j]` in some dimension,
//!   the partial dominators of `b` are exactly the union of the `d`
//!   coordinate *slabs* through `b` — the paper's `k^d − (k−1)^d`
//!   comparable-partition bound.

/// Maximum supported output dimensionality (paper evaluates d ≤ 5).
pub const MAX_DIMS: usize = 8;

/// Cell coordinate: one grid index per output dimension. Only the first
/// `dims` entries are meaningful; the rest stay zero so packed keys compare
/// consistently.
pub type Coord = [u16; MAX_DIMS];

/// Packs a coordinate into a hashable key (16 bits per dimension).
#[inline]
pub fn pack(c: &Coord) -> u128 {
    let mut k: u128 = 0;
    for (i, &v) in c.iter().enumerate() {
        k |= (v as u128) << (16 * i);
    }
    k
}

/// True iff `a[i] ≤ b[i]` for every meaningful dimension.
#[inline]
pub fn weak_leq(a: &Coord, b: &Coord, dims: usize) -> bool {
    a[..dims].iter().zip(&b[..dims]).all(|(x, y)| x <= y)
}

/// True iff cell `a` fully dominates cell `b` (see module docs).
#[inline]
#[allow(clippy::int_plus_one)] // `a[i] + 1 ≤ b[i]` mirrors the definition
pub fn full_dominates(a: &Coord, b: &Coord, dims: usize) -> bool {
    a[..dims].iter().zip(&b[..dims]).all(|(x, y)| x + 1 <= *y)
}

/// True iff cell `a` partially dominates cell `b`: `a ⪯ b`, `a ≠ b`, and
/// not full dominance.
#[inline]
pub fn partial_dominates(a: &Coord, b: &Coord, dims: usize) -> bool {
    weak_leq(a, b, dims) && a[..dims] != b[..dims] && !full_dominates(a, b, dims)
}

/// Uniform grid over the oriented output space.
#[derive(Debug, Clone)]
pub struct OutputGrid {
    dims: usize,
    lo: Vec<f64>,
    width: Vec<f64>,
    cells_per_dim: u16,
}

impl OutputGrid {
    /// Builds a grid over the oriented bounding box `[lo, hi]` with
    /// `cells_per_dim` cells per dimension.
    ///
    /// # Panics
    /// Panics on inconsistent inputs (zero dims, dims > [`MAX_DIMS`],
    /// inverted bounds).
    pub fn new(lo: Vec<f64>, hi: Vec<f64>, cells_per_dim: u16) -> Self {
        let dims = lo.len();
        assert!(dims > 0 && dims <= MAX_DIMS, "unsupported dims {dims}");
        assert_eq!(lo.len(), hi.len());
        assert!(cells_per_dim > 0);
        let width = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| {
                assert!(h >= l, "inverted bounds {l} > {h}");
                if h > l {
                    (h - l) / cells_per_dim as f64
                } else {
                    1.0 // degenerate dimension: all mass in cell 0
                }
            })
            .collect();
        Self {
            dims,
            lo,
            width,
            cells_per_dim,
        }
    }

    /// Output dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cells per dimension (`k` in the paper's analysis).
    #[inline]
    pub fn cells_per_dim(&self) -> u16 {
        self.cells_per_dim
    }

    /// The cell containing an oriented point (boundary values clamp into
    /// the last cell, making the top edge closed).
    #[inline]
    pub fn cell_of(&self, p: &[f64]) -> Coord {
        debug_assert_eq!(p.len(), self.dims);
        let mut c: Coord = [0; MAX_DIMS];
        for d in 0..self.dims {
            c[d] = self.slot(p[d], d);
        }
        c
    }

    /// Grid slot of a single value along `dim`, clamped into range.
    #[inline]
    pub fn slot(&self, v: f64, dim: usize) -> u16 {
        let raw = (v - self.lo[dim]) / self.width[dim];
        if raw <= 0.0 {
            0
        } else {
            (raw as u64).min(self.cells_per_dim as u64 - 1) as u16
        }
    }

    /// The inclusive cell-coordinate box covering the oriented value box
    /// `[lo, hi]`.
    pub fn box_of(&self, lo: &[f64], hi: &[f64]) -> (Coord, Coord) {
        (self.cell_of(lo), self.cell_of(hi))
    }

    /// Oriented lower corner of a cell.
    pub fn lower_corner(&self, c: &Coord) -> Vec<f64> {
        let mut out = Vec::new();
        self.lower_corner_into(c, &mut out);
        out
    }

    /// [`Self::lower_corner`] into a caller-provided buffer (cleared
    /// first) — the hot-loop variant that avoids a per-cell allocation.
    #[inline]
    pub fn lower_corner_into(&self, c: &Coord, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.dims).map(|d| self.lo[d] + c[d] as f64 * self.width[d]));
    }

    /// Oriented upper corner of a cell.
    pub fn upper_corner(&self, c: &Coord) -> Vec<f64> {
        let mut out = Vec::new();
        self.upper_corner_into(c, &mut out);
        out
    }

    /// [`Self::upper_corner`] into a caller-provided buffer (cleared
    /// first) — the hot-loop variant that avoids a per-cell allocation.
    #[inline]
    pub fn upper_corner_into(&self, c: &Coord, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.dims).map(|d| self.lo[d] + (c[d] + 1) as f64 * self.width[d]));
    }

    /// Number of cells in the inclusive coordinate box `[lo, hi]`.
    pub fn box_volume(&self, lo: &Coord, hi: &Coord) -> u64 {
        let mut v: u64 = 1;
        for d in 0..self.dims {
            debug_assert!(lo[d] <= hi[d]);
            v = v.saturating_mul((hi[d] - lo[d]) as u64 + 1);
        }
        v
    }

    /// Iterates all coordinates in the inclusive box `[lo, hi]` in
    /// row-major order.
    pub fn iter_box(&self, lo: Coord, hi: Coord) -> BoxIter {
        BoxIter {
            dims: self.dims,
            lo,
            hi,
            next: Some(lo),
        }
    }
}

/// Row-major iterator over a coordinate box.
#[derive(Debug, Clone)]
pub struct BoxIter {
    dims: usize,
    lo: Coord,
    hi: Coord,
    next: Option<Coord>,
}

impl Iterator for BoxIter {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        let current = self.next?;
        // Advance like a mixed-radix counter, last dimension fastest.
        let mut succ = current;
        let mut d = self.dims;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            if succ[d] < self.hi[d] {
                succ[d] += 1;
                succ[d + 1..self.dims].copy_from_slice(&self.lo[d + 1..self.dims]);
                self.next = Some(succ);
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(vals: &[u16]) -> Coord {
        let mut c: Coord = [0; MAX_DIMS];
        c[..vals.len()].copy_from_slice(vals);
        c
    }

    #[test]
    fn pack_is_injective_on_distinct_coords() {
        let a = coord(&[1, 2, 3]);
        let b = coord(&[3, 2, 1]);
        assert_ne!(pack(&a), pack(&b));
        assert_eq!(pack(&a), pack(&coord(&[1, 2, 3])));
    }

    #[test]
    fn full_dominance_requires_gap_in_every_dim() {
        let d = 2;
        assert!(full_dominates(&coord(&[0, 0]), &coord(&[1, 1]), d));
        assert!(full_dominates(&coord(&[0, 0]), &coord(&[5, 1]), d));
        assert!(
            !full_dominates(&coord(&[0, 0]), &coord(&[0, 5]), d),
            "tie in dim 0"
        );
        assert!(!full_dominates(&coord(&[2, 0]), &coord(&[1, 5]), d));
    }

    #[test]
    fn partial_dominance_is_the_slab_set() {
        let d = 2;
        // Same row or column, weakly below-left:
        assert!(partial_dominates(&coord(&[0, 3]), &coord(&[2, 3]), d));
        assert!(partial_dominates(&coord(&[2, 0]), &coord(&[2, 3]), d));
        // Full dominance is excluded:
        assert!(!partial_dominates(&coord(&[0, 0]), &coord(&[2, 3]), d));
        // Identity is excluded:
        assert!(!partial_dominates(&coord(&[2, 3]), &coord(&[2, 3]), d));
        // Upper-right is excluded:
        assert!(!partial_dominates(&coord(&[3, 3]), &coord(&[2, 3]), d));
    }

    #[test]
    fn weak_leq_implies_partial_or_full_or_equal() {
        // Exhaustive check on a small grid: the three relations partition
        // the weak-≤ cone. This is the invariant the slab lookup relies on.
        let d = 2;
        for ax in 0..4u16 {
            for ay in 0..4u16 {
                for bx in ax..4u16 {
                    for by in ay..4u16 {
                        let a = coord(&[ax, ay]);
                        let b = coord(&[bx, by]);
                        let full = full_dominates(&a, &b, d);
                        let partial = partial_dominates(&a, &b, d);
                        let equal = a == b;
                        assert_eq!(
                            1,
                            full as u8 + partial as u8 + equal as u8,
                            "a={a:?} b={b:?}"
                        );
                        if partial {
                            assert!(
                                (0..d).any(|i| a[i] == b[i]),
                                "partial dominator must share a slab"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cell_of_clamps_boundaries() {
        let g = OutputGrid::new(vec![0.0, 0.0], vec![10.0, 10.0], 5);
        assert_eq!(g.cell_of(&[0.0, 0.0])[..2], [0, 0]);
        assert_eq!(g.cell_of(&[9.99, 9.99])[..2], [4, 4]);
        assert_eq!(g.cell_of(&[10.0, 10.0])[..2], [4, 4], "top edge closed");
        assert_eq!(g.cell_of(&[-1.0, 5.0])[..2], [0, 2], "below-range clamps");
    }

    #[test]
    fn corners_invert_cell_of() {
        let g = OutputGrid::new(vec![0.0], vec![8.0], 4);
        let c = g.cell_of(&[3.0]);
        assert_eq!(g.lower_corner(&c), vec![2.0]);
        assert_eq!(g.upper_corner(&c), vec![4.0]);
    }

    #[test]
    fn degenerate_dimension_maps_to_zero() {
        let g = OutputGrid::new(vec![5.0, 0.0], vec![5.0, 10.0], 4);
        assert_eq!(g.cell_of(&[5.0, 10.0])[..2], [0, 3]);
    }

    #[test]
    fn box_volume_counts_cells() {
        let g = OutputGrid::new(vec![0.0, 0.0], vec![1.0, 1.0], 10);
        assert_eq!(g.box_volume(&coord(&[1, 1]), &coord(&[3, 2])), 6);
        assert_eq!(g.box_volume(&coord(&[2, 2]), &coord(&[2, 2])), 1);
    }

    #[test]
    fn iter_box_visits_every_cell_once() {
        let g = OutputGrid::new(vec![0.0, 0.0], vec![1.0, 1.0], 10);
        let cells: Vec<Coord> = g.iter_box(coord(&[1, 2]), coord(&[2, 4])).collect();
        assert_eq!(cells.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!((1..=2).contains(&c[0]));
            assert!((2..=4).contains(&c[1]));
            assert!(seen.insert(pack(c)));
        }
    }

    #[test]
    fn iter_box_single_cell() {
        let g = OutputGrid::new(vec![0.0], vec![1.0], 4);
        let cells: Vec<Coord> = g.iter_box(coord(&[2]), coord(&[2])).collect();
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn iter_box_3d_volume_matches() {
        let g = OutputGrid::new(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0], 6);
        let lo = coord(&[0, 1, 2]);
        let hi = coord(&[2, 3, 5]);
        let count = g.iter_box(lo, hi).count() as u64;
        assert_eq!(count, g.box_volume(&lo, &hi));
    }
}
