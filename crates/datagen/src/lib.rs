//! Synthetic workload generator for skyline-over-join experiments.
//!
//! The paper evaluates on "data sets that are the de-facto standard for
//! stress testing skyline algorithms" (Börzsönyi, Kossmann & Stocker,
//! ICDE 2001): *independent*, *correlated*, and *anti-correlated* attribute
//! distributions with real values in `[1, 100]`, cardinalities 10K–500K,
//! and a join selectivity σ varied in `[1e-4, 1e-1]`.
//!
//! Kossmann's original generator binary is not available, so this crate
//! re-implements the three distributions (a documented substitution — see
//! DESIGN.md §5.8) with a seeded RNG for reproducibility:
//!
//! * **independent** — every attribute i.i.d. uniform.
//! * **correlated** — attributes cluster around a shared per-tuple level, so
//!   a handful of tuples dominate almost the entire relation (skyline-
//!   friendly).
//! * **anti-correlated** — attributes trade off against each other along a
//!   constant-sum band, producing very large skylines (skyline-hostile).
//!
//! Join keys are uniform over `V = round(1/σ)` distinct values, giving an
//! expected equi-join selectivity of σ (each `(r, t)` pair matches with
//! probability `1/V`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod distribution;
pub mod relation;
pub mod rng;
pub mod weights;
pub mod workload;

pub use arrival::{ArrivalBatch, ArrivalOrder, ArrivalSchedule, ArrivalSpec, Batching};
pub use distribution::Distribution;
pub use relation::Relation;
pub use rng::{Rng, StdRng};
pub use weights::simplex_band;
pub use workload::{SmjWorkload, WorkloadSpec};
