//! Weight-constraint families for flexible-skyline experiments.
//!
//! The `figures -- fdom` experiment sweeps result-set shrinkage and
//! first-result latency against *constraint tightness*; this module
//! produces the parameterized families as plain `(coefficients, bound)`
//! rows (meaning `coeffs · w ≤ bound` over the weight simplex), keeping
//! the generator crate free of core-crate types — the bench harness feeds
//! them to `progxe_core::fdom::FDominance`.

/// One linear weight constraint: `coeffs · w ≤ bound`.
pub type WeightRow = (Vec<f64>, f64);

/// A per-dimension band around the equal-weights center:
/// `w_d ∈ [t/d, 1 − t·(1 − 1/d)]` for tightness `t ∈ [0, 1]`.
///
/// * `t = 0` — the bounds are `w_d ∈ [0, 1]`: the whole simplex, where
///   F-dominance coincides with Pareto dominance (no shrinkage).
/// * `t = 1` — the bounds collapse onto `w_d = 1/d`: a single weight
///   vector, the top-1-style extreme.
///
/// Families are **nested** in `t` (larger `t` ⇒ smaller polytope), so the
/// F-skyline is non-increasing along the sweep — the property the fdom
/// figure asserts.
///
/// # Panics
/// Panics when `dims == 0` or `t` is outside `[0, 1]`.
pub fn simplex_band(dims: usize, tightness: f64) -> Vec<WeightRow> {
    assert!(dims > 0, "band needs at least one dimension");
    assert!(
        (0.0..=1.0).contains(&tightness),
        "tightness must lie in [0, 1], got {tightness}"
    );
    let lo = tightness / dims as f64;
    let hi = 1.0 - tightness * (1.0 - 1.0 / dims as f64);
    let mut rows = Vec::with_capacity(2 * dims);
    for d in 0..dims {
        // w_d ≥ lo  ⇔  −w_d ≤ −lo
        let mut ge = vec![0.0; dims];
        ge[d] = -1.0;
        rows.push((ge, -lo));
        // w_d ≤ hi
        let mut le = vec![0.0; dims];
        le[d] = 1.0;
        rows.push((le, hi));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_bounds_interpolate() {
        let rows = simplex_band(2, 0.0);
        assert_eq!(rows.len(), 4);
        // t = 0: lo = 0, hi = 1 (non-binding).
        assert_eq!(rows[0].1, 0.0);
        assert_eq!(rows[1].1, 1.0);
        // t = 1: lo = hi = 1/d.
        let rows = simplex_band(2, 1.0);
        assert_eq!(rows[0].1, -0.5);
        assert_eq!(rows[1].1, 0.5);
    }

    #[test]
    fn bands_are_nested_in_tightness() {
        // lo grows and hi shrinks monotonically with t.
        let lo_of = |t: f64| -simplex_band(3, t)[0].1;
        let hi_of = |t: f64| simplex_band(3, t)[1].1;
        let mut last_lo = -1.0;
        let mut last_hi = 2.0;
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(
                lo_of(t) >= last_lo && hi_of(t) <= last_hi,
                "not nested at {t}"
            );
            last_lo = lo_of(t);
            last_hi = hi_of(t);
        }
    }

    #[test]
    #[should_panic(expected = "tightness")]
    fn out_of_range_tightness_panics() {
        let _ = simplex_band(2, 1.5);
    }
}
