//! A small, dependency-free pseudo-random number generator.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so this module provides the tiny slice of the `rand` API the generator
//! and the examples actually use: a seedable RNG ([`StdRng`], xoshiro256++
//! seeded through SplitMix64), uniform floats in `[0, 1)`, and uniform
//! range sampling for the integer and float types that appear in workload
//! specs. Determinism — equal seeds produce equal streams on every
//! platform — is the property the experiments rely on; statistical quality
//! well exceeds what the Börzsönyi-style distributions need.

use std::ops::Range;

/// Uniform pseudo-random sampling.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of randomness).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a half-open range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling (Lemire): unbiased enough
                // for workload generation, and branch-free.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

impl UniformSample for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty sample range");
        let v = range.start + rng.gen_f64() * (range.end - range.start);
        // `start + fraction * span` can round up to `end` when the fraction
        // is within half an ulp of 1; clamp to keep the half-open contract.
        if v < range.end {
            v
        } else {
            range.end.next_down()
        }
    }
}

/// The workspace's default RNG: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    /// A generator whose float fraction is within half an ulp of 1, the
    /// case where `start + fraction * span` rounds up to `end`.
    struct MaxRng;
    impl Rng for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn float_range_stays_half_open_at_the_rounding_edge() {
        let mut rng = MaxRng;
        let v: f64 = rng.gen_range(1.0..100.0);
        assert!(v < 100.0, "sample {v} must stay below range.end");
        let v: f64 = rng.gen_range(0.0..f64::MIN_POSITIVE);
        assert!(v < f64::MIN_POSITIVE);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
            let u: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&u));
            let f: f64 = rng.gen_range(1.0..100.0);
            assert!((1.0..100.0).contains(&f));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit");
    }
}
