//! The three canonical attribute distributions of the skyline literature.

use crate::rng::Rng;
use std::f64::consts::TAU;
use std::str::FromStr;

/// Attribute-correlation family of a generated relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Attributes are i.i.d. uniform — the "neutral" case.
    Independent,
    /// Attributes rise and fall together; tiny skylines ("a few 10s of
    /// tuples can dominate the entire table", Sec. VI-B).
    Correlated,
    /// Attributes trade off along a constant-sum band; huge skylines — the
    /// stress case where ProgXe wins by orders of magnitude.
    AntiCorrelated,
}

impl Distribution {
    /// All three families, in the order the paper's figures present them.
    pub const ALL: [Distribution; 3] = [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ];

    /// Short lower-case name used in CSV output and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
        }
    }

    /// Samples one `dims`-dimensional point in the *unit* cube `[0,1]^d`;
    /// callers scale into the experiment's value range.
    pub fn sample_unit<R: Rng>(self, rng: &mut R, dims: usize, out: &mut Vec<f64>) {
        out.clear();
        match self {
            Distribution::Independent => {
                for _ in 0..dims {
                    out.push(rng.gen_f64());
                }
            }
            Distribution::Correlated => {
                // Shared level + small per-dimension jitter. The jitter width
                // (σ = 0.05) mirrors the tight diagonal band of the de-facto
                // generator.
                let level = rng.gen_f64();
                for _ in 0..dims {
                    let v = level + 0.05 * normal(rng);
                    out.push(v.clamp(0.0, 1.0));
                }
            }
            Distribution::AntiCorrelated => {
                // Start on the constant-sum plane at a level drawn from a
                // tight normal around 0.5, then move mass between random
                // dimension pairs. Each transfer preserves the sum, so the
                // points stay on an anti-correlated band while individual
                // dimensions gain high variance.
                let level = loop {
                    let v = 0.5 + 0.1 * normal(rng);
                    if (0.0..=1.0).contains(&v) {
                        break v;
                    }
                };
                out.resize(dims, level);
                if dims >= 2 {
                    for _ in 0..dims * 2 {
                        let i = rng.gen_range(0..dims);
                        let mut j = rng.gen_range(0..dims - 1);
                        if j >= i {
                            j += 1;
                        }
                        // Max transfer keeping both coordinates in [0,1].
                        let head = (1.0 - out[j]).min(out[i]);
                        let delta = rng.gen_f64() * head;
                        out[i] -= delta;
                        out[j] += delta;
                    }
                }
            }
        }
    }
}

impl FromStr for Distribution {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "independent" | "indep" | "ind" | "i" => Ok(Distribution::Independent),
            "correlated" | "corr" | "c" => Ok(Distribution::Correlated),
            "anti-correlated" | "anticorrelated" | "anti" | "a" => Ok(Distribution::AntiCorrelated),
            other => Err(format!(
                "unknown distribution {other:?} (expected independent|correlated|anti-correlated)"
            )),
        }
    }
}

/// Standard-normal sample via Box–Muller (rand 0.8 ships no normal
/// distribution; this keeps the dependency surface minimal).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn sample_matrix(dist: Distribution, n: usize, dims: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = Vec::new();
        (0..n)
            .map(|_| {
                dist.sample_unit(&mut rng, dims, &mut buf);
                buf.clone()
            })
            .collect()
    }

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }

    fn dim_columns(m: &[Vec<f64>], i: usize, j: usize) -> (Vec<f64>, Vec<f64>) {
        (
            m.iter().map(|r| r[i]).collect(),
            m.iter().map(|r| r[j]).collect(),
        )
    }

    #[test]
    fn all_samples_in_unit_cube() {
        for dist in Distribution::ALL {
            for row in sample_matrix(dist, 500, 4) {
                for v in row {
                    assert!((0.0..=1.0).contains(&v), "{dist:?} out of range: {v}");
                }
            }
        }
    }

    #[test]
    fn correlated_has_strong_positive_correlation() {
        let m = sample_matrix(Distribution::Correlated, 3000, 3);
        let (x, y) = dim_columns(&m, 0, 1);
        assert!(pearson(&x, &y) > 0.8, "r = {}", pearson(&x, &y));
    }

    #[test]
    fn anti_correlated_has_negative_correlation() {
        let m = sample_matrix(Distribution::AntiCorrelated, 3000, 2);
        let (x, y) = dim_columns(&m, 0, 1);
        assert!(pearson(&x, &y) < -0.5, "r = {}", pearson(&x, &y));
    }

    #[test]
    fn independent_has_weak_correlation() {
        let m = sample_matrix(Distribution::Independent, 3000, 2);
        let (x, y) = dim_columns(&m, 0, 1);
        assert!(pearson(&x, &y).abs() < 0.1, "r = {}", pearson(&x, &y));
    }

    #[test]
    fn anti_correlated_sum_is_stable() {
        // Transfers preserve the per-tuple sum, so sums concentrate near d/2.
        let m = sample_matrix(Distribution::AntiCorrelated, 2000, 4);
        let mean_sum: f64 = m.iter().map(|r| r.iter().sum::<f64>()).sum::<f64>() / 2000.0;
        assert!((mean_sum - 2.0).abs() < 0.15, "mean sum = {mean_sum}");
    }

    #[test]
    fn parse_distribution_names() {
        assert_eq!(
            "indep".parse::<Distribution>(),
            Ok(Distribution::Independent)
        );
        assert_eq!("CORR".parse::<Distribution>(), Ok(Distribution::Correlated));
        assert_eq!(
            "anti".parse::<Distribution>(),
            Ok(Distribution::AntiCorrelated)
        );
        assert!("bogus".parse::<Distribution>().is_err());
    }

    #[test]
    fn single_dimension_anti_correlated_degenerates_gracefully() {
        let m = sample_matrix(Distribution::AntiCorrelated, 100, 1);
        assert!(m.iter().all(|r| r.len() == 1));
    }
}
