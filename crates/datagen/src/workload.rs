//! End-to-end workload specification matching the paper's Section VI-A.

use crate::rng::{Rng, StdRng};
use crate::{Distribution, Relation};

/// Parameters of one experimental workload.
///
/// Defaults mirror the paper's experimental setup: both sources share the
/// cardinality `N`, attributes are real numbers in `[1, 100]`, and the join
/// selectivity σ is realized by drawing join keys uniformly from
/// `V = round(1/σ)` values.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Cardinality of source R.
    pub n_r: usize,
    /// Cardinality of source T.
    pub n_t: usize,
    /// Number of skyline dimensions `d`. Each source carries `d` attributes;
    /// the default mapping adds corresponding dimensions pairwise.
    pub dims: usize,
    /// Attribute-correlation family for both sources.
    pub distribution: Distribution,
    /// Expected equi-join selectivity σ = |R ⋈ T| / (|R|·|T|).
    pub selectivity: f64,
    /// Attribute value range (inclusive low, exclusive high).
    pub value_range: (f64, f64),
    /// RNG seed; equal specs generate identical workloads.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the paper's constants (`[1,100]` values) and the given
    /// shape parameters.
    pub fn new(n: usize, dims: usize, distribution: Distribution, selectivity: f64) -> Self {
        Self {
            n_r: n,
            n_t: n,
            dims,
            distribution,
            selectivity,
            value_range: (1.0, 100.0),
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of distinct join-key values realizing σ.
    pub fn join_domain_size(&self) -> u32 {
        assert!(
            self.selectivity > 0.0 && self.selectivity <= 1.0,
            "selectivity must be in (0, 1], got {}",
            self.selectivity
        );
        ((1.0 / self.selectivity).round() as u32).max(1)
    }

    /// Generates both sources.
    pub fn generate(&self) -> SmjWorkload {
        assert!(self.dims > 0, "dims must be positive");
        let v = self.join_domain_size();
        let (lo, hi) = self.value_range;
        assert!(hi > lo, "empty value range");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let r = self.generate_one(&mut rng, self.n_r, v, lo, hi);
        let t = self.generate_one(&mut rng, self.n_t, v, lo, hi);
        SmjWorkload {
            spec: self.clone(),
            r,
            t,
        }
    }

    fn generate_one(&self, rng: &mut StdRng, n: usize, v: u32, lo: f64, hi: f64) -> Relation {
        let mut rel = Relation::with_capacity(self.dims, n);
        let mut unit = Vec::with_capacity(self.dims);
        let mut scaled = vec![0.0; self.dims];
        let span = hi - lo;
        for _ in 0..n {
            self.distribution.sample_unit(rng, self.dims, &mut unit);
            for (s, &u) in scaled.iter_mut().zip(unit.iter()) {
                *s = lo + u * span;
            }
            let key = rng.gen_range(0..v);
            rel.push(&scaled, key);
        }
        rel
    }
}

/// A generated SkyMapJoin workload: the two sources plus their spec.
#[derive(Debug, Clone)]
pub struct SmjWorkload {
    /// The spec this workload was generated from.
    pub spec: WorkloadSpec,
    /// Source R (e.g. `Suppliers`).
    pub r: Relation,
    /// Source T (e.g. `Transporters`).
    pub t: Relation,
}

impl SmjWorkload {
    /// Exact join cardinality of this instance (counted, not estimated).
    pub fn exact_join_cardinality(&self) -> u64 {
        let v = self.spec.join_domain_size() as usize;
        let mut r_hist = vec![0u64; v];
        for &k in &self.r.join_keys {
            r_hist[k as usize] += 1;
        }
        let mut t_hist = vec![0u64; v];
        for &k in &self.t.join_keys {
            t_hist[k as usize] += 1;
        }
        r_hist.iter().zip(&t_hist).map(|(a, b)| a * b).sum()
    }

    /// Empirical selectivity of this instance.
    pub fn exact_selectivity(&self) -> f64 {
        self.exact_join_cardinality() as f64 / (self.r.len() as f64 * self.t.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let spec = WorkloadSpec::new(200, 3, Distribution::Independent, 0.01);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.r.attrs.raw(), b.r.attrs.raw());
        assert_eq!(a.t.join_keys, b.t.join_keys);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = WorkloadSpec::new(100, 2, Distribution::Independent, 0.1);
        let a = spec.generate();
        let b = spec.with_seed(42).generate();
        assert_ne!(a.r.attrs.raw(), b.r.attrs.raw());
    }

    #[test]
    fn values_respect_range() {
        let spec = WorkloadSpec::new(500, 4, Distribution::AntiCorrelated, 0.01);
        let w = spec.generate();
        for rel in [&w.r, &w.t] {
            for p in rel.attrs.iter() {
                for &v in p {
                    assert!((1.0..=100.0).contains(&v), "value {v} out of [1,100]");
                }
            }
        }
    }

    #[test]
    fn join_domain_size_matches_sigma() {
        let spec = WorkloadSpec::new(10, 2, Distribution::Independent, 0.001);
        assert_eq!(spec.join_domain_size(), 1000);
        let spec = WorkloadSpec::new(10, 2, Distribution::Independent, 0.1);
        assert_eq!(spec.join_domain_size(), 10);
    }

    #[test]
    fn empirical_selectivity_near_nominal() {
        let spec = WorkloadSpec::new(5000, 2, Distribution::Independent, 0.01);
        let w = spec.generate();
        let sel = w.exact_selectivity();
        assert!(
            (sel - 0.01).abs() / 0.01 < 0.2,
            "selectivity {sel} too far from 0.01"
        );
    }

    #[test]
    fn asymmetric_cardinalities() {
        let mut spec = WorkloadSpec::new(100, 2, Distribution::Correlated, 0.05);
        spec.n_t = 37;
        let w = spec.generate();
        assert_eq!(w.r.len(), 100);
        assert_eq!(w.t.len(), 37);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn zero_selectivity_rejected() {
        WorkloadSpec::new(10, 2, Distribution::Independent, 0.0).join_domain_size();
    }
}
