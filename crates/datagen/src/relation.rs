//! Generated relations: skyline attributes + join key per tuple.

use progxe_skyline::PointStore;

/// One input relation of a SkyMapJoin query.
///
/// Mirrors the paper's sources (`Suppliers R`, `Transporters T`): each tuple
/// carries `dims` real-valued attributes consumed by the mapping functions
/// and one integer join key (`country` in Q1). Tuple identity is the row
/// index.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Skyline-relevant attribute matrix (one row per tuple).
    pub attrs: PointStore,
    /// Equi-join key per tuple, parallel to `attrs`.
    pub join_keys: Vec<u32>,
}

impl Relation {
    /// Creates an empty relation with `dims` attributes per tuple.
    pub fn new(dims: usize) -> Self {
        Self {
            attrs: PointStore::new(dims),
            join_keys: Vec::new(),
        }
    }

    /// Creates an empty relation with room for `cap` tuples.
    pub fn with_capacity(dims: usize, cap: usize) -> Self {
        Self {
            attrs: PointStore::with_capacity(dims, cap),
            join_keys: Vec::with_capacity(cap),
        }
    }

    /// Appends a tuple; returns its row index.
    pub fn push(&mut self, attrs: &[f64], join_key: u32) -> usize {
        let idx = self.attrs.push(attrs);
        self.join_keys.push(join_key);
        idx
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.join_keys.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.join_keys.is_empty()
    }

    /// Attribute dimensionality.
    pub fn dims(&self) -> usize {
        self.attrs.dims()
    }

    /// Borrow the attributes of tuple `i`.
    pub fn attrs_of(&self, i: usize) -> &[f64] {
        self.attrs.point(i)
    }

    /// Join key of tuple `i`.
    pub fn join_key_of(&self, i: usize) -> u32 {
        self.join_keys[i]
    }

    /// Builds a relation from parallel rows; panics on length mismatch.
    pub fn from_rows<R: AsRef<[f64]>>(dims: usize, rows: &[(R, u32)]) -> Self {
        let mut rel = Self::with_capacity(dims, rows.len());
        for (attrs, key) in rows {
            rel.push(attrs.as_ref(), *key);
        }
        rel
    }

    /// The number of distinct join-key values present.
    pub fn distinct_join_keys(&self) -> usize {
        let mut keys = self.join_keys.clone();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut r = Relation::new(2);
        r.push(&[1.0, 2.0], 7);
        r.push(&[3.0, 4.0], 9);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dims(), 2);
        assert_eq!(r.attrs_of(1), &[3.0, 4.0]);
        assert_eq!(r.join_key_of(0), 7);
    }

    #[test]
    fn from_rows_builds_parallel_arrays() {
        let r = Relation::from_rows(2, &[([1.0, 2.0], 0), ([3.0, 4.0], 1)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.join_key_of(1), 1);
    }

    #[test]
    fn distinct_join_keys_counts() {
        let r = Relation::from_rows(1, &[([1.0], 3), ([2.0], 3), ([3.0], 5)]);
        assert_eq!(r.distinct_join_keys(), 2);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::new(3);
        assert!(r.is_empty());
        assert_eq!(r.distinct_join_keys(), 0);
    }
}
