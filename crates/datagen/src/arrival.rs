//! Arrival-schedule generators for streaming-ingestion experiments.
//!
//! The streaming engine (`progxe_core::ingest`) consumes per-source row
//! batches plus optional per-dimension watermarks. This module turns a
//! materialized [`Relation`] into an [`ArrivalSchedule`]: an ordered list
//! of batches (row indices into the relation) with, optionally, the
//! **tightest sound watermark** after each batch — the per-dimension
//! minimum over every row still to come, which is valid for *any* row
//! order. Under sorted arrival that watermark advances steadily and seals
//! input-grid cells early; under a uniform shuffle it hugs the global
//! minimum until the stream is nearly drained — the two ends of the
//! "remote source friendliness" spectrum the ingest benchmarks sweep.
//!
//! Generators are deterministic given their seed, like everything in this
//! crate.

use crate::rng::{Rng, StdRng};
use crate::Relation;

/// In what order the relation's rows enter the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Rows arrive in relation order (whatever the generator produced).
    Original,
    /// A seeded uniform shuffle — the adversarial case for watermarks.
    UniformShuffle,
    /// Rows sorted ascending by their per-row minimum attribute — the
    /// friendly case: suffix minima rise, cells seal early, and (for
    /// all-LOWEST preferences) the most result-relevant rows front-load.
    AttrSorted,
}

/// How the ordered row stream is cut into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Batching {
    /// Fixed-size batches (the last one may be short).
    Fixed(usize),
    /// Seeded alternation of tiny and large batches: mostly `small`, with
    /// roughly one in four batches jumping to `large`.
    Bursty {
        /// Size of the frequent small batches.
        small: usize,
        /// Size of the occasional large batches.
        large: usize,
    },
}

/// A full arrival-schedule specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSpec {
    /// Row order of the stream.
    pub order: ArrivalOrder,
    /// Batch sizing.
    pub batching: Batching,
    /// Emit a watermark after every `n`-th batch (`None` = never). The
    /// watermark is always the tightest sound one (suffix minimum).
    pub watermark_every: Option<usize>,
    /// Seed for the shuffle and the bursty batch sizing.
    pub seed: u64,
}

impl ArrivalSpec {
    /// The adversarial baseline: seeded uniform shuffle, fixed batches,
    /// watermarks after every batch (they will barely move).
    pub fn uniform_shuffle(seed: u64, batch: usize) -> Self {
        Self {
            order: ArrivalOrder::UniformShuffle,
            batching: Batching::Fixed(batch),
            watermark_every: Some(1),
            seed,
        }
    }

    /// The friendly case: attribute-sorted arrival with per-batch
    /// watermarks.
    pub fn attr_sorted(batch: usize) -> Self {
        Self {
            order: ArrivalOrder::AttrSorted,
            batching: Batching::Fixed(batch),
            watermark_every: Some(1),
            seed: 0,
        }
    }

    /// Bursty arrival: sorted rows, alternating tiny/large batches,
    /// watermarks after every batch.
    pub fn bursty(seed: u64, small: usize, large: usize) -> Self {
        Self {
            order: ArrivalOrder::AttrSorted,
            batching: Batching::Bursty { small, large },
            watermark_every: Some(1),
            seed,
        }
    }

    /// The slow-remote-source workload: sorted arrival in many small
    /// batches of `batch` rows with a watermark after each — first results
    /// should appear long before the stream drains.
    pub fn trickle(batch: usize) -> Self {
        Self {
            order: ArrivalOrder::AttrSorted,
            batching: Batching::Fixed(batch.max(1)),
            watermark_every: Some(1),
            seed: 0,
        }
    }

    /// Materializes the schedule for one relation.
    pub fn schedule(&self, relation: &Relation) -> ArrivalSchedule {
        let n = relation.len();
        let dims = relation.dims();
        let mut rows: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA881_55C3_D1F0_9B2E);
        match self.order {
            ArrivalOrder::Original => {}
            ArrivalOrder::UniformShuffle => {
                for i in (1..rows.len()).rev() {
                    let j = rng.gen_range(0..i + 1);
                    rows.swap(i, j);
                }
            }
            ArrivalOrder::AttrSorted => {
                rows.sort_by(|&a, &b| {
                    let min_of = |r: u32| {
                        relation
                            .attrs_of(r as usize)
                            .iter()
                            .cloned()
                            .fold(f64::INFINITY, f64::min)
                    };
                    min_of(a).total_cmp(&min_of(b)).then_with(|| a.cmp(&b))
                });
            }
        }

        // Suffix minima: the tightest watermark valid after each prefix.
        // suffix_min[i][d] = min over rows[i..] of attr d.
        let mut suffix_min: Vec<Vec<f64>> = vec![vec![f64::INFINITY; dims]; n + 1];
        for i in (0..n).rev() {
            let attrs = relation.attrs_of(rows[i] as usize);
            for d in 0..dims {
                suffix_min[i][d] = suffix_min[i + 1][d].min(attrs[d]);
            }
        }

        let mut batches = Vec::new();
        let mut pos = 0usize;
        let mut batch_index = 0usize;
        while pos < n {
            let size = match self.batching {
                Batching::Fixed(s) => s.max(1),
                Batching::Bursty { small, large } => {
                    if rng.gen_range(0..4u32) == 0 {
                        large.max(1)
                    } else {
                        small.max(1)
                    }
                }
            };
            let end = (pos + size).min(n);
            let watermark = match self.watermark_every {
                Some(every) if every > 0 && (batch_index + 1).is_multiple_of(every) && end < n => {
                    // The suffix min can be -inf-free by construction; at
                    // the end of the stream there is nothing left to
                    // promise, so no watermark is emitted (close() covers
                    // it).
                    Some(suffix_min[end].clone())
                }
                _ => None,
            };
            batches.push(ArrivalBatch {
                rows: rows[pos..end].to_vec(),
                watermark,
            });
            pos = end;
            batch_index += 1;
        }
        ArrivalSchedule { batches }
    }
}

/// One arrival step: rows (indices into the source relation) and an
/// optional watermark that becomes valid *after* the batch is pushed.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalBatch {
    /// Row indices of this batch, in arrival order.
    pub rows: Vec<u32>,
    /// Per-dimension lower bound on every later row, or `None`.
    pub watermark: Option<Vec<f64>>,
}

/// A complete arrival schedule for one source relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSchedule {
    /// The batches, in arrival order. Every relation row appears exactly
    /// once across them.
    pub batches: Vec<ArrivalBatch>,
}

impl ArrivalSchedule {
    /// Total rows across all batches.
    pub fn total_rows(&self) -> usize {
        self.batches.iter().map(|b| b.rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, WorkloadSpec};

    fn relation() -> Relation {
        WorkloadSpec::new(200, 3, Distribution::Independent, 0.05)
            .with_seed(7)
            .generate()
            .r
    }

    fn covers_all_rows_once(schedule: &ArrivalSchedule, n: usize) {
        let mut seen: Vec<u32> = schedule
            .batches
            .iter()
            .flat_map(|b| b.rows.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn every_schedule_is_a_permutation() {
        let rel = relation();
        for spec in [
            ArrivalSpec::uniform_shuffle(3, 17),
            ArrivalSpec::attr_sorted(32),
            ArrivalSpec::bursty(9, 5, 60),
            ArrivalSpec::trickle(7),
        ] {
            let s = spec.schedule(&rel);
            covers_all_rows_once(&s, rel.len());
            assert_eq!(s.total_rows(), rel.len());
        }
    }

    #[test]
    fn watermarks_are_sound_for_any_order() {
        let rel = relation();
        for spec in [
            ArrivalSpec::uniform_shuffle(11, 23),
            ArrivalSpec::attr_sorted(25),
            ArrivalSpec::bursty(2, 7, 40),
        ] {
            let s = spec.schedule(&rel);
            for (i, batch) in s.batches.iter().enumerate() {
                let Some(wm) = &batch.watermark else { continue };
                for later in &s.batches[i + 1..] {
                    for &row in &later.rows {
                        for (d, &w) in wm.iter().enumerate() {
                            assert!(
                                rel.attrs_of(row as usize)[d] >= w,
                                "row {row} violates watermark {wm:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sorted_watermarks_actually_advance() {
        let rel = relation();
        let s = ArrivalSpec::attr_sorted(20).schedule(&rel);
        let first = s.batches.first().and_then(|b| b.watermark.clone()).unwrap();
        let late = s.batches[s.batches.len() / 2]
            .watermark
            .clone()
            .expect("mid-stream watermark");
        assert!(
            late.iter().zip(&first).any(|(l, f)| l > f),
            "sorted arrival must raise the watermark"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let rel = relation();
        let a = ArrivalSpec::uniform_shuffle(42, 13).schedule(&rel);
        let b = ArrivalSpec::uniform_shuffle(42, 13).schedule(&rel);
        assert_eq!(a, b);
        let c = ArrivalSpec::uniform_shuffle(43, 13).schedule(&rel);
        assert_ne!(a, c);
    }

    #[test]
    fn watermark_cadence_respected() {
        let rel = relation();
        let mut spec = ArrivalSpec::attr_sorted(10);
        spec.watermark_every = Some(3);
        let s = spec.schedule(&rel);
        for (i, b) in s.batches.iter().enumerate() {
            let expect = (i + 1) % 3 == 0 && i + 1 < s.batches.len();
            assert_eq!(b.watermark.is_some(), expect, "batch {i}");
        }
    }
}
